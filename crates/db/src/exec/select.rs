//! SELECT execution over the logical-plan IR.
//!
//! A SELECT no longer runs off ad-hoc heuristic branches: the statement
//! is lowered to a [`LogicalPlan`] tree, rewritten by the rule-based
//! optimizer, annotated with per-scan access decisions (`crate::plan`),
//! and then *walked* here — [`run_planned`] decomposes the operator
//! tail, [`exec_pipeline`] recurses over Filter/Join/Scan, and the
//! EXPLAIN renderer prints the very same tree, so the reported plan
//! cannot drift from what executes.

use super::aggregate::Accumulator;
use super::eval::{eval, eval_condition, Env, Layout};
use super::vector;
use super::ResultSet;
use crate::column::CHUNK_ROWS;
use crate::database::Database;
use crate::error::{DbError, Result};
use crate::introspect;
use crate::plan;
use crate::plan::ir::{base_scan, Access, LogicalPlan, PlannedSelect, ScanNode};
use crate::sql::ast::*;
use crate::table::{Row, RowId, Table};
use crate::value::Value;
use perfdmf_pool as pool;
use perfdmf_telemetry as telemetry;
use std::collections::HashMap;
use std::ops::Bound;
use std::ops::Range;
use std::time::Instant;

/// A resolved FROM-clause table: either a borrowed base table or a
/// virtual system table materialized for this statement. Derefs to
/// [`Table`] so the scan/join/EXPLAIN code is agnostic to the source.
pub(crate) enum TableSource<'a> {
    Base(&'a Table),
    Virtual(Box<Table>),
}

impl std::ops::Deref for TableSource<'_> {
    type Target = Table;

    fn deref(&self) -> &Table {
        match self {
            TableSource::Base(t) => t,
            TableSource::Virtual(t) => t,
        }
    }
}

impl TableSource<'_> {
    pub(crate) fn is_virtual(&self) -> bool {
        matches!(self, TableSource::Virtual(_))
    }
}

/// Resolve a FROM-clause table name: names under the reserved `perfdmf_`
/// prefix materialize the corresponding virtual system table from live
/// engine state; everything else resolves against the database catalog.
pub(crate) fn resolve_table<'a>(db: &'a Database, name: &str) -> Result<TableSource<'a>> {
    if introspect::is_reserved_name(name) {
        return match introspect::materialize(db, name) {
            Some(t) => {
                telemetry::add("db.exec.virtual_scans", 1);
                Ok(TableSource::Virtual(Box::new(t)))
            }
            None => Err(DbError::NoSuchTable(name.to_string())),
        };
    }
    db.table(name).map(TableSource::Base)
}

/// Per-operator measurements collected while executing a SELECT for
/// `EXPLAIN ANALYZE`. Everywhere else the executor runs with `None`, so
/// the normal path pays one `Option` check per stage.
#[derive(Debug, Default)]
pub(crate) struct ExecProfile {
    /// (rows out, partitions used, wall ns) of the base scan.
    scan: Option<(u64, usize, u64)>,
    /// (live rows, chunks, cache hits, cache misses, partitions, wall ns)
    /// of a columnar scan (fused scan + filter + aggregate).
    colscan: Option<(u64, usize, u64, u64, usize, u64)>,
    /// (rows out, wall ns) per join, left to right.
    joins: Vec<(u64, u64)>,
    /// (rows in, rows out, partitions used, wall ns) of the WHERE pass.
    filter: Option<(u64, u64, usize, u64)>,
    /// (groups, partitions used, wall ns) of the aggregate pass.
    aggregate: Option<(u64, usize, u64)>,
    /// Wall ns of the ORDER BY sort (plain or grouped path).
    sort_ns: u64,
    /// (rows in, rows out) of the DISTINCT pass.
    distinct: Option<(u64, u64)>,
}

fn stage_ns(t0: Option<Instant>) -> u64 {
    t0.map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

fn fmt_ns(ns: u64) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

fn partitions_label(n: usize) -> String {
    if n == 0 {
        "serial".to_string()
    } else {
        n.to_string()
    }
}

/// Replace uncorrelated subqueries (`IN (SELECT ...)`, scalar
/// `(SELECT ...)`) in an expression by executing them once up front.
pub(crate) fn resolve_subqueries(db: &Database, expr: &Expr, params: &[Value]) -> Result<Expr> {
    let rec = |e: &Expr| resolve_subqueries(db, e, params);
    Ok(match expr {
        Expr::InSubquery {
            operand,
            select,
            negated,
        } => {
            let rs = execute_select(db, select, params)?;
            if rs.columns.len() != 1 {
                return Err(DbError::Eval(format!(
                    "IN subquery must return one column, got {}",
                    rs.columns.len()
                )));
            }
            Expr::InList {
                operand: Box::new(rec(operand)?),
                list: rs
                    .rows
                    .into_iter()
                    .map(|mut r| Expr::Literal(r.remove(0)))
                    .collect(),
                negated: *negated,
            }
        }
        Expr::ScalarSubquery(select) => {
            let rs = execute_select(db, select, params)?;
            if rs.columns.len() != 1 {
                return Err(DbError::Eval(format!(
                    "scalar subquery must return one column, got {}",
                    rs.columns.len()
                )));
            }
            if rs.rows.len() > 1 {
                return Err(DbError::Eval(format!(
                    "scalar subquery returned {} rows",
                    rs.rows.len()
                )));
            }
            Expr::Literal(
                rs.rows
                    .into_iter()
                    .next()
                    .map(|mut r| r.remove(0))
                    .unwrap_or(Value::Null),
            )
        }
        Expr::Exists { select, negated } => {
            let rs = execute_select(db, select, params)?;
            Expr::Literal(Value::Bool(rs.rows.is_empty() == *negated))
        }
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(rec(operand)?),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rec(left)?),
            right: Box::new(rec(right)?),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(rec(operand)?),
            negated: *negated,
        },
        Expr::InList {
            operand,
            list,
            negated,
        } => Expr::InList {
            operand: Box::new(rec(operand)?),
            list: list.iter().map(rec).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => Expr::Between {
            operand: Box::new(rec(operand)?),
            low: Box::new(rec(low)?),
            high: Box::new(rec(high)?),
            negated: *negated,
        },
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => Expr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| rec(a).map(Box::new)).transpose()?,
            distinct: *distinct,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(rec).collect::<Result<_>>()?,
        },
        Expr::Case {
            branches,
            else_branch,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| Ok((rec(c)?, rec(v)?)))
                .collect::<Result<_>>()?,
            else_branch: else_branch
                .as_ref()
                .map(|e| rec(e).map(Box::new))
                .transpose()?,
        },
        leaf => leaf.clone(),
    })
}

fn expr_has_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) | Expr::Exists { .. } => true,
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => expr_has_subquery(operand),
        Expr::Binary { left, right, .. } => expr_has_subquery(left) || expr_has_subquery(right),
        Expr::InList { operand, list, .. } => {
            expr_has_subquery(operand) || list.iter().any(expr_has_subquery)
        }
        Expr::Between {
            operand, low, high, ..
        } => expr_has_subquery(operand) || expr_has_subquery(low) || expr_has_subquery(high),
        Expr::Aggregate { arg, .. } => arg.as_ref().is_some_and(|a| expr_has_subquery(a)),
        Expr::Function { args, .. } => args.iter().any(expr_has_subquery),
        Expr::Case {
            branches,
            else_branch,
        } => {
            branches
                .iter()
                .any(|(c, v)| expr_has_subquery(c) || expr_has_subquery(v))
                || else_branch.as_ref().is_some_and(|e| expr_has_subquery(e))
        }
        _ => false,
    }
}

fn select_has_subqueries(sel: &Select) -> bool {
    sel.projections.iter().any(|p| match p {
        Projection::Expr { expr, .. } => expr_has_subquery(expr),
        _ => false,
    }) || sel.where_clause.as_ref().is_some_and(expr_has_subquery)
        || sel.group_by.iter().any(expr_has_subquery)
        || sel.having.as_ref().is_some_and(expr_has_subquery)
        || sel.order_by.iter().any(|o| expr_has_subquery(&o.expr))
        || sel
            .joins
            .iter()
            .any(|j| j.on.as_ref().is_some_and(expr_has_subquery))
}

/// Rewrite a SELECT with every subquery resolved.
fn resolve_select(db: &Database, sel: &Select, params: &[Value]) -> Result<Select> {
    let mut out = sel.clone();
    for p in &mut out.projections {
        if let Projection::Expr { expr, .. } = p {
            *expr = resolve_subqueries(db, expr, params)?;
        }
    }
    if let Some(w) = &mut out.where_clause {
        *w = resolve_subqueries(db, w, params)?;
    }
    for g in &mut out.group_by {
        *g = resolve_subqueries(db, g, params)?;
    }
    if let Some(h) = &mut out.having {
        *h = resolve_subqueries(db, h, params)?;
    }
    for o in &mut out.order_by {
        o.expr = resolve_subqueries(db, &o.expr, params)?;
    }
    for j in &mut out.joins {
        if let Some(on) = &mut j.on {
            *on = resolve_subqueries(db, on, params)?;
        }
    }
    Ok(out)
}

/// True if the expression reads a column outside of any aggregate call.
/// Such expressions need a representative row, which the columnar path
/// never materializes (and which join reordering may permute).
pub(crate) fn has_bare_column(expr: &Expr) -> bool {
    match expr {
        Expr::Column { .. } => true,
        Expr::Aggregate { .. } => false, // columns inside the arg are fine
        Expr::Literal(_) | Expr::Param(_) => false,
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => has_bare_column(operand),
        Expr::Binary { left, right, .. } => has_bare_column(left) || has_bare_column(right),
        Expr::InList { operand, list, .. } => {
            has_bare_column(operand) || list.iter().any(has_bare_column)
        }
        Expr::Between {
            operand, low, high, ..
        } => has_bare_column(operand) || has_bare_column(low) || has_bare_column(high),
        Expr::Function { args, .. } => args.iter().any(has_bare_column),
        Expr::Case {
            branches,
            else_branch,
        } => {
            branches
                .iter()
                .any(|(c, v)| has_bare_column(c) || has_bare_column(v))
                || else_branch.as_ref().is_some_and(|e| has_bare_column(e))
        }
        Expr::InSubquery { operand, .. } => has_bare_column(operand),
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => false,
    }
}

// ---------------- execution ----------------

/// Execute a SELECT.
pub fn execute_select(db: &Database, sel: &Select, params: &[Value]) -> Result<ResultSet> {
    execute_select_profiled(db, sel, params, None)
}

/// Execute a SELECT, optionally collecting per-operator measurements
/// (the `EXPLAIN ANALYZE` path).
fn execute_select_profiled(
    db: &Database,
    sel: &Select,
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let started = Instant::now();
    // Uncorrelated subqueries run once, up front.
    let had_subqueries = select_has_subqueries(sel);
    let resolved;
    let sel = if had_subqueries {
        resolved = resolve_select(db, sel, params)?;
        &resolved
    } else {
        sel
    };
    let planned = plan::plan_select(db, sel, params, had_subqueries)?;
    let mut out = run_planned(&planned, params, prof)?;
    out.elapsed = started.elapsed();
    Ok(out)
}

/// The operator tail of a plan, decomposed for direct execution. The
/// lowering's canonical spine ordering makes this a straight-line
/// pattern match.
struct Tail<'p, 'a> {
    limit: Option<u64>,
    offset: Option<u64>,
    has_limit: bool,
    distinct: bool,
    order_by: &'p [OrderItem],
    projections: &'p [Projection],
    /// `Some((group_by, having))` when an Aggregate node is present.
    aggregate: Option<(&'p [Expr], Option<&'p Expr>)>,
    /// The scan/join/filter pipeline below the tail.
    pipeline: &'p LogicalPlan<'a>,
}

fn decompose<'p, 'a>(root: &'p LogicalPlan<'a>) -> Tail<'p, 'a> {
    let mut node = root;
    let (mut limit, mut offset, mut has_limit) = (None, None, false);
    if let LogicalPlan::Limit {
        input,
        limit: l,
        offset: o,
    } = node
    {
        limit = *l;
        offset = *o;
        has_limit = true;
        node = input;
    }
    let mut distinct = false;
    if let LogicalPlan::Distinct { input } = node {
        distinct = true;
        node = input;
    }
    let mut order_by: &[OrderItem] = &[];
    if let LogicalPlan::Sort { input, keys } = node {
        order_by = keys;
        node = input;
    }
    let mut projections: &[Projection] = &[];
    if let LogicalPlan::Project {
        input,
        projections: p,
    } = node
    {
        projections = p;
        node = input;
    }
    let mut aggregate = None;
    if let LogicalPlan::Aggregate {
        input,
        group_by,
        having,
    } = node
    {
        aggregate = Some((group_by.as_slice(), having.as_ref()));
        node = input;
    }
    Tail {
        limit,
        offset,
        has_limit,
        distinct,
        order_by,
        projections,
        aggregate,
        pipeline: node,
    }
}

fn apply_offset_limit(out: &mut ResultSet, offset: Option<u64>, limit: Option<u64>) {
    let offset = offset.unwrap_or(0) as usize;
    if offset > 0 {
        out.rows.drain(..offset.min(out.rows.len()));
    }
    if let Some(limit) = limit {
        out.rows.truncate(limit as usize);
    }
}

/// Walk an optimized, access-annotated plan.
fn run_planned(
    planned: &PlannedSelect<'_>,
    params: &[Value],
    mut prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let tail = decompose(&planned.root);

    // Columnar fast path: fused scan + filter + aggregate over column
    // chunks. A `None` from the kernels (unsupported chunk data) falls
    // through to row execution below.
    if let Some(scan) = base_scan(tail.pipeline) {
        if let Access::Columnar { plan: cplan, .. } = &scan.access {
            if let Some(mut out) =
                exec_columnar(scan, cplan, tail.projections, params, prof.as_deref_mut())?
            {
                apply_offset_limit(&mut out, tail.offset, tail.limit);
                return Ok(out);
            }
        }
    }

    let (layout, rows, rows_scanned) = exec_pipeline(tail.pipeline, params, prof.as_deref_mut())?;

    let mut out = match tail.aggregate {
        Some((group_by, having)) => {
            let _stage = telemetry::span("db.exec.aggregate");
            aggregate_path(
                tail.projections,
                group_by,
                having,
                tail.order_by,
                &layout,
                &rows,
                params,
                prof.as_deref_mut(),
            )?
        }
        None => {
            let _stage = telemetry::span("db.exec.project");
            plain_path(
                tail.projections,
                tail.order_by,
                &layout,
                &rows,
                params,
                prof.as_deref_mut(),
            )?
        }
    };

    // DISTINCT
    if tail.distinct {
        let rows_in = out.rows.len();
        let mut seen = std::collections::HashSet::new();
        out.rows.retain(|r| seen.insert(r.clone()));
        if let Some(p) = prof {
            p.distinct = Some((rows_in as u64, out.rows.len() as u64));
        }
    }

    apply_offset_limit(&mut out, tail.offset, tail.limit);
    out.rows_scanned = rows_scanned;
    Ok(out)
}

/// Execute the scan/join/filter pipeline of a plan, returning the
/// accumulated layout, the materialized rows, and the scanned-row count
/// (rows materialized after scan + joins, before WHERE; or rows
/// *examined* when a scan early-exits).
fn exec_pipeline(
    node: &LogicalPlan<'_>,
    params: &[Value],
    mut prof: Option<&mut ExecProfile>,
) -> Result<(Layout, Vec<Row>, u64)> {
    match node {
        LogicalPlan::Empty => Ok((Layout::default(), vec![Vec::new()], 0)),
        LogicalPlan::Scan(scan) => exec_scan(scan, params, prof),
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => {
            let (left_layout, left_rows, _) = exec_pipeline(left, params, prof.as_deref_mut())?;
            exec_join(
                left_layout,
                left_rows,
                right,
                *kind,
                on.as_ref(),
                params,
                prof,
            )
        }
        LogicalPlan::Filter { input, predicate } => {
            let (layout, rows, scanned) = exec_pipeline(input, params, prof.as_deref_mut())?;
            let rows = exec_filter(&layout, rows, predicate, params, prof)?;
            Ok((layout, rows, scanned))
        }
        _ => Err(DbError::Unsupported(
            "tail operator in scan pipeline".into(),
        )),
    }
}

/// Evaluate a scan's pushed conjuncts against one of its rows.
fn pushed_match(
    scan: &ScanNode<'_>,
    layout1: &Layout,
    row: &Row,
    params: &[Value],
) -> Result<bool> {
    for c in &scan.pushed {
        let env = Env::new(layout1, row, params);
        if !eval_condition(c, &env)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Materialize one scan according to its access decision.
fn exec_scan(
    scan: &ScanNode<'_>,
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<(Layout, Vec<Row>, u64)> {
    let table: &Table = &scan.source;
    let layout1 = scan.layout1();
    let _stage = telemetry::span("db.exec.scan");
    let t0 = prof.is_some().then(Instant::now);

    // Candidate ids, when the access method prescribes an order other
    // than ascending row id.
    let ids: Option<Vec<RowId>> = match &scan.access {
        Access::Seq => None,
        Access::Index(choice) => Some(choice.ids.clone()),
        Access::IndexOrder { column, .. } => {
            let col = layout1.resolve(None, column)?;
            let Some(ix) = table.index_on(col) else {
                return Err(DbError::Unsupported(format!(
                    "index-order scan lost its index on {column}"
                )));
            };
            // NULL keys are not indexed; NULL sorts first under
            // `Value::total_cmp`, and ids ascend within each key, so
            // NULL-key rows (in id order) followed by `scan_asc` is
            // exactly the stable `ORDER BY column ASC` order.
            let mut ids: Vec<RowId> = table
                .iter()
                .filter(|(_, row)| row[col].is_null())
                .map(|(id, _)| id)
                .collect();
            ids.extend(ix.scan_asc());
            Some(ids)
        }
        // Runtime fallback from a declined columnar plan: make the index
        // decision the row path would have made.
        Access::Columnar { .. } => index_candidates(
            table,
            &scan.binding,
            &layout1,
            scan.index_filter.as_ref(),
            params,
        )?
        .map(|c| c.ids),
    };

    // Early-exit scan (LIMIT pushdown): serial, stops after `take`
    // matches, and reports rows *examined* as the scanned count.
    if let Some(take) = scan.stop_after {
        let mut kept: Vec<Row> = Vec::new();
        let mut examined = 0u64;
        if take > 0 {
            match ids {
                Some(ids) => {
                    for id in ids {
                        if let Some(row) = table.row(id) {
                            examined += 1;
                            if pushed_match(scan, &layout1, row, params)? {
                                kept.push(masked_clone(row, &scan.mask));
                                if kept.len() >= take {
                                    break;
                                }
                            }
                        }
                    }
                }
                None => {
                    for (_, row) in table.iter() {
                        examined += 1;
                        if pushed_match(scan, &layout1, row, params)? {
                            kept.push(masked_clone(row, &scan.mask));
                            if kept.len() >= take {
                                break;
                            }
                        }
                    }
                }
            }
        }
        if let Some(p) = prof {
            p.scan = Some((examined, 0, stage_ns(t0)));
        }
        return Ok((layout1, kept, examined));
    }

    let mut partitions = 0usize;
    let rows: Vec<Row> = match ids {
        Some(ids) => {
            let mut out = Vec::with_capacity(ids.len());
            for id in ids {
                if let Some(row) = table.row(id) {
                    if pushed_match(scan, &layout1, row, params)? {
                        out.push(masked_clone(row, &scan.mask));
                    }
                }
            }
            out
        }
        None => {
            // Full scan. The slab is chunked by row-id range; live rows
            // concatenated in partition order match `Table::iter`'s
            // ascending-id order, so the parallel scan returns rows in
            // exactly the serial order.
            match pool::partitions(table.slab_len()) {
                Some(ranges) => {
                    telemetry::add("db.exec.parallel_scans", 1);
                    partitions = ranges.len();
                    let layout1 = &layout1;
                    let chunks = pool::try_run(ranges.len(), |pi| {
                        let mut part = Vec::new();
                        for id in ranges[pi].clone() {
                            if let Some(row) = table.row(id as RowId) {
                                if pushed_match(scan, layout1, row, params)? {
                                    part.push(masked_clone(row, &scan.mask));
                                }
                            }
                        }
                        Ok::<Vec<Row>, DbError>(part)
                    })?;
                    chunks.into_iter().flatten().collect()
                }
                None => {
                    let mut out = Vec::new();
                    for (_, row) in table.iter() {
                        if pushed_match(scan, &layout1, row, params)? {
                            out.push(masked_clone(row, &scan.mask));
                        }
                    }
                    out
                }
            }
        }
    };
    let scanned = rows.len() as u64;
    if let Some(p) = prof {
        p.scan = Some((scanned, partitions, stage_ns(t0)));
    }
    Ok((layout1, rows, scanned))
}

/// Join already-materialized left rows against a right scan node.
fn exec_join(
    left_layout: Layout,
    left_rows: Vec<Row>,
    right: &ScanNode<'_>,
    kind: JoinKind,
    on: Option<&Expr>,
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<(Layout, Vec<Row>, u64)> {
    let _stage = telemetry::span("db.exec.join");
    let join_t0 = prof.is_some().then(Instant::now);
    let right_table: &Table = &right.source;
    let right_layout1 = right.layout1();
    let right_width = right.columns.len();

    let mut bindings = left_layout.bindings().to_vec();
    bindings.push((right.binding.clone(), right.columns.clone()));
    let full_layout = Layout::new(bindings);

    // Right rows in insertion order, prefiltered by pushed conjuncts.
    // Prefiltering INNER/CROSS right sides only drops rows that could
    // never survive the residual WHERE, and keeps survivors in the same
    // relative order — so join output is a verbatim subsequence-free
    // match of the unoptimized result.
    let mut right_rows: Vec<&Row> = Vec::new();
    for (_, row) in right_table.iter() {
        if pushed_match(right, &right_layout1, row, params)? {
            right_rows.push(row);
        }
    }

    let extend_masked = |row: &mut Row, r: &Row| match &right.mask {
        None => row.extend(r.iter().cloned()),
        Some(mask) => {
            row.extend(
                r.iter()
                    .zip(mask)
                    .map(|(v, &keep)| if keep { v.clone() } else { Value::Null }),
            )
        }
    };

    let mut joined: Vec<Row> = Vec::new();
    match kind {
        JoinKind::Cross => {
            for l in &left_rows {
                for r in &right_rows {
                    let mut row = l.clone();
                    extend_masked(&mut row, r);
                    joined.push(row);
                }
            }
        }
        JoinKind::Inner | JoinKind::Left => {
            let on = on.ok_or_else(|| DbError::Unsupported("JOIN requires ON".into()))?;
            // Try hash join on a simple equi-condition.
            if let Some((l_off, r_off)) =
                equi_offsets(on, &left_layout, &right.binding, &right.columns)
            {
                let mut table: HashMap<Value, Vec<&Row>> = HashMap::new();
                for r in &right_rows {
                    let key = &r[r_off];
                    if !key.is_null() {
                        table.entry(key.clone()).or_default().push(r);
                    }
                }
                for l in &left_rows {
                    let key = &l[l_off];
                    let matches = if key.is_null() { None } else { table.get(key) };
                    match matches {
                        Some(ms) if !ms.is_empty() => {
                            for m in ms {
                                let mut row = l.clone();
                                extend_masked(&mut row, m);
                                joined.push(row);
                            }
                        }
                        _ if kind == JoinKind::Left => {
                            let mut row = l.clone();
                            row.extend(std::iter::repeat_n(Value::Null, right_width));
                            joined.push(row);
                        }
                        _ => {}
                    }
                }
            } else {
                // General nested loop with full ON evaluation.
                for l in &left_rows {
                    let mut matched = false;
                    for r in &right_rows {
                        let mut row = l.clone();
                        extend_masked(&mut row, r);
                        let env = Env::new(&full_layout, &row, params);
                        if eval_condition(on, &env)? {
                            joined.push(row);
                            matched = true;
                        }
                    }
                    if !matched && kind == JoinKind::Left {
                        let mut row = l.clone();
                        row.extend(std::iter::repeat_n(Value::Null, right_width));
                        joined.push(row);
                    }
                }
            }
        }
    }
    let scanned = joined.len() as u64;
    if let Some(p) = prof {
        p.joins.push((scanned, stage_ns(join_t0)));
    }
    Ok((full_layout, joined, scanned))
}

/// The WHERE pass: partition-parallel filtering of materialized rows.
fn exec_filter(
    layout: &Layout,
    rows: Vec<Row>,
    pred: &Expr,
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<Vec<Row>> {
    let _stage = telemetry::span("db.exec.filter");
    let t0 = prof.is_some().then(Instant::now);
    let rows_in = rows.len();
    let mut partitions_used = 0;
    let rows: Vec<Row> = match pool::partitions(rows.len()) {
        Some(ranges) => {
            // Partition the materialized rows; concatenating kept rows
            // in partition order preserves the serial result order.
            telemetry::add("db.exec.parallel_filters", 1);
            partitions_used = ranges.len();
            let rows_ref = &rows;
            let chunks = pool::try_run(ranges.len(), |pi| {
                let mut kept = Vec::new();
                for row in &rows_ref[ranges[pi].clone()] {
                    let env = Env::new(layout, row, params);
                    if eval_condition(pred, &env)? {
                        kept.push(row.clone());
                    }
                }
                Ok::<Vec<Row>, DbError>(kept)
            })?;
            chunks.into_iter().flatten().collect()
        }
        None => {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                let env = Env::new(layout, &row, params);
                if eval_condition(pred, &env)? {
                    kept.push(row);
                }
            }
            kept
        }
    };
    if let Some(p) = prof {
        p.filter = Some((
            rows_in as u64,
            rows.len() as u64,
            partitions_used,
            stage_ns(t0),
        ));
    }
    Ok(rows)
}

/// Execute a decided columnar scan. Returns `Ok(None)` when a chunk
/// exposed column data the kernels cannot handle — the caller falls
/// back to row execution.
fn exec_columnar(
    scan: &ScanNode<'_>,
    cplan: &vector::ColumnarPlan,
    projections: &[Projection],
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<Option<ResultSet>> {
    let table: &Table = &scan.source;
    let t0 = prof.is_some().then(Instant::now);
    let (accs, stats) = {
        let _stage = telemetry::span("db.exec.colscan");
        match vector::execute_columnar(table, cplan)? {
            Some(out) => out,
            None => return Ok(None),
        }
    };
    telemetry::add("db.exec.columnar_scans", 1);

    let layout = scan.layout1();
    // Same collection order as the access decision, so accumulator `i`
    // belongs to aggregate expression `i`.
    let projections = expand_projections(projections, &layout)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();
    let mut aggs: Vec<&Expr> = Vec::new();
    for (_, e) in &projections {
        collect_aggregates(e, &mut aggs);
    }
    debug_assert_eq!(aggs.len(), accs.len());
    let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();

    // No bare columns survive the shape check, so a NULL row suffices as
    // the evaluation environment (matching the serial empty-group case).
    let null_row: Row = vec![Value::Null; layout.width()];
    let env = Env::new(&layout, &null_row, params);
    let mut out_row = Vec::with_capacity(projections.len());
    for (_, e) in &projections {
        let e_sub = substitute(e, &aggs, &agg_values);
        out_row.push(eval(&e_sub, &env)?);
    }

    if let Some(p) = prof {
        let ns = stage_ns(t0);
        p.colscan = Some((
            table.len() as u64,
            stats.chunks,
            stats.cache_hits,
            stats.cache_misses,
            stats.partitions,
            ns,
        ));
        p.aggregate = Some((1, stats.partitions, ns));
    }
    Ok(Some(ResultSet {
        columns,
        rows: vec![out_row],
        rows_scanned: table.len() as u64,
        ..ResultSet::default()
    }))
}

// ---------------- EXPLAIN ----------------

/// Describe the plan the executor would use for a SELECT (`EXPLAIN`).
///
/// The description is rendered from the very plan tree the executor
/// walks — same lowering, same rewrite rules, same access decisions —
/// so it cannot drift from reality. Fired rewrite rules are appended as
/// `optimizer:` trail lines.
pub fn explain_select(db: &Database, sel: &Select, params: &[Value]) -> Result<Vec<String>> {
    let had_subqueries = select_has_subqueries(sel);
    let planned = plan::plan_select(db, sel, params, had_subqueries)?;
    Ok(render_plan(&planned))
}

fn render_plan(planned: &PlannedSelect<'_>) -> Vec<String> {
    let tail = decompose(&planned.root);
    let mut lines = Vec::new();
    // Strip an optional Filter to reach the join chain / base scan.
    let (filter_present, mut node) = match tail.pipeline {
        LogicalPlan::Filter { input, .. } => (true, &**input),
        n => (false, n),
    };
    if matches!(node, LogicalPlan::Empty) {
        lines.push("result: constant row (no FROM)".to_string());
        return lines;
    }
    // Flatten the left-deep join chain, outermost last.
    let mut joins: Vec<(&ScanNode<'_>, JoinKind, Option<&Expr>)> = Vec::new();
    while let LogicalPlan::Join {
        left,
        right,
        kind,
        on,
    } = node
    {
        joins.push((right, *kind, on.as_ref()));
        node = left;
    }
    joins.reverse();
    let LogicalPlan::Scan(base) = node else {
        lines.push("result: constant row (no FROM)".to_string());
        return lines;
    };

    lines.push(scan_line(base));
    if !joins.is_empty() && !base.pushed.is_empty() {
        lines.push(format!(
            "  pushdown: {} base-only conjunct(s)",
            base.pushed.len()
        ));
    }
    push_mask_line(&mut lines, base);

    let mut bindings: Vec<(String, Vec<String>)> =
        vec![(base.binding.clone(), base.columns.clone())];
    for (right, kind, on) in &joins {
        let left_layout = Layout::new(bindings.clone());
        let strategy = match kind {
            JoinKind::Cross => "cross join (cartesian)".to_string(),
            JoinKind::Inner | JoinKind::Left => {
                let k = if *kind == JoinKind::Left {
                    "left"
                } else {
                    "inner"
                };
                match on
                    .and_then(|on| equi_offsets(on, &left_layout, &right.binding, &right.columns))
                {
                    Some(_) => format!("{k} hash join"),
                    None => format!("{k} nested-loop join"),
                }
            }
        };
        lines.push(format!(
            "{strategy} with {} ({} row(s))",
            right.table_name,
            right.source.len()
        ));
        if !right.pushed.is_empty() {
            lines.push(format!(
                "  pushdown: {} conjunct(s) into {}",
                right.pushed.len(),
                right.table_name
            ));
        }
        push_mask_line(&mut lines, right);
        bindings.push((right.binding.clone(), right.columns.clone()));
    }

    // A columnar scan fuses the WHERE predicates into the scan itself, so
    // there is no separate filter operator to report.
    if filter_present && !matches!(base.access, Access::Columnar { .. }) {
        lines.push("filter: WHERE".to_string());
    }
    if let Some((group_by, having)) = tail.aggregate {
        lines.push(format!(
            "aggregate: group by {} expr(s){}",
            group_by.len(),
            if having.is_some() { ", having" } else { "" }
        ));
    }
    if tail.distinct {
        lines.push("distinct".to_string());
    }
    if !tail.order_by.is_empty() {
        lines.push(format!("sort: {} key(s)", tail.order_by.len()));
    }
    if tail.has_limit {
        lines.push(format!("limit {:?} offset {:?}", tail.limit, tail.offset));
    }
    if planned.optimizer_off {
        lines.push("optimizer: off (rewrite rules disabled)".to_string());
    } else {
        for t in &planned.trail {
            lines.push(format!("optimizer: {}: {}", t.rule, t.detail));
        }
    }
    lines
}

fn scan_line(scan: &ScanNode<'_>) -> String {
    let table: &Table = &scan.source;
    let mut line = if scan.source.is_virtual() {
        // System tables have no indexes or chunk caches; the executor
        // always row-scans the per-statement materialization.
        format!(
            "virtual scan on {} ({} row(s), materialized from live engine state)",
            scan.table_name,
            table.len()
        )
    } else {
        match &scan.access {
            Access::Columnar { plan, reason } => format!(
                "columnar scan on {} ({} live row(s), {} chunk(s) of {}, {} kernel(s), {} fused predicate(s); {})",
                scan.table_name,
                table.len(),
                table.chunk_count(),
                CHUNK_ROWS,
                plan.aggs.len(),
                plan.pred_count(),
                reason
            ),
            Access::Index(choice) => {
                let mut l = format!(
                    "index scan on {} ({} candidate row(s) of {}) via {}, {} distinct key(s)",
                    scan.table_name,
                    choice.ids.len(),
                    table.len(),
                    choice.index_name,
                    choice.distinct_keys
                );
                if let Some((lo, hi)) = &choice.key_range {
                    l.push_str(&format!(", key range [{lo}, {hi}]"));
                }
                l
            }
            Access::IndexOrder { index_name, column } => format!(
                "index-order scan on {} ({} row(s)) via {}, ascending by {}",
                scan.table_name,
                table.len(),
                index_name,
                column
            ),
            Access::Seq => format!("seq scan on {} ({} row(s))", scan.table_name, table.len()),
        }
    };
    if let Some(take) = scan.stop_after {
        if !matches!(scan.access, Access::Columnar { .. }) {
            line.push_str(&format!(" [early exit after {take} match(es)]"));
        }
    }
    line
}

fn push_mask_line(lines: &mut Vec<String>, scan: &ScanNode<'_>) {
    if let Some(mask) = &scan.mask {
        let masked = mask.iter().filter(|&&k| !k).count();
        lines.push(format!(
            "  projection pruning: {masked}/{} column(s) of {} masked",
            scan.columns.len(),
            scan.table_name
        ));
    }
}

/// `EXPLAIN ANALYZE` for a SELECT: execute it for real with per-operator
/// instrumentation, then annotate the [`explain_select`] plan lines with
/// actual rows, partitions used, and wall time. The closing `total:`
/// line carries the executed query's `ResultSet` provenance verbatim
/// (rows returned, rows scanned, elapsed), so the annotated plan cannot
/// disagree with what a plain execution reports.
pub fn explain_analyze_select(
    db: &Database,
    sel: &Select,
    params: &[Value],
) -> Result<Vec<String>> {
    let mut prof = ExecProfile::default();
    let rs = execute_select_profiled(db, sel, params, Some(&mut prof))?;
    // The static plan comes from the same planner the execution just ran,
    // against the same database state, so lines match operators
    // one-to-one.
    let mut lines = explain_select(db, sel, params)?;
    let mut joins = prof.joins.iter();
    for line in lines.iter_mut() {
        if line.starts_with("columnar scan on ") {
            if let Some((live, chunks, hits, misses, parts, ns)) = prof.colscan {
                line.push_str(&format!(
                    " [actual rows={live}, chunks={chunks}, cache hits={hits} misses={misses}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            } else if prof.scan.is_some() {
                // The plan chose columnar but the kernels declined a
                // chunk at run time and the row path executed instead.
                line.push_str(" [fell back to row execution]");
            }
        } else if line.starts_with("index scan on ")
            || line.starts_with("index-order scan on ")
            || line.starts_with("seq scan on ")
            || line.starts_with("virtual scan on ")
        {
            if let Some((rows_out, parts, ns)) = prof.scan {
                line.push_str(&format!(
                    " [actual rows={rows_out}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            }
        } else if line.contains(" join with ") || line.starts_with("cross join") {
            if let Some((rows_out, ns)) = joins.next() {
                line.push_str(&format!(" [actual rows={rows_out}, {}]", fmt_ns(*ns)));
            }
        } else if line.starts_with("filter: WHERE") {
            if let Some((rows_in, rows_out, parts, ns)) = prof.filter {
                line.push_str(&format!(
                    " [actual rows={rows_out} of {rows_in}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            }
        } else if line.starts_with("aggregate: ") {
            if let Some((groups, parts, ns)) = prof.aggregate {
                line.push_str(&format!(
                    " [actual groups={groups}, partitions={}, {}]",
                    partitions_label(parts),
                    fmt_ns(ns)
                ));
            }
        } else if line == "distinct" {
            if let Some((rows_in, rows_out)) = prof.distinct {
                line.push_str(&format!(" [actual rows={rows_out} of {rows_in}]"));
            }
        } else if line.starts_with("sort: ") {
            line.push_str(&format!(" [{}]", fmt_ns(prof.sort_ns)));
        } else if line.starts_with("limit ") {
            line.push_str(&format!(" [actual rows={}]", rs.rows.len()));
        } else if line.starts_with("result: constant row") {
            line.push_str(" [actual rows=1]");
        }
    }
    lines.push(format!(
        "total: {} row(s) returned, {} row(s) scanned, {}",
        rs.rows.len(),
        rs.rows_scanned,
        fmt_ns(rs.elapsed.as_nanos().min(u64::MAX as u128) as u64)
    ));
    Ok(lines)
}

// ---------------- shared analysis helpers ----------------

/// Collect every column reference in an expression tree.
pub(crate) fn collect_columns<'a>(expr: &'a Expr, out: &mut Vec<(Option<&'a str>, &'a str)>) {
    match expr {
        Expr::Column { table, column } => out.push((table.as_deref(), column)),
        Expr::Literal(_) | Expr::Param(_) => {}
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => collect_columns(operand, out),
        Expr::Binary { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::InList { operand, list, .. } => {
            collect_columns(operand, out);
            for e in list {
                collect_columns(e, out);
            }
        }
        Expr::Between {
            operand, low, high, ..
        } => {
            collect_columns(operand, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_columns(a, out);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_columns(a, out);
            }
        }
        Expr::Case {
            branches,
            else_branch,
        } => {
            for (c, v) in branches {
                collect_columns(c, out);
                collect_columns(v, out);
            }
            if let Some(e) = else_branch {
                collect_columns(e, out);
            }
        }
        // Subqueries are resolved before this pass runs; their operand is
        // the only outer-query reference.
        Expr::InSubquery { operand, .. } => collect_columns(operand, out),
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
    }
}

fn masked_clone(row: &Row, mask: &Option<Vec<bool>>) -> Row {
    match mask {
        None => row.clone(),
        Some(mask) => row
            .iter()
            .zip(mask)
            .map(|(v, &keep)| if keep { v.clone() } else { Value::Null })
            .collect(),
    }
}

/// If `on` is `left_col = right_col` (either order), return flat offsets
/// (left offset in the accumulated layout, right offset in the right table).
fn equi_offsets(
    on: &Expr,
    left_layout: &Layout,
    right_binding: &str,
    right_cols: &[String],
) -> Option<(usize, usize)> {
    let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = on
    else {
        return None;
    };
    let as_col = |e: &Expr| -> Option<(Option<String>, String)> {
        if let Expr::Column { table, column } = e {
            Some((table.clone(), column.clone()))
        } else {
            None
        }
    };
    let (lt, lc) = as_col(left)?;
    let (rt, rc) = as_col(right)?;
    let right_off = |t: &Option<String>, c: &str| -> Option<usize> {
        match t {
            Some(t) if !t.eq_ignore_ascii_case(right_binding) => None,
            _ => right_cols.iter().position(|n| n.eq_ignore_ascii_case(c)),
        }
    };
    let left_off = |t: &Option<String>, c: &str| -> Option<usize> {
        left_layout.resolve(t.as_deref(), c).ok()
    };
    // (left = right)
    if let (Some(lo), Some(ro)) = (left_off(&lt, &lc), right_off(&rt, &rc)) {
        // ensure "right" side really refers to the right table (unqualified
        // names could resolve on both sides — prefer explicit qualification)
        if rt.is_some() || left_layout.resolve(None, &rc).is_err() {
            return Some((lo, ro));
        }
    }
    // (right = left)
    if let (Some(lo), Some(ro)) = (left_off(&rt, &rc), right_off(&lt, &lc)) {
        if lt.is_some() || left_layout.resolve(None, &lc).is_err() {
            return Some((lo, ro));
        }
    }
    None
}

/// True if every column reference in `expr` resolves within `layout`.
pub(crate) fn refs_only_layout(expr: &Expr, layout: &Layout) -> bool {
    match expr {
        Expr::Column { table, column } => layout.resolve(table.as_deref(), column).is_ok(),
        Expr::Literal(_) | Expr::Param(_) => true,
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => {
            refs_only_layout(operand, layout)
        }
        Expr::Binary { left, right, .. } => {
            refs_only_layout(left, layout) && refs_only_layout(right, layout)
        }
        Expr::InList { operand, list, .. } => {
            refs_only_layout(operand, layout) && list.iter().all(|e| refs_only_layout(e, layout))
        }
        Expr::Between {
            operand, low, high, ..
        } => {
            refs_only_layout(operand, layout)
                && refs_only_layout(low, layout)
                && refs_only_layout(high, layout)
        }
        Expr::Aggregate { arg, .. } => arg.as_ref().is_none_or(|a| refs_only_layout(a, layout)),
        Expr::Function { args, .. } => args.iter().all(|e| refs_only_layout(e, layout)),
        Expr::Case {
            branches,
            else_branch,
        } => {
            branches
                .iter()
                .all(|(c, v)| refs_only_layout(c, layout) && refs_only_layout(v, layout))
                && else_branch
                    .as_ref()
                    .is_none_or(|e| refs_only_layout(e, layout))
        }
        // Unresolved subqueries cannot be pushed down safely.
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) | Expr::Exists { .. } => false,
    }
}

/// Collect top-level AND conjuncts.
pub(crate) fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut v = conjuncts(left);
            v.extend(conjuncts(right));
            v
        }
        other => vec![other],
    }
}

/// An index-restricted scan: the candidate row ids plus the statistics
/// of the index that produced them (surfaced by EXPLAIN and consulted by
/// the columnar-vs-index decision).
#[derive(Debug)]
pub(crate) struct IndexChoice {
    /// Candidate row ids, in index key order.
    pub ids: Vec<RowId>,
    /// Name of the consulted index.
    pub index_name: String,
    /// Distinct non-NULL keys in the index (cardinality statistic).
    pub distinct_keys: usize,
    /// Smallest and largest indexed key, when the index is non-empty.
    pub key_range: Option<(Value, Value)>,
}

impl IndexChoice {
    fn new(ix: &crate::index::Index, ids: Vec<RowId>) -> Self {
        IndexChoice {
            ids,
            index_name: ix.name.clone(),
            distinct_keys: ix.distinct_keys(),
            key_range: match (ix.min_key(), ix.max_key()) {
                (Some(lo), Some(hi)) => Some((lo.clone(), hi.clone())),
                _ => None,
            },
        }
    }
}

/// If the WHERE clause has an indexable conjunct on the base table, return
/// the candidate row ids; `None` means full scan. Also used by the
/// UPDATE/DELETE executors to avoid full-table target scans.
pub(crate) fn index_candidates(
    table: &Table,
    binding: &str,
    layout1: &Layout,
    where_clause: Option<&Expr>,
    params: &[Value],
) -> Result<Option<IndexChoice>> {
    let Some(pred) = where_clause else {
        return Ok(None);
    };
    let resolve_base_col = |e: &Expr| -> Option<usize> {
        if let Expr::Column { table: t, column } = e {
            match t {
                Some(t) if !t.eq_ignore_ascii_case(binding) => None,
                _ => layout1.resolve(None, column).ok(),
            }
        } else {
            None
        }
    };
    let const_val = |e: &Expr| -> Option<Value> {
        match e {
            Expr::Literal(v) => Some(v.clone()),
            Expr::Param(i) => params.get(*i).cloned(),
            _ => None,
        }
    };
    for c in conjuncts(pred) {
        if let Expr::Binary { op, left, right } = c {
            // col op const / const op col
            let (col, val, op) = match (resolve_base_col(left), const_val(right)) {
                (Some(col), Some(v)) => (col, v, *op),
                _ => match (resolve_base_col(right), const_val(left)) {
                    (Some(col), Some(v)) => (col, v, flip(*op)),
                    _ => continue,
                },
            };
            if val.is_null() {
                continue;
            }
            let Some(ix) = table.index_on(col) else {
                continue;
            };
            let ids = match op {
                BinaryOp::Eq => ix.get(&val),
                BinaryOp::Lt => ix.range(Bound::Unbounded, Bound::Excluded(&val)),
                BinaryOp::LtEq => ix.range(Bound::Unbounded, Bound::Included(&val)),
                BinaryOp::Gt => ix.range(Bound::Excluded(&val), Bound::Unbounded),
                BinaryOp::GtEq => ix.range(Bound::Included(&val), Bound::Unbounded),
                _ => continue,
            };
            return Ok(Some(IndexChoice::new(ix, ids)));
        }
        if let Expr::Between {
            operand,
            low,
            high,
            negated: false,
        } = c
        {
            if let (Some(col), Some(lo), Some(hi)) =
                (resolve_base_col(operand), const_val(low), const_val(high))
            {
                if let Some(ix) = table.index_on(col) {
                    let ids = ix.range(Bound::Included(&lo), Bound::Included(&hi));
                    return Ok(Some(IndexChoice::new(ix, ids)));
                }
            }
        }
        if let Expr::InList {
            operand,
            list,
            negated: false,
        } = c
        {
            if let Some(col) = resolve_base_col(operand) {
                if let Some(ix) = table.index_on(col) {
                    let mut ids = Vec::new();
                    let mut all_const = true;
                    for item in list {
                        match const_val(item) {
                            Some(v) => ids.extend(ix.get(&v)),
                            None => {
                                all_const = false;
                                break;
                            }
                        }
                    }
                    if all_const {
                        ids.sort_unstable();
                        ids.dedup();
                        return Ok(Some(IndexChoice::new(ix, ids)));
                    }
                }
            }
        }
    }
    Ok(None)
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

// ---------------- projection ----------------

/// Expand projections into (name, expr) pairs; wildcards become columns.
fn expand_projections(projections: &[Projection], layout: &Layout) -> Result<Vec<(String, Expr)>> {
    let mut out = Vec::new();
    for p in projections {
        match p {
            Projection::Wildcard => {
                for (binding, col) in layout.flat() {
                    out.push((
                        col.clone(),
                        Expr::Column {
                            table: Some(binding.clone()),
                            column: col.clone(),
                        },
                    ));
                }
            }
            Projection::TableWildcard(t) => {
                let (start, len) = layout
                    .binding_span(t)
                    .ok_or_else(|| DbError::NoSuchTable(t.clone()))?;
                for (binding, col) in &layout.flat()[start..start + len] {
                    out.push((
                        col.clone(),
                        Expr::Column {
                            table: Some(binding.clone()),
                            column: col.clone(),
                        },
                    ));
                }
            }
            Projection::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| expr.default_name());
                out.push((name, expr.clone()));
            }
        }
    }
    Ok(out)
}

fn plain_path(
    proj: &[Projection],
    order_by: &[OrderItem],
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let projections = expand_projections(proj, layout)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();

    // ORDER BY before projection so sort keys can use any source column.
    let mut indices: Vec<usize> = (0..rows.len()).collect();
    if !order_by.is_empty() {
        let _stage = telemetry::span("db.exec.sort");
        let t0 = prof.is_some().then(Instant::now);
        let keys = order_keys(order_by, layout, rows, params, &projections)?;
        sort_indices(&mut indices, &keys, order_by);
        if let Some(p) = prof {
            p.sort_ns = stage_ns(t0);
        }
    }

    let mut out_rows = Vec::with_capacity(rows.len());
    for &i in &indices {
        let env = Env::new(layout, &rows[i], params);
        let mut out = Vec::with_capacity(projections.len());
        for (_, e) in &projections {
            out.push(eval(e, &env)?);
        }
        out_rows.push(out);
    }
    Ok(ResultSet {
        columns,
        rows: out_rows,
        ..ResultSet::default()
    })
}

// ---------------- aggregation ----------------

/// Collect every distinct aggregate sub-expression in a tree.
pub(crate) fn collect_aggregates<'a>(expr: &'a Expr, out: &mut Vec<&'a Expr>) {
    match expr {
        Expr::Aggregate { .. } => {
            if !out.contains(&expr) {
                out.push(expr);
            }
        }
        Expr::Unary { operand, .. } | Expr::IsNull { operand, .. } => {
            collect_aggregates(operand, out)
        }
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        Expr::InList { operand, list, .. } => {
            collect_aggregates(operand, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        Expr::Between {
            operand, low, high, ..
        } => {
            collect_aggregates(operand, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        Expr::Case {
            branches,
            else_branch,
        } => {
            for (c, v) in branches {
                collect_aggregates(c, out);
                collect_aggregates(v, out);
            }
            if let Some(e) = else_branch {
                collect_aggregates(e, out);
            }
        }
        Expr::InSubquery { operand, .. } => collect_aggregates(operand, out),
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
    }
}

/// Replace aggregate nodes with their computed literal values.
fn substitute(expr: &Expr, aggs: &[&Expr], values: &[Value]) -> Expr {
    if let Some(pos) = aggs.iter().position(|a| *a == expr) {
        return Expr::Literal(values[pos].clone());
    }
    match expr {
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(substitute(operand, aggs, values)),
        },
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(substitute(left, aggs, values)),
            right: Box::new(substitute(right, aggs, values)),
        },
        Expr::IsNull { operand, negated } => Expr::IsNull {
            operand: Box::new(substitute(operand, aggs, values)),
            negated: *negated,
        },
        Expr::InList {
            operand,
            list,
            negated,
        } => Expr::InList {
            operand: Box::new(substitute(operand, aggs, values)),
            list: list.iter().map(|e| substitute(e, aggs, values)).collect(),
            negated: *negated,
        },
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => Expr::Between {
            operand: Box::new(substitute(operand, aggs, values)),
            low: Box::new(substitute(low, aggs, values)),
            high: Box::new(substitute(high, aggs, values)),
            negated: *negated,
        },
        Expr::Function { name, args } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|e| substitute(e, aggs, values)).collect(),
        },
        Expr::Case {
            branches,
            else_branch,
        } => Expr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (substitute(c, aggs, values), substitute(v, aggs, values)))
                .collect(),
            else_branch: else_branch
                .as_ref()
                .map(|e| Box::new(substitute(e, aggs, values))),
        },
        other => other.clone(),
    }
}

#[allow(clippy::too_many_arguments)]
fn aggregate_path(
    proj: &[Projection],
    group_by: &[Expr],
    having: Option<&Expr>,
    order_by: &[OrderItem],
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    mut prof: Option<&mut ExecProfile>,
) -> Result<ResultSet> {
    let agg_t0 = prof.is_some().then(Instant::now);
    let projections = expand_projections(proj, layout)?;
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();

    // All aggregate expressions across projections, HAVING, ORDER BY.
    let mut aggs: Vec<&Expr> = Vec::new();
    for (_, e) in &projections {
        collect_aggregates(e, &mut aggs);
    }
    if let Some(h) = having {
        collect_aggregates(h, &mut aggs);
    }
    for o in order_by {
        collect_aggregates(&o.expr, &mut aggs);
    }

    // Group rows and accumulate aggregates, in parallel when the row count
    // justifies it. DISTINCT aggregates dedupe through per-group hash sets
    // that cannot be split across partitions, so they pin the serial path.
    let has_distinct = aggs
        .iter()
        .any(|a| matches!(a, Expr::Aggregate { distinct: true, .. }));
    let parallel = if has_distinct {
        None
    } else {
        pool::partitions(rows.len())
    };
    let mut agg_partitions = 0usize;
    let groups = match parallel {
        Some(ranges) => {
            telemetry::add("db.exec.parallel_aggregates", 1);
            agg_partitions = ranges.len();
            let aggs_ref = &aggs;
            let partials = pool::try_run(ranges.len(), |pi| {
                group_and_accumulate(group_by, layout, rows, params, aggs_ref, ranges[pi].clone())
            })?;
            let _merge = telemetry::span("db.exec.merge");
            merge_group_partials(partials)?
        }
        None => group_and_accumulate(group_by, layout, rows, params, &aggs, 0..rows.len())?,
    };
    let group_count = groups.len() as u64;

    let null_row: Row = vec![Value::Null; layout.width()];
    let mut out_rows = Vec::with_capacity(groups.len());
    for (_, rep_idx, accs) in &groups {
        let agg_values: Vec<Value> = accs.iter().map(|a| a.finish()).collect();

        // Representative row for evaluating group-key expressions. An empty
        // group (aggregate over zero rows, no GROUP BY) uses a NULL row.
        let rep: &Row = match rep_idx {
            Some(i) => &rows[*i],
            None => &null_row,
        };
        let env = Env::new(layout, rep, params);

        // HAVING
        if let Some(h) = having {
            let h_sub = substitute(h, &aggs, &agg_values);
            if !eval_condition(&h_sub, &env)? {
                continue;
            }
        }

        let mut out = Vec::with_capacity(projections.len());
        for (_, e) in &projections {
            let e_sub = substitute(e, &aggs, &agg_values);
            out.push(eval(&e_sub, &env)?);
        }

        // ORDER BY keys for this group (computed now, sorted below).
        let mut keys = Vec::with_capacity(order_by.len());
        for o in order_by {
            let key = resolve_order_expr(&o.expr, &projections, &columns, &out)?;
            match key {
                Some(v) => keys.push(v),
                None => {
                    let e_sub = substitute(&o.expr, &aggs, &agg_values);
                    keys.push(eval(&e_sub, &env)?);
                }
            }
        }
        out_rows.push((keys, out));
    }

    // Aggregate time excludes the group sort, reported on its own line.
    let agg_ns = stage_ns(agg_t0);
    if let Some(p) = prof.as_deref_mut() {
        p.aggregate = Some((group_count, agg_partitions, agg_ns));
    }

    // Sort groups.
    if !order_by.is_empty() {
        let _stage = telemetry::span("db.exec.sort");
        let t0 = prof.is_some().then(Instant::now);
        out_rows.sort_by(|a, b| {
            for (i, o) in order_by.iter().enumerate() {
                let ord = a.0[i].total_cmp(&b.0[i]);
                let ord = if o.descending { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        if let Some(p) = prof {
            p.sort_ns = stage_ns(t0);
        }
    }

    Ok(ResultSet {
        columns,
        rows: out_rows.into_iter().map(|(_, r)| r).collect(),
        ..ResultSet::default()
    })
}

/// Grouping state: key values, index of the group's first (representative)
/// row, and one accumulator per aggregate expression.
type GroupState = (Vec<Value>, Option<usize>, Vec<Accumulator>);

fn new_accumulators(aggs: &[&Expr]) -> Vec<Accumulator> {
    aggs.iter()
        .map(|a| match a {
            Expr::Aggregate { func, distinct, .. } => Accumulator::new(*func, *distinct),
            _ => unreachable!("collect_aggregates only collects aggregates"),
        })
        .collect()
}

fn update_accumulators(accs: &mut [Accumulator], aggs: &[&Expr], env: &Env) -> Result<()> {
    for (ai, a) in aggs.iter().enumerate() {
        let Expr::Aggregate { arg, .. } = a else {
            unreachable!()
        };
        match arg {
            None => accs[ai].update(None)?,
            Some(e) => {
                let v = eval(e, env)?;
                accs[ai].update(Some(&v))?;
            }
        }
    }
    Ok(())
}

/// Group `rows[range]` and feed the aggregates, producing groups in
/// first-occurrence order with the range's first member as representative.
/// Called with the full range on the serial path, and once per partition on
/// the parallel path.
fn group_and_accumulate(
    group_by: &[Expr],
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    aggs: &[&Expr],
    range: Range<usize>,
) -> Result<Vec<GroupState>> {
    let mut groups: Vec<GroupState> = Vec::new();
    if group_by.is_empty() {
        let rep = (!range.is_empty()).then_some(range.start);
        let mut accs = new_accumulators(aggs);
        for i in range {
            let env = Env::new(layout, &rows[i], params);
            update_accumulators(&mut accs, aggs, &env)?;
        }
        groups.push((Vec::new(), rep, accs));
    } else {
        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        for i in range {
            let env = Env::new(layout, &rows[i], params);
            let mut key = Vec::with_capacity(group_by.len());
            for g in group_by {
                key.push(eval(g, &env)?);
            }
            let gi = match group_index.get(&key) {
                Some(&gi) => gi,
                None => {
                    group_index.insert(key.clone(), groups.len());
                    groups.push((key, Some(i), new_accumulators(aggs)));
                    groups.len() - 1
                }
            };
            update_accumulators(&mut groups[gi].2, aggs, &env)?;
        }
    }
    Ok(groups)
}

/// Merge per-partition group partials in partition-index order. Because
/// partitions cover ascending row ranges, first occurrence across the merge
/// equals global first occurrence — group output order and representative
/// rows match the serial path exactly.
fn merge_group_partials(partials: Vec<Vec<GroupState>>) -> Result<Vec<GroupState>> {
    let mut groups: Vec<GroupState> = Vec::new();
    let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
    for partial in partials {
        for (key, rep, accs) in partial {
            match group_index.get(&key) {
                Some(&gi) => {
                    // Keep the earlier representative; merge accumulators.
                    for (dst, src) in groups[gi].2.iter_mut().zip(&accs) {
                        dst.merge(src)?;
                    }
                    if groups[gi].1.is_none() {
                        groups[gi].1 = rep;
                    }
                }
                None => {
                    group_index.insert(key.clone(), groups.len());
                    groups.push((key, rep, accs));
                }
            }
        }
    }
    Ok(groups)
}

// ---------------- ORDER BY helpers ----------------

/// Resolve ORDER BY shortcuts: ordinal (`ORDER BY 2`) or output alias.
/// Returns the already-computed output value when applicable.
fn resolve_order_expr(
    expr: &Expr,
    projections: &[(String, Expr)],
    columns: &[String],
    out_row: &[Value],
) -> Result<Option<Value>> {
    match expr {
        Expr::Literal(Value::Int(n)) => {
            let i = *n as usize;
            if i == 0 || i > columns.len() {
                return Err(DbError::Eval(format!(
                    "ORDER BY ordinal {n} out of range 1..={}",
                    columns.len()
                )));
            }
            Ok(Some(out_row[i - 1].clone()))
        }
        Expr::Column {
            table: None,
            column,
        } => {
            // Prefer an explicit output alias over a source column only if
            // the alias was explicitly given (it shadows).
            if let Some(pos) = projections
                .iter()
                .position(|(n, e)| n.eq_ignore_ascii_case(column) && !matches!(e, Expr::Column { column: c, .. } if c.eq_ignore_ascii_case(column)))
            {
                return Ok(Some(out_row[pos].clone()));
            }
            Ok(None)
        }
        _ => Ok(None),
    }
}

/// Evaluate ORDER BY keys for every row (plain path).
fn order_keys(
    order_by: &[OrderItem],
    layout: &Layout,
    rows: &[Row],
    params: &[Value],
    projections: &[(String, Expr)],
) -> Result<Vec<Vec<Value>>> {
    let columns: Vec<String> = projections.iter().map(|(n, _)| n.clone()).collect();
    let mut keys = Vec::with_capacity(rows.len());
    for row in rows {
        let env = Env::new(layout, row, params);
        let mut k = Vec::with_capacity(order_by.len());
        for o in order_by {
            // For ordinals/aliases we must project first.
            let needs_projection = matches!(&o.expr, Expr::Literal(Value::Int(_)))
                || matches!(&o.expr, Expr::Column { table: None, .. });
            if needs_projection {
                // compute the projected row lazily only when required
                let mut out = Vec::with_capacity(projections.len());
                for (_, e) in projections {
                    out.push(eval(e, &env)?);
                }
                if let Some(v) = resolve_order_expr(&o.expr, projections, &columns, &out)? {
                    k.push(v);
                    continue;
                }
            }
            k.push(eval(&o.expr, &env)?);
        }
        keys.push(k);
    }
    Ok(keys)
}

fn sort_indices(indices: &mut [usize], keys: &[Vec<Value>], order_by: &[OrderItem]) {
    indices.sort_by(|&a, &b| {
        for (i, o) in order_by.iter().enumerate() {
            let ord = keys[a][i].total_cmp(&keys[b][i]);
            let ord = if o.descending { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}
