//! The PerfDMF relational schema (paper §3.2).
//!
//! ```text
//! APPLICATION ──< EXPERIMENT ──< TRIAL ──< METRIC
//!                                      ├──< INTERVAL_EVENT ──< INTERVAL_LOCATION_PROFILE
//!                                      │                   ├──< INTERVAL_TOTAL_SUMMARY
//!                                      │                   └──< INTERVAL_MEAN_SUMMARY
//!                                      └──< ATOMIC_EVENT ──< ATOMIC_LOCATION_PROFILE
//! ```
//!
//! APPLICATION / EXPERIMENT / TRIAL have the paper's *flexible schema*:
//! beyond the required `id`, `name`, and foreign-key columns, metadata
//! columns may be added or removed at runtime (`ALTER TABLE`) and are
//! discovered through [`perfdmf_db::Connection::table_meta`] — no source
//! changes required.

use perfdmf_db::{Connection, Result};

/// DDL statements creating the PerfDMF schema.
pub const SCHEMA_DDL: &[&str] = &[
    "CREATE TABLE IF NOT EXISTS application (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        name TEXT NOT NULL,
        version TEXT,
        description TEXT)",
    "CREATE TABLE IF NOT EXISTS experiment (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        application INTEGER NOT NULL REFERENCES application(id),
        name TEXT NOT NULL)",
    "CREATE TABLE IF NOT EXISTS trial (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        experiment INTEGER NOT NULL REFERENCES experiment(id),
        name TEXT NOT NULL,
        date TEXT,
        node_count INTEGER,
        contexts_per_node INTEGER,
        threads_per_context INTEGER,
        problem_definition TEXT,
        source_format TEXT)",
    "CREATE TABLE IF NOT EXISTS metric (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        trial INTEGER NOT NULL REFERENCES trial(id),
        name TEXT NOT NULL,
        derived BOOLEAN DEFAULT FALSE)",
    "CREATE TABLE IF NOT EXISTS interval_event (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        trial INTEGER NOT NULL REFERENCES trial(id),
        name TEXT NOT NULL,
        group_name TEXT)",
    "CREATE TABLE IF NOT EXISTS interval_location_profile (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        interval_event INTEGER NOT NULL REFERENCES interval_event(id),
        metric INTEGER NOT NULL REFERENCES metric(id),
        node INTEGER NOT NULL,
        context INTEGER NOT NULL,
        thread INTEGER NOT NULL,
        inclusive DOUBLE,
        inclusive_percentage DOUBLE,
        exclusive DOUBLE,
        exclusive_percentage DOUBLE,
        inclusive_per_call DOUBLE,
        num_calls DOUBLE,
        num_subrs DOUBLE)",
    "CREATE TABLE IF NOT EXISTS interval_total_summary (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        interval_event INTEGER NOT NULL REFERENCES interval_event(id),
        metric INTEGER NOT NULL REFERENCES metric(id),
        inclusive DOUBLE,
        inclusive_percentage DOUBLE,
        exclusive DOUBLE,
        exclusive_percentage DOUBLE,
        inclusive_per_call DOUBLE,
        num_calls DOUBLE,
        num_subrs DOUBLE)",
    "CREATE TABLE IF NOT EXISTS interval_mean_summary (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        interval_event INTEGER NOT NULL REFERENCES interval_event(id),
        metric INTEGER NOT NULL REFERENCES metric(id),
        inclusive DOUBLE,
        inclusive_percentage DOUBLE,
        exclusive DOUBLE,
        exclusive_percentage DOUBLE,
        inclusive_per_call DOUBLE,
        num_calls DOUBLE,
        num_subrs DOUBLE)",
    "CREATE TABLE IF NOT EXISTS atomic_event (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        trial INTEGER NOT NULL REFERENCES trial(id),
        name TEXT NOT NULL,
        group_name TEXT)",
    "CREATE TABLE IF NOT EXISTS atomic_location_profile (
        id INTEGER PRIMARY KEY AUTO_INCREMENT,
        atomic_event INTEGER NOT NULL REFERENCES atomic_event(id),
        node INTEGER NOT NULL,
        context INTEGER NOT NULL,
        thread INTEGER NOT NULL,
        sample_count INTEGER,
        maximum_value DOUBLE,
        minimum_value DOUBLE,
        mean_value DOUBLE,
        standard_deviation DOUBLE)",
    // Foreign-key access paths used by every trial load / analysis query.
    "CREATE INDEX ix_experiment_app ON experiment (application)",
    "CREATE INDEX ix_trial_experiment ON trial (experiment)",
    "CREATE INDEX ix_metric_trial ON metric (trial)",
    "CREATE INDEX ix_ievent_trial ON interval_event (trial)",
    "CREATE INDEX ix_ilp_event ON interval_location_profile (interval_event)",
    "CREATE INDEX ix_ilp_metric ON interval_location_profile (metric)",
    "CREATE INDEX ix_its_event ON interval_total_summary (interval_event)",
    "CREATE INDEX ix_ims_event ON interval_mean_summary (interval_event)",
    "CREATE INDEX ix_aevent_trial ON atomic_event (trial)",
    "CREATE INDEX ix_alp_event ON atomic_location_profile (atomic_event)",
];

/// Tables whose schema is *flexible* (metadata columns may be added).
pub const FLEXIBLE_TABLES: &[&str] = &["application", "experiment", "trial"];

/// Create the PerfDMF schema in a database (idempotent for tables; index
/// creation is skipped if the schema already exists).
pub fn create_schema(conn: &Connection) -> Result<()> {
    let already = conn.has_table("application");
    for ddl in SCHEMA_DDL {
        if already && ddl.starts_with("CREATE INDEX") {
            continue;
        }
        conn.execute(ddl, &[])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_all_tables_and_is_idempotent() {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        for t in [
            "application",
            "experiment",
            "trial",
            "metric",
            "interval_event",
            "interval_location_profile",
            "interval_total_summary",
            "interval_mean_summary",
            "atomic_event",
            "atomic_location_profile",
        ] {
            assert!(conn.has_table(t), "missing table {t}");
        }
        // idempotent
        create_schema(&conn).unwrap();
    }

    #[test]
    fn foreign_keys_wired() {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        // trial requires an existing experiment
        assert!(conn
            .insert("INSERT INTO trial (experiment, name) VALUES (1, 'x')", &[])
            .is_err());
    }
}
