//! Experiment E4 — PerfExplorer cluster analysis (paper §5.3).
//!
//! Measures k-means over sPPM-like thread×counter data at growing thread
//! counts, the silhouette-based k selection, and PCA reduction. Expected
//! shape: the assignment-dominated k-means cost grows ~linearly in
//! threads (the parallel assignment step keeps the constant low);
//! silhouette (O(n²)) is the k-selection cost ceiling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_analysis::{kmeans, pca, select_k, thread_metric_matrix};
use perfdmf_bench::blob_data;
use perfdmf_profile::IntervalField;
use perfdmf_workload::SppmModel;

fn bench_kmeans_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_kmeans");
    group.sample_size(20);
    for threads in [256usize, 1024, 4096] {
        let (data, _) = blob_data(threads, 7, 3, 5);
        group.throughput(Throughput::Elements(threads as u64));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &data, |b, d| {
            b.iter(|| kmeans(d, 3, 42, 100));
        });
    }
    group.finish();
}

fn bench_k_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_select_k");
    group.sample_size(10);
    for threads in [128usize, 256, 512] {
        let (data, _) = blob_data(threads, 7, 3, 9);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &data, |b, d| {
            b.iter(|| select_k(d, 2..=6, 1));
        });
    }
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    let model = SppmModel::default_classes(3);
    let mut group = c.benchmark_group("e4_features");
    for threads in [512usize, 2048] {
        let (profile, _) = model.generate(threads, &[0.5, 0.3, 0.2]);
        let event = profile.find_event("sppm_timestep").expect("event");
        group.throughput(Throughput::Elements(threads as u64));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &(), |b, _| {
            b.iter(|| {
                let mut fm = thread_metric_matrix(&profile, event, IntervalField::Exclusive);
                fm.standardize();
                fm
            });
        });
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_pca");
    for (n, d) in [(512usize, 7usize), (512, 32), (2048, 7)] {
        let (data, _) = blob_data(n, d, 3, 13);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}x{d}")),
            &data,
            |b, data| {
                b.iter(|| {
                    let p = pca(data).expect("pca");
                    p.transform(data, 2)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kmeans_scaling,
    bench_k_selection,
    bench_feature_extraction,
    bench_pca
);
criterion_main!(benches);
