/root/repo/target/debug/deps/speedup_study-2786380b3dc1a639.d: tests/speedup_study.rs Cargo.toml

/root/repo/target/debug/deps/libspeedup_study-2786380b3dc1a639.rmeta: tests/speedup_study.rs Cargo.toml

tests/speedup_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
