/root/repo/target/debug/deps/e5_schema_ops-88b0c04cbb189a83.d: crates/bench/benches/e5_schema_ops.rs Cargo.toml

/root/repo/target/debug/deps/libe5_schema_ops-88b0c04cbb189a83.rmeta: crates/bench/benches/e5_schema_ops.rs Cargo.toml

crates/bench/benches/e5_schema_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
