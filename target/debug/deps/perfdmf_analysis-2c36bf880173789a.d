/root/repo/target/debug/deps/perfdmf_analysis-2c36bf880173789a.d: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_analysis-2c36bf880173789a.rmeta: crates/analysis/src/lib.rs crates/analysis/src/compare.rs crates/analysis/src/features.rs crates/analysis/src/hierarchical.rs crates/analysis/src/kmeans.rs crates/analysis/src/pca.rs crates/analysis/src/report.rs crates/analysis/src/scalability.rs crates/analysis/src/speedup.rs crates/analysis/src/stats.rs Cargo.toml

crates/analysis/src/lib.rs:
crates/analysis/src/compare.rs:
crates/analysis/src/features.rs:
crates/analysis/src/hierarchical.rs:
crates/analysis/src/kmeans.rs:
crates/analysis/src/pca.rs:
crates/analysis/src/report.rs:
crates/analysis/src/scalability.rs:
crates/analysis/src/speedup.rs:
crates/analysis/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
