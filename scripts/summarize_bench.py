"""Summarize criterion output in bench_output.txt into a compact table."""
import re, sys

path = sys.argv[1] if len(sys.argv) > 1 else "/root/repo/bench_output.txt"
text = open(path).read()
# criterion blocks: "<name>\n ...time:   [lo MID hi]"
pattern = re.compile(r"^(?P<name>[\w/ .:+-]+?)\s*\n\s+time:\s+\[[^\]]*?\s([0-9.]+\s\w+)\s[0-9.]+\s\w+\]", re.M)
rows = []
for m in pattern.finditer(text):
    name = m.group("name").strip()
    if name.startswith("Benchmarking") or name.startswith("Warning"):
        continue
    rows.append((name, m.group(2)))
width = max(len(n) for n, _ in rows) if rows else 10
for n, t in rows:
    print(f"{n:<{width}}  {t}")
print(f"\n{len(rows)} benchmark results")
