//! Database error type.

use crate::value::DataType;
use std::fmt;

/// Result alias for database operations.
pub type Result<T> = std::result::Result<T, DbError>;

/// Errors produced by the SQL engine.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// SQL text failed to tokenize or parse.
    Parse { message: String, position: usize },
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced column does not exist.
    NoSuchColumn { table: String, column: String },
    /// Ambiguous unqualified column in a join.
    AmbiguousColumn(String),
    /// Table already exists (CREATE without IF NOT EXISTS).
    TableExists(String),
    /// Column already exists (ALTER TABLE ADD).
    ColumnExists { table: String, column: String },
    /// A value could not be coerced to the column type.
    TypeMismatch {
        column: String,
        expected: DataType,
        got: String,
    },
    /// NOT NULL constraint violated.
    NotNullViolation { table: String, column: String },
    /// UNIQUE / PRIMARY KEY constraint violated.
    UniqueViolation { table: String, column: String },
    /// FOREIGN KEY constraint violated.
    ForeignKeyViolation {
        table: String,
        column: String,
        references: String,
    },
    /// Wrong number of values in INSERT, or parameter count mismatch.
    Arity { expected: usize, got: usize },
    /// Expression evaluation failed (bad operand types, division by zero...).
    Eval(String),
    /// A `?` placeholder had no bound parameter.
    MissingParameter(usize),
    /// Operation requires an active transaction / no nested transactions.
    Transaction(String),
    /// Persistence layer failure.
    Storage(String),
    /// An I/O operation failed, with the operation named for context
    /// (e.g. "snapshot fsync", "wal append").
    Io { op: String, message: String },
    /// Snapshot/WAL bytes were malformed.
    Corrupt(String),
    /// DDL attempted on the reserved `perfdmf_` system-table namespace.
    ReservedTableName(String),
    /// DML attempted against a read-only virtual system table.
    ReadOnlySystemTable(String),
    /// Anything else.
    Unsupported(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { message, position } => {
                write!(f, "SQL parse error at position {position}: {message}")
            }
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn { table, column } => {
                write!(f, "no such column: {table}.{column}")
            }
            DbError::AmbiguousColumn(c) => write!(f, "ambiguous column reference: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::ColumnExists { table, column } => {
                write!(f, "column already exists: {table}.{column}")
            }
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch for column {column}: expected {expected}, got {got}"
            ),
            DbError::NotNullViolation { table, column } => {
                write!(f, "NOT NULL constraint failed: {table}.{column}")
            }
            DbError::UniqueViolation { table, column } => {
                write!(f, "UNIQUE constraint failed: {table}.{column}")
            }
            DbError::ForeignKeyViolation {
                table,
                column,
                references,
            } => write!(
                f,
                "FOREIGN KEY constraint failed: {table}.{column} references {references}"
            ),
            DbError::Arity { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::Eval(m) => write!(f, "evaluation error: {m}"),
            DbError::MissingParameter(i) => write!(f, "missing bound parameter {i}"),
            DbError::Transaction(m) => write!(f, "transaction error: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Io { op, message } => write!(f, "I/O error during {op}: {message}"),
            DbError::Corrupt(m) => write!(f, "corrupt database file: {m}"),
            DbError::ReservedTableName(t) => write!(
                f,
                "table name is reserved for system tables: {t} (the perfdmf_ prefix \
                 names read-only virtual tables; see docs/introspection.md)"
            ),
            DbError::ReadOnlySystemTable(t) => {
                write!(f, "system table is read-only: {t}")
            }
            DbError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
        }
    }
}

impl DbError {
    /// An [`DbError::Io`] from a `std::io::Error` plus the operation that
    /// failed.
    pub fn io(op: impl Into<String>, e: std::io::Error) -> DbError {
        DbError::Io {
            op: op.into(),
            message: e.to_string(),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Storage(e.to_string())
    }
}
