//! Public-API checks for the instrument primitives: histogram bucketing
//! at the extremes of `u64`, and counter correctness under contention.
//!
//! These use direct [`Counter`]/[`Histogram`] handles, which record
//! unconditionally (the global enabled flag only gates the name-based
//! convenience helpers), so they are immune to other tests toggling it.

use perfdmf_telemetry as telemetry;
use perfdmf_telemetry::registry::BUCKETS;

#[test]
fn histogram_buckets_cover_u64_extremes() {
    let h = telemetry::histogram("itest.edges");
    h.record(0);
    h.record(1);
    h.record(u64::MAX);

    assert_eq!(h.count(), 3);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(u64::MAX));

    let buckets = h.buckets();
    assert_eq!(buckets.len(), BUCKETS);
    assert_eq!(buckets[0], 1, "0 lands in the dedicated zero bucket");
    assert_eq!(buckets[1], 1, "1 lands in the first power-of-two bucket");
    assert_eq!(buckets[BUCKETS - 1], 1, "u64::MAX lands in the top bucket");
    assert_eq!(
        buckets.iter().sum::<u64>(),
        3,
        "no sample lost or duplicated"
    );

    let snap = telemetry::snapshot();
    let hs = snap.histogram("itest.edges").expect("snapshotted");
    assert_eq!(hs.quantile(0.0), Some(0));
    assert_eq!(hs.quantile(1.0), Some(u64::MAX));
}

#[test]
fn concurrent_counter_increments_do_not_lose_updates() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;

    let direct = telemetry::counter("itest.concurrent.direct");
    let batched = telemetry::counter("itest.concurrent.batched");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                // Half the threads hammer the shared atomic directly...
                for _ in 0..PER_THREAD {
                    direct.incr();
                }
                // ...and every thread also batches through a LocalCounter,
                // flushed on drop at scope exit.
                let mut local = batched.local();
                for _ in 0..PER_THREAD {
                    local.incr();
                }
            });
        }
    });
    assert_eq!(direct.value(), THREADS as u64 * PER_THREAD);
    assert_eq!(batched.value(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_records_keep_every_sample() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 5_000;

    let h = telemetry::histogram("itest.concurrent.hist");
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.min(), Some(0));
    assert_eq!(h.max(), Some(THREADS as u64 * PER_THREAD - 1));
    let expected_sum: u64 = (0..THREADS as u64 * PER_THREAD).sum();
    assert_eq!(h.sum(), expected_sum);
}
