/root/repo/target/debug/deps/prop_roundtrip-7d2569a8556547af.d: crates/xml/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-7d2569a8556547af.rmeta: crates/xml/tests/prop_roundtrip.rs Cargo.toml

crates/xml/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
