/root/repo/target/debug/deps/e2_import_formats-f473d952b644d746.d: crates/bench/benches/e2_import_formats.rs Cargo.toml

/root/repo/target/debug/deps/libe2_import_formats-f473d952b644d746.rmeta: crates/bench/benches/e2_import_formats.rs Cargo.toml

crates/bench/benches/e2_import_formats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
