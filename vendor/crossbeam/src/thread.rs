//! Scoped threads in crossbeam's API shape, over `std::thread::scope`.
//!
//! One difference from upstream that matters here: panics inside spawned
//! threads are not collected into the outer `Result` (std's scope
//! propagates them), so `scope(...)` only ever returns `Ok` — callers
//! that `.expect()` the result behave identically.

use std::thread as std_thread;

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std_thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result.
    pub fn join(self) -> std_thread::Result<T> {
        self.inner.join()
    }
}

/// Spawns scoped threads. Unlike upstream this is `Copy` and handed to
/// spawned closures by value, which accepts the same `|s|`/`|_|` call
/// sites.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std_thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread scoped to the enclosing [`scope`] call. The
    /// closure receives the scope, so spawned threads can spawn more.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(scope)),
        }
    }
}

/// Run `f` with a scope handle; every thread it spawns is joined before
/// this returns.
pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std_thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .expect("crossbeam scope");
        assert_eq!(total, 10);
    }
}
