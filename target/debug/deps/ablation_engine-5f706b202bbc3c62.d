/root/repo/target/debug/deps/ablation_engine-5f706b202bbc3c62.d: crates/bench/benches/ablation_engine.rs Cargo.toml

/root/repo/target/debug/deps/libablation_engine-5f706b202bbc3c62.rmeta: crates/bench/benches/ablation_engine.rs Cargo.toml

crates/bench/benches/ablation_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
