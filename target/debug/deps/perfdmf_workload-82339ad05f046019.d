/root/repo/target/debug/deps/perfdmf_workload-82339ad05f046019.d: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

/root/repo/target/debug/deps/perfdmf_workload-82339ad05f046019: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

crates/workload/src/lib.rs:
crates/workload/src/models.rs:
crates/workload/src/writers.rs:
