/root/repo/target/debug/deps/perfdmf_workload-b1b3946b5d9416fd.d: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

/root/repo/target/debug/deps/libperfdmf_workload-b1b3946b5d9416fd.rlib: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

/root/repo/target/debug/deps/libperfdmf_workload-b1b3946b5d9416fd.rmeta: crates/workload/src/lib.rs crates/workload/src/models.rs crates/workload/src/writers.rs

crates/workload/src/lib.rs:
crates/workload/src/models.rs:
crates/workload/src/writers.rs:
