/root/repo/target/release/deps/perfdmf_explorer-153c25eedc31b74c.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/release/deps/libperfdmf_explorer-153c25eedc31b74c.rlib: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/release/deps/libperfdmf_explorer-153c25eedc31b74c.rmeta: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
