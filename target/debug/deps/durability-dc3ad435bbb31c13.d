/root/repo/target/debug/deps/durability-dc3ad435bbb31c13.d: tests/durability.rs

/root/repo/target/debug/deps/durability-dc3ad435bbb31c13: tests/durability.rs

tests/durability.rs:
