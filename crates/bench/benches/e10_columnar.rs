//! Experiment E10 — columnar fact-table execution.
//!
//! Row execution (Value-at-a-time over materialized rows) vs the
//! columnar path (typed chunk kernels with fused predicates) on the
//! aggregate shapes PerfDMF issues against its fact table: the
//! total-summary scan (paper §5.2's MIN/MAX/AVG/STDDEV rollup) and a
//! filtered variant. Before anything is timed, both paths must produce
//! the same answer (floats within 1e-9 relative), so a speedup can
//! never come from a wrong result.
//!
//! Sizes sweep 65_536 → 1_048_576 fact rows; `PERFDMF_BENCH_QUICK`
//! keeps only the small point. A pre-pass prints the measured
//! row/columnar ratio per size for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_bench::sizes;
use perfdmf_db::{override_columnar, ColumnarMode, Connection, Value};

const TOTAL_SUMMARY: &str = "SELECT COUNT(*), SUM(calls), AVG(exclusive), \
                             MIN(exclusive), MAX(exclusive), STDDEV(exclusive) \
                             FROM fact";
const FILTERED: &str = "SELECT COUNT(*), AVG(exclusive), MAX(inclusive) \
                        FROM fact WHERE node >= 8 AND exclusive > 50.0";

/// Build a synthetic interval-profile fact table of `n` rows.
fn fact_table(n: usize) -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE fact (
            node INTEGER,
            thread INTEGER,
            event TEXT,
            calls INTEGER,
            exclusive DOUBLE,
            inclusive DOUBLE)",
        &[],
    )
    .expect("create fact");
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 33
    };
    let events = ["MPI_Send", "MPI_Recv", "MPI_Barrier", "compute", "io"];
    let mut batch = Vec::with_capacity(8192);
    let mut inserted = 0usize;
    while inserted < n {
        batch.clear();
        let take = 8192.min(n - inserted);
        for _ in 0..take {
            let r = next();
            let excl = (r % 10_000) as f64 / 100.0;
            batch.push(vec![
                Value::Int((r % 64) as i64),
                Value::Int((r % 4) as i64),
                Value::from(events[(r % events.len() as u64) as usize]),
                Value::Int((r % 1000) as i64),
                Value::Float(excl),
                Value::Float(excl * 1.5 + 1.0),
            ]);
        }
        conn.bulk_insert(
            "fact",
            &["node", "thread", "event", "calls", "exclusive", "inclusive"],
            batch.clone(),
        )
        .expect("bulk insert");
        inserted += take;
    }
    conn
}

/// Both execution paths must agree before they are raced.
fn assert_paths_agree(conn: &Connection, sql: &str) {
    let row = {
        let _m = override_columnar(ColumnarMode::Off);
        conn.query(sql, &[]).expect("row path").rows
    };
    let col = {
        let _m = override_columnar(ColumnarMode::Force);
        conn.query(sql, &[]).expect("columnar path").rows
    };
    assert_eq!(row.len(), col.len());
    for (a, b) in row.iter().zip(&col) {
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (Value::Float(x), Value::Float(y)) => assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "columnar aggregate diverged: {x} vs {y}"
                ),
                _ => assert_eq!(x, y, "columnar aggregate diverged"),
            }
        }
    }
}

/// One-shot wall-clock ratio, printed for EXPERIMENTS.md (criterion's
/// per-mode numbers are authoritative; this is the headline figure).
fn report_speedup(conn: &Connection, sql: &str, label: &str, rows: usize) {
    let time = |mode: ColumnarMode| {
        let _m = override_columnar(mode);
        conn.query(sql, &[]).expect("warmup");
        let t0 = std::time::Instant::now();
        let reps = 5;
        for _ in 0..reps {
            conn.query(sql, &[]).expect("timed run");
        }
        t0.elapsed() / reps
    };
    let row = time(ColumnarMode::Off);
    let col = time(ColumnarMode::Force);
    println!(
        "e10 {label} @ {rows} rows: row {row:?} vs columnar {col:?} \
         ({:.2}x)",
        row.as_secs_f64() / col.as_secs_f64().max(1e-12)
    );
}

fn bench_columnar(c: &mut Criterion) {
    for rows in sizes(&[65_536, 1_048_576]) {
        let conn = fact_table(rows);
        for (label, sql) in [("total_summary", TOTAL_SUMMARY), ("filtered", FILTERED)] {
            assert_paths_agree(&conn, sql);
            report_speedup(&conn, sql, label, rows);
            let mut group = c.benchmark_group(format!("e10_{label}"));
            group.sample_size(20);
            group.throughput(Throughput::Elements(rows as u64));
            for (mode_label, mode) in [
                ("row", ColumnarMode::Off),
                ("columnar", ColumnarMode::Force),
            ] {
                group.bench_with_input(BenchmarkId::new(mode_label, rows), &(), |b, _| {
                    let _m = override_columnar(mode);
                    b.iter(|| conn.query(sql, &[]).expect("query"));
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
