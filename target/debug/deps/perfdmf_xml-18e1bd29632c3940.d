/root/repo/target/debug/deps/perfdmf_xml-18e1bd29632c3940.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_xml-18e1bd29632c3940.rmeta: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
