/root/repo/target/debug/deps/perfdmf_profile-7396ca2dd391664f.d: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

/root/repo/target/debug/deps/perfdmf_profile-7396ca2dd391664f: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

crates/profile/src/lib.rs:
crates/profile/src/atomic.rs:
crates/profile/src/callpath.rs:
crates/profile/src/derived.rs:
crates/profile/src/event.rs:
crates/profile/src/interval.rs:
crates/profile/src/profile.rs:
crates/profile/src/thread.rs:
