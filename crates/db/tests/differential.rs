//! Differential SQL oracle.
//!
//! Random SELECT queries (projections, WHERE predicates, aggregates,
//! GROUP BY / HAVING, LIMIT / OFFSET) are executed five ways:
//!
//!   1. the real engine pinned serial (`perfdmf_pool` forced to 1 worker),
//!   2. the real engine forced onto the parallel partition path
//!      (4 workers, partition threshold 1),
//!   3. the engine with columnar execution forced on (serial),
//!   4. the engine with columnar execution forced on across 4 partitions,
//!   5. a naive, obviously-correct in-memory reference executor (the
//!      "oracle") written directly against SQL semantics.
//!
//! All answers must agree: exactly for integers, text, and NULL, and
//! within a small relative epsilon for floats (the parallel and columnar
//! aggregate paths reassociate floating-point sums).
//!
//! Query shapes are decoded from proptest-generated `u64` seeds with a
//! splitmix-style mixer, which keeps the generator expressive without
//! leaning on strategy combinators the vendored proptest shim lacks.
//! CI scales the case count with `PROPTEST_CASES` (each case runs
//! several queries).

use std::collections::{HashMap, HashSet};

use perfdmf_db::{override_columnar, ColumnarMode, Connection, Value};
use perfdmf_pool as pool;
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Seed decoding
// ---------------------------------------------------------------------------

/// splitmix64 step: every call advances the state and returns a mixed word.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, n: u64) -> u64 {
    mix(state) % n
}

// ---------------------------------------------------------------------------
// Table generation: t(a INTEGER, b INTEGER, c DOUBLE, s TEXT)
// ---------------------------------------------------------------------------

const COL_A: usize = 0;
const COL_B: usize = 1;
const COL_C: usize = 2;
const COL_S: usize = 3;
const COL_NAMES: [&str; 4] = ["a", "b", "c", "s"];
const TEXTS: [&str; 4] = ["red", "green", "blue", "teal"];

fn decode_row(seed: u64) -> Vec<Value> {
    let mut r = seed;
    let a = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Int(pick(&mut r, 41) as i64 - 20)
    };
    let b = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Int(pick(&mut r, 5) as i64)
    };
    let c = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Float(pick(&mut r, 64) as f64 * 0.375 - 9.0)
    };
    let s = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Text(TEXTS[pick(&mut r, 4) as usize].into())
    };
    vec![a, b, c, s]
}

// ---------------------------------------------------------------------------
// Predicates (three-valued logic)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn sql(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

#[derive(Debug, Clone)]
enum Pred {
    /// `col <op> k` over an integer column.
    Cmp(usize, CmpOp, i64),
    /// `col IS [NOT] NULL`.
    IsNull(usize, bool),
    /// `col BETWEEN lo AND hi` over an integer column.
    Between(usize, i64, i64),
    /// `col IN (k, ...)` over an integer column.
    InList(usize, Vec<i64>),
    /// `names[i] = names[j]` — column-to-column equality (join ON).
    ColEq(usize, usize),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
}

fn decode_pred(r: &mut u64, depth: u32) -> Pred {
    if depth < 2 && pick(r, 3) == 0 {
        let l = Box::new(decode_pred(r, depth + 1));
        let rr = Box::new(decode_pred(r, depth + 1));
        return if pick(r, 2) == 0 {
            Pred::And(l, rr)
        } else {
            Pred::Or(l, rr)
        };
    }
    let int_col = if pick(r, 2) == 0 { COL_A } else { COL_B };
    match pick(r, 4) {
        0 => {
            let op = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][pick(r, 6) as usize];
            Pred::Cmp(int_col, op, pick(r, 21) as i64 - 10)
        }
        1 => {
            let col = [COL_A, COL_B, COL_S][pick(r, 3) as usize];
            Pred::IsNull(col, pick(r, 2) == 0)
        }
        2 => {
            let lo = pick(r, 21) as i64 - 10;
            Pred::Between(int_col, lo, lo + pick(r, 9) as i64)
        }
        _ => {
            let n = 1 + pick(r, 3) as usize;
            let ks = (0..n).map(|_| pick(r, 21) as i64 - 10).collect();
            Pred::InList(int_col, ks)
        }
    }
}

fn pred_sql(p: &Pred, names: &[&str]) -> String {
    match p {
        Pred::Cmp(col, op, k) => format!("{} {} {}", names[*col], op.sql(), k),
        Pred::IsNull(col, negated) => format!(
            "{} IS {}NULL",
            names[*col],
            if *negated { "NOT " } else { "" }
        ),
        Pred::Between(col, lo, hi) => format!("{} BETWEEN {} AND {}", names[*col], lo, hi),
        Pred::InList(col, ks) => {
            let list: Vec<String> = ks.iter().map(|k| k.to_string()).collect();
            format!("{} IN ({})", names[*col], list.join(", "))
        }
        Pred::ColEq(i, j) => format!("{} = {}", names[*i], names[*j]),
        Pred::And(l, r) => format!("({}) AND ({})", pred_sql(l, names), pred_sql(r, names)),
        Pred::Or(l, r) => format!("({}) OR ({})", pred_sql(l, names), pred_sql(r, names)),
    }
}

/// Three-valued evaluation: `None` means SQL NULL (row not selected).
fn pred_eval(p: &Pred, row: &[Value]) -> Option<bool> {
    match p {
        Pred::Cmp(col, op, k) => match &row[*col] {
            Value::Null => None,
            v => Some(op.eval(v.cmp(&Value::Int(*k)))),
        },
        Pred::IsNull(col, negated) => {
            let is_null = row[*col] == Value::Null;
            Some(is_null != *negated)
        }
        Pred::Between(col, lo, hi) => match &row[*col] {
            Value::Null => None,
            Value::Int(v) => Some(*lo <= *v && *v <= *hi),
            _ => unreachable!("BETWEEN only generated over integer columns"),
        },
        Pred::InList(col, ks) => match &row[*col] {
            Value::Null => None,
            Value::Int(v) => Some(ks.contains(v)),
            _ => unreachable!("IN only generated over integer columns"),
        },
        Pred::ColEq(i, j) => match (&row[*i], &row[*j]) {
            (Value::Null, _) | (_, Value::Null) => None,
            (a, b) => Some(a == b),
        },
        Pred::And(l, r) => match (pred_eval(l, row), pred_eval(r, row)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Pred::Or(l, r) => match (pred_eval(l, row), pred_eval(r, row)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
    }
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum AggSpec {
    CountStar,
    Count(usize),
    CountDistinct(usize),
    Sum(usize),
    Avg(usize),
    Min(usize),
    Max(usize),
    StdDev(usize),
}

fn decode_agg(r: &mut u64) -> AggSpec {
    let num_col = [COL_A, COL_B, COL_C][pick(r, 3) as usize];
    match pick(r, 8) {
        0 => AggSpec::CountStar,
        1 => AggSpec::Count([COL_A, COL_B, COL_C, COL_S][pick(r, 4) as usize]),
        // DISTINCT pins the engine's aggregate path serial — generated
        // on purpose so the "parallel" run exercises that fallback too.
        2 => AggSpec::CountDistinct([COL_A, COL_B, COL_S][pick(r, 3) as usize]),
        3 => AggSpec::Sum(num_col),
        4 => AggSpec::Avg(num_col),
        5 => AggSpec::Min([COL_A, COL_B, COL_C, COL_S][pick(r, 4) as usize]),
        6 => AggSpec::Max([COL_A, COL_B, COL_C, COL_S][pick(r, 4) as usize]),
        _ => AggSpec::StdDev(num_col),
    }
}

fn agg_sql(a: &AggSpec, names: &[&str]) -> String {
    match a {
        AggSpec::CountStar => "COUNT(*)".into(),
        AggSpec::Count(c) => format!("COUNT({})", names[*c]),
        AggSpec::CountDistinct(c) => format!("COUNT(DISTINCT {})", names[*c]),
        AggSpec::Sum(c) => format!("SUM({})", names[*c]),
        AggSpec::Avg(c) => format!("AVG({})", names[*c]),
        AggSpec::Min(c) => format!("MIN({})", names[*c]),
        AggSpec::Max(c) => format!("MAX({})", names[*c]),
        AggSpec::StdDev(c) => format!("STDDEV({})", names[*c]),
    }
}

/// Non-null values of `col`, in row order.
fn non_null<'a>(rows: &[&'a Vec<Value>], col: usize) -> Vec<&'a Value> {
    rows.iter()
        .map(|r| &r[col])
        .filter(|v| **v != Value::Null)
        .collect()
}

/// Sum as (is_exact_int, int_sum, float_sum); mirrors the engine's
/// int-exact tracking without copying its code.
fn naive_sum(vals: &[&Value]) -> (bool, i64, f64) {
    let mut exact = true;
    let mut int_sum: i64 = 0;
    let mut float_sum = 0.0_f64;
    for v in vals {
        match v {
            Value::Int(i) => {
                int_sum += *i;
                float_sum += *i as f64;
            }
            Value::Float(f) => {
                exact = false;
                float_sum += *f;
            }
            _ => unreachable!("SUM only generated over numeric columns"),
        }
    }
    (exact, int_sum, float_sum)
}

fn oracle_agg(a: &AggSpec, rows: &[&Vec<Value>]) -> Value {
    match a {
        AggSpec::CountStar => Value::Int(rows.len() as i64),
        AggSpec::Count(c) => Value::Int(non_null(rows, *c).len() as i64),
        AggSpec::CountDistinct(c) => {
            let distinct: HashSet<&Value> = non_null(rows, *c).into_iter().collect();
            Value::Int(distinct.len() as i64)
        }
        AggSpec::Sum(c) => {
            let vals = non_null(rows, *c);
            if vals.is_empty() {
                return Value::Null;
            }
            let (exact, int_sum, float_sum) = naive_sum(&vals);
            if exact {
                Value::Int(int_sum)
            } else {
                Value::Float(float_sum)
            }
        }
        AggSpec::Avg(c) => {
            let vals = non_null(rows, *c);
            if vals.is_empty() {
                return Value::Null;
            }
            let (_, _, float_sum) = naive_sum(&vals);
            Value::Float(float_sum / vals.len() as f64)
        }
        AggSpec::Min(c) => non_null(rows, *c)
            .into_iter()
            .min()
            .cloned()
            .unwrap_or(Value::Null),
        AggSpec::Max(c) => non_null(rows, *c)
            .into_iter()
            .max()
            .cloned()
            .unwrap_or(Value::Null),
        AggSpec::StdDev(c) => {
            let vals = non_null(rows, *c);
            if vals.len() < 2 {
                return Value::Null;
            }
            // Naive two-pass sample standard deviation.
            let floats: Vec<f64> = vals
                .iter()
                .map(|v| match v {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    _ => unreachable!("STDDEV only generated over numeric columns"),
                })
                .collect();
            let mean = floats.iter().sum::<f64>() / floats.len() as f64;
            let m2 = floats.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>();
            Value::Float((m2 / (floats.len() - 1) as f64).sqrt())
        }
    }
}

// ---------------------------------------------------------------------------
// Query shapes
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Query {
    /// `SELECT cols FROM t [WHERE p] [LIMIT n [OFFSET m]]`
    Project {
        cols: Vec<usize>,
        pred: Option<Pred>,
        limit: Option<(usize, usize)>,
    },
    /// `SELECT aggs FROM t [WHERE p]`
    Aggregate {
        aggs: Vec<AggSpec>,
        pred: Option<Pred>,
    },
    /// `SELECT g, aggs FROM t [WHERE p] GROUP BY g [HAVING COUNT(*) > k]`
    GroupBy {
        group: usize,
        aggs: Vec<AggSpec>,
        pred: Option<Pred>,
        having_min_count: Option<i64>,
    },
}

fn decode_query(seed: u64) -> Query {
    let mut r = seed;
    let pred = (pick(&mut r, 3) != 0).then(|| decode_pred(&mut r, 0));
    match pick(&mut r, 3) {
        0 => {
            let mask = 1 + pick(&mut r, 15) as usize; // non-empty subset of 4 columns
            let cols = (0..4).filter(|i| mask & (1 << i) != 0).collect();
            let limit = (pick(&mut r, 3) == 0)
                .then(|| (pick(&mut r, 20) as usize, pick(&mut r, 8) as usize));
            Query::Project { cols, pred, limit }
        }
        1 => {
            let n = 1 + pick(&mut r, 3) as usize;
            let aggs = (0..n).map(|_| decode_agg(&mut r)).collect();
            Query::Aggregate { aggs, pred }
        }
        _ => {
            let group = [COL_A, COL_B, COL_S][pick(&mut r, 3) as usize];
            let n = 1 + pick(&mut r, 2) as usize;
            let aggs = (0..n).map(|_| decode_agg(&mut r)).collect();
            let having_min_count = (pick(&mut r, 3) == 0).then(|| pick(&mut r, 4) as i64);
            Query::GroupBy {
                group,
                aggs,
                pred,
                having_min_count,
            }
        }
    }
}

fn query_sql(q: &Query) -> String {
    let where_sql = |p: &Option<Pred>| match p {
        Some(p) => format!(" WHERE {}", pred_sql(p, &COL_NAMES)),
        None => String::new(),
    };
    match q {
        Query::Project { cols, pred, limit } => {
            let proj: Vec<&str> = cols.iter().map(|c| COL_NAMES[*c]).collect();
            let mut sql = format!("SELECT {} FROM t{}", proj.join(", "), where_sql(pred));
            if let Some((n, off)) = limit {
                sql.push_str(&format!(" LIMIT {n} OFFSET {off}"));
            }
            sql
        }
        Query::Aggregate { aggs, pred } => {
            let proj: Vec<String> = aggs.iter().map(|a| agg_sql(a, &COL_NAMES)).collect();
            format!("SELECT {} FROM t{}", proj.join(", "), where_sql(pred))
        }
        Query::GroupBy {
            group,
            aggs,
            pred,
            having_min_count,
        } => {
            let mut proj = vec![COL_NAMES[*group].to_string()];
            proj.extend(aggs.iter().map(|a| agg_sql(a, &COL_NAMES)));
            let mut sql = format!(
                "SELECT {} FROM t{} GROUP BY {}",
                proj.join(", "),
                where_sql(pred),
                COL_NAMES[*group]
            );
            if let Some(k) = having_min_count {
                sql.push_str(&format!(" HAVING COUNT(*) > {k}"));
            }
            sql
        }
    }
}

/// The reference executor: evaluates `q` over the mirrored table with
/// simple, obviously-correct code paths.
fn oracle_run(q: &Query, table: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let filtered: Vec<&Vec<Value>> = table
        .iter()
        .filter(|row| match q {
            Query::Project { pred, .. }
            | Query::Aggregate { pred, .. }
            | Query::GroupBy { pred, .. } => match pred {
                Some(p) => pred_eval(p, row) == Some(true),
                None => true,
            },
        })
        .collect();
    match q {
        Query::Project { cols, limit, .. } => {
            let projected = filtered
                .iter()
                .map(|row| cols.iter().map(|c| row[*c].clone()).collect());
            match limit {
                Some((n, off)) => projected.skip(*off).take(*n).collect(),
                None => projected.collect(),
            }
        }
        Query::Aggregate { aggs, .. } => {
            vec![aggs.iter().map(|a| oracle_agg(a, &filtered)).collect()]
        }
        Query::GroupBy {
            group,
            aggs,
            having_min_count,
            ..
        } => {
            // Groups in first-occurrence order, matching the engine.
            let mut index: HashMap<Value, usize> = HashMap::new();
            let mut groups: Vec<(Value, Vec<&Vec<Value>>)> = Vec::new();
            for row in &filtered {
                let key = row[*group].clone();
                match index.get(&key) {
                    Some(i) => groups[*i].1.push(row),
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, vec![row]));
                    }
                }
            }
            groups
                .into_iter()
                .filter(|(_, members)| match having_min_count {
                    Some(k) => (members.len() as i64) > *k,
                    None => true,
                })
                .map(|(key, members)| {
                    let mut out = vec![key];
                    out.extend(aggs.iter().map(|a| oracle_agg(a, &members)));
                    out
                })
                .collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// Exact for Int/Text/Null/Bool; relative epsilon for floats, because the
/// engine's parallel aggregate merge reassociates floating-point math.
fn values_match(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            let tol = 1e-9_f64.max(1e-9 * x.abs().max(y.abs()));
            (x - y).abs() <= tol
        }
        _ => a == b,
    }
}

fn rows_match(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len() && ra.iter().zip(rb).all(|(va, vb)| values_match(va, vb))
        })
}

// ---------------------------------------------------------------------------
// The differential property
// ---------------------------------------------------------------------------

fn build_connection(table: &[Vec<Value>]) -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE t (a INTEGER, b INTEGER, c DOUBLE, s TEXT)",
        &[],
    )
    .expect("create table");
    if !table.is_empty() {
        conn.bulk_insert("t", &["a", "b", "c", "s"], table.to_vec())
            .expect("bulk insert");
    }
    conn
}

proptest! {
    /// Engine (serial), engine (forced parallel), and the naive oracle
    /// agree on every generated query.
    #[test]
    fn engine_matches_oracle(
        row_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..120),
        query_seeds in proptest::collection::vec(0u64..=u64::MAX, 4..9),
    ) {
        let table: Vec<Vec<Value>> = row_seeds.iter().map(|s| decode_row(*s)).collect();
        let conn = build_connection(&table);

        for seed in &query_seeds {
            let query = decode_query(*seed);
            let sql = query_sql(&query);

            let serial = {
                let _serial = pool::override_for_thread(1, 1);
                let _row = override_columnar(ColumnarMode::Off);
                conn.query(&sql, &[]).map_err(|e| {
                    TestCaseError::fail(format!("serial run failed: {e}\n  sql: {sql}"))
                })?
            };
            let parallel = {
                let _parallel = pool::override_for_thread(4, 1);
                let _row = override_columnar(ColumnarMode::Off);
                conn.query(&sql, &[]).map_err(|e| {
                    TestCaseError::fail(format!("parallel run failed: {e}\n  sql: {sql}"))
                })?
            };
            // Columnar kernels forced on, serially and partitioned; queries
            // outside the columnar shape exercise the decline-to-row path.
            let columnar = {
                let _serial = pool::override_for_thread(1, 1);
                let _col = override_columnar(ColumnarMode::Force);
                conn.query(&sql, &[]).map_err(|e| {
                    TestCaseError::fail(format!("columnar run failed: {e}\n  sql: {sql}"))
                })?
            };
            let columnar_parallel = {
                let _parallel = pool::override_for_thread(4, 1);
                let _col = override_columnar(ColumnarMode::Force);
                conn.query(&sql, &[]).map_err(|e| {
                    TestCaseError::fail(format!("columnar parallel run failed: {e}\n  sql: {sql}"))
                })?
            };
            let expected = oracle_run(&query, &table);

            prop_assert!(
                rows_match(&serial.rows, &expected),
                "serial engine diverged from oracle\n  sql: {}\n  engine: {:?}\n  oracle: {:?}\n  rows: {:?}",
                sql, serial.rows, expected, table,
            );
            prop_assert!(
                rows_match(&parallel.rows, &expected),
                "parallel engine diverged from oracle\n  sql: {}\n  engine: {:?}\n  oracle: {:?}\n  rows: {:?}",
                sql, parallel.rows, expected, table,
            );
            prop_assert!(
                rows_match(&serial.rows, &parallel.rows),
                "serial and parallel engine runs diverged\n  sql: {}\n  serial: {:?}\n  parallel: {:?}",
                sql, serial.rows, parallel.rows,
            );
            prop_assert!(
                rows_match(&columnar.rows, &expected),
                "columnar engine diverged from oracle\n  sql: {}\n  engine: {:?}\n  oracle: {:?}\n  rows: {:?}",
                sql, columnar.rows, expected, table,
            );
            prop_assert!(
                rows_match(&columnar_parallel.rows, &columnar.rows),
                "columnar partitioning changed the result\n  sql: {}\n  serial: {:?}\n  parallel: {:?}",
                sql, columnar.rows, columnar_parallel.rows,
            );
        }
    }
}

/// A fixed spot-check so a broken generator can never silently turn the
/// property above into a vacuous pass.
#[test]
fn known_answer_spot_check() {
    let table = vec![
        vec![
            Value::Int(1),
            Value::Int(0),
            Value::Float(1.5),
            Value::Text("red".into()),
        ],
        vec![Value::Int(2), Value::Int(0), Value::Float(2.5), Value::Null],
        vec![
            Value::Null,
            Value::Int(1),
            Value::Null,
            Value::Text("blue".into()),
        ],
        vec![
            Value::Int(2),
            Value::Int(1),
            Value::Float(-1.0),
            Value::Text("red".into()),
        ],
    ];
    let conn = build_connection(&table);

    let rows = conn
        .query("SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b", &[])
        .unwrap()
        .rows;
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(0), Value::Int(2), Value::Int(3)],
            vec![Value::Int(1), Value::Int(2), Value::Int(2)],
        ]
    );

    let query = Query::GroupBy {
        group: COL_B,
        aggs: vec![AggSpec::CountStar, AggSpec::Sum(COL_A)],
        pred: None,
        having_min_count: None,
    };
    assert_eq!(
        query_sql(&query),
        "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b"
    );
    assert!(rows_match(&oracle_run(&query, &table), &rows));
}

// ---------------------------------------------------------------------------
// Multi-table joins + optimizer legs
// ---------------------------------------------------------------------------
//
// Join queries over t(a,b,c,s) ⋈ u(k,d,v) [⋈ w(x,y)] run under every
// optimizer configuration — all rules on, `PERFDMF_OPTIMIZER=off`
// equivalent, and each rule individually disabled — serially and across
// 4 workers, and every leg must agree with the naive oracle. This is
// the plan-equivalence harness keeping the rewrite rules honest:
// predicate pushdown (correlated and single-table conjuncts, LEFT-join
// IS NULL probes), join reordering (ungrouped aggregates over 2 joins),
// projection pruning, and LIMIT pushdown all fire on these shapes.

/// Flattened layout of the joined row: t ⋈ u [⋈ w].
const JCOL_NAMES: [&str; 9] = [
    "t.a", "t.b", "t.c", "t.s", "u.k", "u.d", "u.v", "w.x", "w.y",
];
const JCOL_TA: usize = 0;
const JCOL_TB: usize = 1;
const JCOL_UK: usize = 4;
const JCOL_UD: usize = 5;
const JCOL_WX: usize = 7;

fn decode_u_row(seed: u64) -> Vec<Value> {
    let mut r = seed;
    let k = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Int(pick(&mut r, 5) as i64)
    };
    let d = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Int(pick(&mut r, 5) as i64)
    };
    let v = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Float(pick(&mut r, 32) as f64 * 0.625 - 10.0)
    };
    vec![k, d, v]
}

fn decode_w_row(seed: u64) -> Vec<Value> {
    let mut r = seed;
    let x = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Int(pick(&mut r, 5) as i64)
    };
    let y = if pick(&mut r, 8) == 0 {
        Value::Null
    } else {
        Value::Text(TEXTS[pick(&mut r, 4) as usize].into())
    };
    vec![x, y]
}

#[derive(Debug, Clone)]
struct JoinQuery {
    left_join: bool,
    /// Add `u.d >= 1` to the first ON (compound ON forces the
    /// nested-loop join and, under LEFT, tests ON-vs-WHERE semantics).
    on_extra: bool,
    with_w: bool,
    /// Second join keyed on the base (`t.a = w.x`) instead of the
    /// middle table — the shape join reordering can legally commute.
    second_on_base: bool,
    pred: Option<Pred>,
    shape: JoinShape,
}

#[derive(Debug, Clone)]
enum JoinShape {
    Project {
        cols: Vec<usize>,
        limit: Option<(usize, usize)>,
    },
    Aggregate {
        aggs: Vec<AggSpec>,
    },
}

/// Predicates over the joined layout: correlated conjuncts reference
/// columns of any joined table (the predicate-pushdown surface).
fn decode_jpred(r: &mut u64, depth: u32, width: usize) -> Pred {
    if depth < 2 && pick(r, 3) == 0 {
        let l = Box::new(decode_jpred(r, depth + 1, width));
        let rr = Box::new(decode_jpred(r, depth + 1, width));
        return if pick(r, 2) == 0 {
            Pred::And(l, rr)
        } else {
            Pred::Or(l, rr)
        };
    }
    let int_cols: &[usize] = if width > 7 {
        &[JCOL_TA, JCOL_TB, JCOL_UK, JCOL_UD, JCOL_WX]
    } else {
        &[JCOL_TA, JCOL_TB, JCOL_UK, JCOL_UD]
    };
    let int_col = int_cols[pick(r, int_cols.len() as u64) as usize];
    match pick(r, 4) {
        0 => {
            let op = [
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
            ][pick(r, 6) as usize];
            Pred::Cmp(int_col, op, pick(r, 11) as i64 - 3)
        }
        // IS NULL over right-table columns probes the LEFT-join
        // NULL-extension hazard predicate pushdown must not break.
        1 => Pred::IsNull(int_col, pick(r, 2) == 0),
        2 => {
            let lo = pick(r, 11) as i64 - 3;
            Pred::Between(int_col, lo, lo + pick(r, 5) as i64)
        }
        _ => {
            let n = 1 + pick(r, 3) as usize;
            let ks = (0..n).map(|_| pick(r, 11) as i64 - 3).collect();
            Pred::InList(int_col, ks)
        }
    }
}

fn decode_join_query(seed: u64) -> JoinQuery {
    let mut r = seed;
    let left_join = pick(&mut r, 3) == 0;
    let on_extra = pick(&mut r, 4) == 0;
    let with_w = pick(&mut r, 2) == 0;
    let second_on_base = pick(&mut r, 2) == 0;
    let width = if with_w { 9 } else { 7 };
    let pred = (pick(&mut r, 3) != 0).then(|| decode_jpred(&mut r, 0, width));
    let shape = if pick(&mut r, 2) == 0 {
        let ncols = 1 + pick(&mut r, 4) as usize;
        let cols = (0..ncols)
            .map(|_| pick(&mut r, width as u64) as usize)
            .collect();
        let limit =
            (pick(&mut r, 3) == 0).then(|| (pick(&mut r, 30) as usize, pick(&mut r, 6) as usize));
        JoinShape::Project { cols, limit }
    } else {
        let num_cols: &[usize] = if with_w {
            &[JCOL_TA, JCOL_TB, 2, JCOL_UK, JCOL_UD, 6, JCOL_WX]
        } else {
            &[JCOL_TA, JCOL_TB, 2, JCOL_UK, JCOL_UD, 6]
        };
        let n = 1 + pick(&mut r, 3) as usize;
        let aggs = (0..n)
            .map(|_| {
                let col = num_cols[pick(&mut r, num_cols.len() as u64) as usize];
                match pick(&mut r, 5) {
                    0 => AggSpec::CountStar,
                    1 => AggSpec::Count(col),
                    2 => AggSpec::Sum(col),
                    3 => AggSpec::Min(col),
                    _ => AggSpec::Max(col),
                }
            })
            .collect();
        JoinShape::Aggregate { aggs }
    };
    JoinQuery {
        left_join,
        on_extra,
        with_w,
        second_on_base,
        pred,
        shape,
    }
}

fn join_on1(q: &JoinQuery) -> Pred {
    let eq = Pred::ColEq(JCOL_TB, JCOL_UK);
    if q.on_extra {
        Pred::And(Box::new(eq), Box::new(Pred::Cmp(JCOL_UD, CmpOp::Ge, 1)))
    } else {
        eq
    }
}

fn join_on2(q: &JoinQuery) -> Pred {
    if q.second_on_base {
        Pred::ColEq(JCOL_TA, JCOL_WX)
    } else {
        Pred::ColEq(JCOL_UD, JCOL_WX)
    }
}

fn join_query_sql(q: &JoinQuery) -> String {
    let join_kw = if q.left_join { "LEFT JOIN" } else { "JOIN" };
    let mut from = format!(
        "FROM t {join_kw} u ON {}",
        pred_sql(&join_on1(q), &JCOL_NAMES)
    );
    if q.with_w {
        from.push_str(&format!(
            " JOIN w ON {}",
            pred_sql(&join_on2(q), &JCOL_NAMES)
        ));
    }
    let where_sql = match &q.pred {
        Some(p) => format!(" WHERE {}", pred_sql(p, &JCOL_NAMES)),
        None => String::new(),
    };
    match &q.shape {
        JoinShape::Project { cols, limit } => {
            let proj: Vec<&str> = cols.iter().map(|c| JCOL_NAMES[*c]).collect();
            let mut sql = format!("SELECT {} {from}{where_sql}", proj.join(", "));
            if let Some((n, off)) = limit {
                sql.push_str(&format!(" LIMIT {n} OFFSET {off}"));
            }
            sql
        }
        JoinShape::Aggregate { aggs } => {
            let proj: Vec<String> = aggs.iter().map(|a| agg_sql(a, &JCOL_NAMES)).collect();
            format!("SELECT {} {from}{where_sql}", proj.join(", "))
        }
    }
}

/// Naive reference join: left-deep nested loops in insertion order,
/// NULL-extending unmatched left rows for LEFT joins — the definition
/// the engine's hash/nested-loop strategies and every rewrite rule must
/// reproduce.
fn oracle_join_rows(
    q: &JoinQuery,
    t: &[Vec<Value>],
    u: &[Vec<Value>],
    w: &[Vec<Value>],
) -> Vec<Vec<Value>> {
    let on1 = join_on1(q);
    let mut joined: Vec<Vec<Value>> = Vec::new();
    for l in t {
        let mut matched = false;
        for r in u {
            let mut row = l.clone();
            row.extend(r.iter().cloned());
            if pred_eval(&on1, &row) == Some(true) {
                joined.push(row);
                matched = true;
            }
        }
        if q.left_join && !matched {
            let mut row = l.clone();
            row.extend(std::iter::repeat_n(Value::Null, 3));
            joined.push(row);
        }
    }
    if q.with_w {
        let on2 = join_on2(q);
        let mut next = Vec::new();
        for l in &joined {
            for r in w {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                if pred_eval(&on2, &row) == Some(true) {
                    next.push(row);
                }
            }
        }
        joined = next;
    }
    joined
}

fn oracle_join_run(
    q: &JoinQuery,
    t: &[Vec<Value>],
    u: &[Vec<Value>],
    w: &[Vec<Value>],
) -> Vec<Vec<Value>> {
    let joined = oracle_join_rows(q, t, u, w);
    let filtered: Vec<&Vec<Value>> = joined
        .iter()
        .filter(|row| match &q.pred {
            Some(p) => pred_eval(p, row) == Some(true),
            None => true,
        })
        .collect();
    match &q.shape {
        JoinShape::Project { cols, limit } => {
            let projected = filtered
                .iter()
                .map(|row| cols.iter().map(|c| row[*c].clone()).collect());
            match limit {
                Some((n, off)) => projected.skip(*off).take(*n).collect(),
                None => projected.collect(),
            }
        }
        JoinShape::Aggregate { aggs } => {
            vec![aggs.iter().map(|a| oracle_agg(a, &filtered)).collect()]
        }
    }
}

const RULE_NAMES: [&str; 5] = [
    "predicate-pushdown",
    "join-reorder",
    "sort-elision",
    "limit-pushdown",
    "projection-pruning",
];

fn engine_rows(
    conn: &Connection,
    sql: &str,
    threads: usize,
    cfg: perfdmf_db::OptimizerConfig,
) -> Result<Vec<Vec<Value>>, TestCaseError> {
    let _p = pool::override_for_thread(threads, 1);
    let _c = override_columnar(ColumnarMode::Off);
    let _o = perfdmf_db::override_optimizer(cfg);
    conn.query(sql, &[])
        .map(|rs| rs.rows)
        .map_err(|e| TestCaseError::fail(format!("engine run failed: {e}\n  sql: {sql}")))
}

fn build_join_connection(t: &[Vec<Value>], u: &[Vec<Value>], w: &[Vec<Value>]) -> Connection {
    let conn = build_connection(t);
    conn.execute("CREATE TABLE u (k INTEGER, d INTEGER, v DOUBLE)", &[])
        .expect("create u");
    conn.execute("CREATE TABLE w (x INTEGER, y TEXT)", &[])
        .expect("create w");
    // A right-side index exercises the cost pass's base-scan-only rule
    // (right scans must stay sequential or join output would permute).
    // No index on t: an index scan returns rows in key order, which the
    // insertion-order oracle deliberately does not model.
    conn.execute("CREATE INDEX ix_u_k ON u (k)", &[]).unwrap();
    if !u.is_empty() {
        conn.bulk_insert("u", &["k", "d", "v"], u.to_vec())
            .expect("bulk insert u");
    }
    if !w.is_empty() {
        conn.bulk_insert("w", &["x", "y"], w.to_vec())
            .expect("bulk insert w");
    }
    conn
}

proptest! {
    /// Join queries agree with the oracle under every optimizer
    /// configuration, serially and across 4 workers. Non-aggregate legs
    /// must be *identical* across configurations (rewrites may not even
    /// reorder rows); aggregate legs allow the float-reassociation
    /// epsilon (join reordering and parallel merges re-bracket sums).
    #[test]
    fn join_queries_match_oracle_across_optimizer_legs(
        t_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..60),
        u_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..40),
        w_seeds in proptest::collection::vec(0u64..=u64::MAX, 0..20),
        query_seeds in proptest::collection::vec(0u64..=u64::MAX, 3..7),
    ) {
        let t: Vec<Vec<Value>> = t_seeds.iter().map(|s| decode_row(*s)).collect();
        let u: Vec<Vec<Value>> = u_seeds.iter().map(|s| decode_u_row(*s)).collect();
        let w: Vec<Vec<Value>> = w_seeds.iter().map(|s| decode_w_row(*s)).collect();
        let conn = build_join_connection(&t, &u, &w);

        for seed in &query_seeds {
            let query = decode_join_query(*seed);
            let sql = join_query_sql(&query);
            let expected = oracle_join_run(&query, &t, &u, &w);

            let all_on = perfdmf_db::OptimizerConfig::all_on();
            let off = perfdmf_db::OptimizerConfig::disabled();
            let rule = RULE_NAMES[(*seed % 5) as usize];
            let legs = [
                ("optimized serial", engine_rows(&conn, &sql, 1, all_on)?),
                ("optimized 4-way", engine_rows(&conn, &sql, 4, all_on)?),
                ("optimizer-off serial", engine_rows(&conn, &sql, 1, off)?),
                ("optimizer-off 4-way", engine_rows(&conn, &sql, 4, off)?),
                (rule, engine_rows(&conn, &sql, 1, perfdmf_db::OptimizerConfig::without(rule))?),
            ];
            for (name, rows) in &legs {
                prop_assert!(
                    rows_match(rows, &expected),
                    "{name} leg diverged from oracle\n  sql: {}\n  engine: {:?}\n  oracle: {:?}\n  t: {:?}\n  u: {:?}\n  w: {:?}",
                    sql, rows, expected, t, u, w,
                );
            }
            if matches!(query.shape, JoinShape::Project { .. }) {
                for (name, rows) in &legs[1..] {
                    prop_assert!(
                        legs[0].1 == *rows,
                        "{name} leg not bit-identical to the optimized serial leg\n  sql: {}\n  optimized: {:?}\n  leg: {:?}",
                        sql, legs[0].1, rows,
                    );
                }
            }
        }
    }
}

/// Fixed join spot-check so the join generator/oracle pair can't rot
/// into a vacuous property.
#[test]
fn join_known_answer_spot_check() {
    let t = vec![
        vec![
            Value::Int(1),
            Value::Int(0),
            Value::Float(1.0),
            Value::Text("red".into()),
        ],
        vec![Value::Int(2), Value::Int(1), Value::Float(2.0), Value::Null],
        vec![
            Value::Int(3),
            Value::Null,
            Value::Float(3.0),
            Value::Text("blue".into()),
        ],
    ];
    let u = vec![
        vec![Value::Int(0), Value::Int(1), Value::Float(0.5)],
        vec![Value::Int(0), Value::Int(2), Value::Float(1.5)],
        vec![Value::Int(4), Value::Int(3), Value::Float(2.5)],
    ];
    let conn = build_join_connection(&t, &u, &[]);

    // INNER: only t.b=0 matches, twice.
    let rs = conn
        .query("SELECT t.a, u.d FROM t JOIN u ON t.b = u.k", &[])
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
        ]
    );

    // LEFT: unmatched rows (t.b=1, t.b=NULL) NULL-extend, and the
    // IS NULL probe sees exactly those.
    let rs = conn
        .query(
            "SELECT t.a FROM t LEFT JOIN u ON t.b = u.k WHERE u.k IS NULL",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);

    // Oracle agrees on both.
    let q = JoinQuery {
        left_join: false,
        on_extra: false,
        with_w: false,
        second_on_base: false,
        pred: None,
        shape: JoinShape::Project {
            cols: vec![JCOL_TA, JCOL_UD],
            limit: None,
        },
    };
    assert_eq!(
        join_query_sql(&q),
        "SELECT t.a, u.d FROM t JOIN u ON t.b = u.k"
    );
    let expected = oracle_join_run(&q, &t, &u, &[]);
    assert_eq!(
        expected,
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
        ]
    );
    let q = JoinQuery {
        left_join: true,
        on_extra: false,
        with_w: false,
        second_on_base: false,
        pred: Some(Pred::IsNull(JCOL_UK, false)),
        shape: JoinShape::Project {
            cols: vec![JCOL_TA],
            limit: None,
        },
    };
    let expected = oracle_join_run(&q, &t, &u, &[]);
    assert_eq!(expected, vec![vec![Value::Int(2)], vec![Value::Int(3)]]);
}
