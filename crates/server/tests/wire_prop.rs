//! Property tests for the wire codec: encoding is total and decoding
//! is total — any `Message` round-trips bit-exactly, and any byte
//! soup (truncations, bit flips, pure garbage) yields a typed
//! [`WireError`], never a panic and never an outsized allocation.

use perfdmf_explorer::{ClusterMethod, ClusterSummary, FeatureSpace, Request, Response};
use perfdmf_server::stream::{read_exact, write_all, FaultStream, NetFaultPlan, Stream};
use perfdmf_server::wire::{
    crc32, parse_header, verify_body, Message, WireError, HEADER_LEN, MAGIC, MAX_FRAME_LEN,
};
use perfdmf_telemetry::{ResourceUsage, SpanContext, SpanId, TraceId};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z0-9 _.:/-]{0,24}"
}

fn arb_feature_space() -> BoxedStrategy<FeatureSpace> {
    prop_oneof![
        arb_name().prop_map(FeatureSpace::EventsOfMetric),
        arb_name().prop_map(FeatureSpace::MetricsOfEvent),
    ]
    .boxed()
}

fn arb_request() -> BoxedStrategy<Request> {
    prop_oneof![
        (
            any::<i64>(),
            arb_feature_space(),
            prop_oneof![Just(None), (1usize..64).prop_map(Some)],
            1usize..64,
            0usize..8,
            prop_oneof![
                Just(ClusterMethod::KMeans),
                Just(ClusterMethod::Hierarchical)
            ],
        )
            .prop_map(|(trial_id, features, k, max_k, pca_components, method)| {
                Request::ClusterTrial {
                    trial_id,
                    features,
                    k,
                    max_k,
                    pca_components,
                    method,
                }
            }),
        (any::<i64>(), arb_name())
            .prop_map(|(trial_id, event)| Request::CorrelateMetrics { trial_id, event }),
        any::<i64>().prop_map(|settings_id| Request::FetchResult { settings_id }),
        (any::<i64>(), arb_name()).prop_map(|(experiment_id, metric)| Request::SpeedupStudy {
            experiment_id,
            metric
        }),
        (any::<i64>(), -2.0..2.0).prop_map(|(experiment_id, threshold)| {
            Request::RegressionScan {
                experiment_id,
                threshold,
            }
        }),
        (any::<i64>(), any::<i64>(), arb_name(), -4.0..4.0).prop_map(
            |(experiment_id, trial_id, metric, min_ratio)| Request::WatchdogCheck {
                experiment_id,
                trial_id,
                metric,
                min_ratio,
            }
        ),
        Just(Request::Ping),
        Just(Request::Shutdown),
        arb_name().prop_map(Request::InjectPanic),
        (0u64..100_000).prop_map(|millis| Request::Stall { millis }),
    ]
    .boxed()
}

fn arb_summaries() -> impl Strategy<Value = Vec<ClusterSummary>> {
    proptest::collection::vec(
        (
            0usize..16,
            0usize..4096,
            proptest::collection::vec(-1e9..1e9, 0..6),
        )
            .prop_map(|(cluster, size, centroid)| ClusterSummary {
                cluster,
                size,
                centroid,
            }),
        0..4,
    )
}

fn arb_response() -> BoxedStrategy<Response> {
    prop_oneof![
        (
            any::<i64>(),
            0usize..64,
            proptest::collection::vec(0usize..8, 0..32),
            arb_summaries(),
            -1.0..1.0,
            proptest::collection::vec(arb_name(), 0..4),
        )
            .prop_map(
                |(settings_id, k, assignments, summaries, silhouette, columns)| {
                    Response::Clustering {
                        settings_id,
                        k,
                        assignments,
                        summaries,
                        silhouette,
                        columns,
                    }
                }
            ),
        (
            any::<i64>(),
            proptest::collection::vec(arb_name(), 0..3),
            proptest::collection::vec(proptest::collection::vec(-1.0..1.0, 0..3), 0..3),
        )
            .prop_map(|(settings_id, metrics, matrix)| Response::Correlation {
                settings_id,
                metrics,
                matrix,
            }),
        (
            proptest::collection::vec((1usize..4096, 0.0..64.0, 0.0..1.5), 0..4),
            prop_oneof![Just(None), (0.0..1.0).prop_map(Some)],
            proptest::collection::vec(
                (arb_name(), 1usize..4096, 0.0..64.0, 0.0..64.0, 0.0..64.0),
                0..3
            ),
        )
            .prop_map(|(application, amdahl_serial_fraction, routines)| {
                Response::Speedup {
                    application,
                    amdahl_serial_fraction,
                    routines,
                }
            }),
        (
            proptest::collection::vec(
                (
                    any::<i64>(),
                    any::<i64>(),
                    arb_name(),
                    arb_name(),
                    -2.0..2.0
                ),
                0..3
            ),
            0usize..1000,
        )
            .prop_map(|(findings, pairs_compared)| Response::Regressions {
                findings,
                pairs_compared,
            }),
        (
            0usize..100,
            proptest::collection::vec((arb_name(), 0.0..1e6, 0.0..1e6, 0.0..100.0), 0..3),
        )
            .prop_map(|(baseline_trials, findings)| Response::Watchdog {
                baseline_trials,
                findings,
            }),
        (
            arb_name(),
            proptest::collection::vec((arb_name(), any::<i64>(), -1e9..1e9, arb_name()), 0..4),
        )
            .prop_map(|(method, rows)| Response::Stored { method, rows }),
        Just(Response::Pong),
        arb_name().prop_map(Response::Error),
        Just(Response::Overloaded),
        (arb_name(), any::<bool>())
            .prop_map(|(reason, retryable)| Response::Failed { reason, retryable }),
        Just(Response::ShuttingDown),
    ]
    .boxed()
}

fn arb_trace() -> BoxedStrategy<Option<SpanContext>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), any::<u64>()).prop_map(|(t, s)| Some(SpanContext {
            trace: TraceId(t),
            span: SpanId(s),
        })),
    ]
    .boxed()
}

fn arb_usage() -> BoxedStrategy<Option<ResourceUsage>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(any::<u64>(), 7).prop_map(|v| Some(ResourceUsage {
            rows_scanned: v[0],
            chunk_hits: v[1],
            chunk_misses: v[2],
            pool_tasks: v[3],
            wal_bytes: v[4],
            queue_wait_ns: v[5],
            execute_ns: v[6],
        })),
    ]
    .boxed()
}

fn arb_message() -> BoxedStrategy<Message> {
    prop_oneof![
        (
            any::<u32>(),
            arb_name(),
            prop_oneof![Just(None), arb_name().prop_map(Some)]
        )
            .prop_map(|(protocol, tenant, token)| Message::Hello {
                protocol,
                tenant,
                token,
            }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(session, key_space)| Message::HelloAck { session, key_space }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            arb_trace(),
            arb_request()
        )
            .prop_map(
                |(seq, deadline_ms, idempotency, trace, request)| Message::Call {
                    seq,
                    deadline_ms,
                    idempotency,
                    trace,
                    request,
                }
            ),
        (any::<u64>(), arb_usage(), arb_response()).prop_map(|(seq, usage, response)| {
            Message::Reply {
                seq,
                usage,
                response,
            }
        }),
        arb_name().prop_map(|reason| Message::Goodbye { reason }),
    ]
    .boxed()
}

/// In-memory half-duplex pipe, so the fault layer can be exercised
/// without sockets.
#[derive(Clone, Default)]
struct Pipe(std::sync::Arc<std::sync::Mutex<std::collections::VecDeque<u8>>>);

impl Stream for Pipe {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut inner = self.0.lock().unwrap();
        let n = buf.len().min(inner.len());
        for slot in buf[..n].iter_mut() {
            *slot = inner.pop_front().unwrap();
        }
        Ok(n)
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend(buf.iter().copied());
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    fn shutdown(&mut self) {}

    fn set_read_timeout(&mut self, _t: Option<std::time::Duration>) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    /// Any message round-trips bit-exactly through encode/decode.
    #[test]
    fn message_roundtrips(message in arb_message()) {
        let body = message.encode();
        prop_assert_eq!(Message::decode(&body).unwrap(), message);
    }

    /// Every strict prefix of a valid body is a typed error — the
    /// decoder never reads past the buffer and never panics on torn
    /// frames.
    #[test]
    fn every_truncation_is_a_typed_error(message in arb_message(), cut in 0usize..4096) {
        let body = message.encode();
        if !body.is_empty() {
            let cut = cut % body.len();
            prop_assert!(Message::decode(&body[..cut]).is_err());
        }
    }

    /// A single flipped bit never panics the decoder: it either still
    /// decodes (the flip landed in a value) or yields a typed error
    /// (the flip landed in structure).
    #[test]
    fn single_bit_flips_never_panic(
        message in arb_message(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut body = message.encode();
        if !body.is_empty() {
            let pos = pos % body.len();
            body[pos] ^= 1 << bit;
            let _ = Message::decode(&body);
        }
    }

    /// Pure garbage never panics and never allocates beyond the body
    /// it was handed (forged collection lengths are rejected against
    /// the remaining byte count before any allocation).
    #[test]
    fn garbage_bodies_never_panic(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&body);
    }

    /// Random frame headers are only accepted when both the magic and
    /// the length bound hold; the declared checksum passes through
    /// untouched for the body check.
    #[test]
    fn headers_reject_bad_magic_and_oversized_lengths(
        magic in any::<u32>(),
        len in any::<u32>(),
        crc in any::<u32>(),
    ) {
        let mut header = [0u8; HEADER_LEN];
        header[..4].copy_from_slice(&magic.to_le_bytes());
        header[4..8].copy_from_slice(&len.to_le_bytes());
        header[8..].copy_from_slice(&crc.to_le_bytes());
        match parse_header(&header) {
            Ok((got_len, got_crc)) => {
                prop_assert_eq!(magic, MAGIC);
                prop_assert!(len <= MAX_FRAME_LEN);
                prop_assert_eq!(got_len, len);
                prop_assert_eq!(got_crc, crc);
            }
            Err(WireError::BadMagic(m)) => prop_assert_eq!(m, magic),
            Err(WireError::Oversized(l)) => {
                prop_assert_eq!(magic, MAGIC);
                prop_assert_eq!(l, len);
                prop_assert!(len > MAX_FRAME_LEN);
            }
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other:?}"))),
        }
    }

    /// Any single flipped bit in any encoded body is caught by the
    /// frame checksum — this is the CRC guarantee the fault-tolerant
    /// transport leans on, since the chaos fault injector corrupts
    /// streams exactly one bit at a time.
    #[test]
    fn single_bit_flips_always_fail_the_checksum(
        message in arb_message(),
        pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let mut body = message.encode();
        let declared = crc32(&body);
        if !body.is_empty() {
            let pos = pos % body.len();
            body[pos] ^= 1 << bit;
            let caught = matches!(
                verify_body(declared, &body),
                Err(WireError::ChecksumMismatch { declared: _, actual: _ })
            );
            prop_assert!(caught, "flip at byte {} bit {} went undetected", pos, bit);
        }
    }

    /// A declared-huge collection length inside an otherwise valid
    /// frame fails fast with `BadLength` instead of allocating.
    #[test]
    fn forged_collection_lengths_fail_before_allocating(declared in 4096u32..u32::MAX) {
        // Call { seq, deadline_ms, idempotency, ClusterTrial { trial_id,
        // EventsOfMetric(<declared-length string>) ... } } cut so the
        // declared length exceeds the remaining bytes.
        let mut body = vec![2u8]; // Call
        body.extend_from_slice(&1u64.to_le_bytes()); // seq
        body.extend_from_slice(&0u32.to_le_bytes()); // deadline
        body.extend_from_slice(&0u64.to_le_bytes()); // idempotency
        body.push(0); // Request::ClusterTrial
        body.extend_from_slice(&7i64.to_le_bytes()); // trial_id
        body.push(0); // FeatureSpace::EventsOfMetric
        body.extend_from_slice(&declared.to_le_bytes()); // forged string length
        body.extend_from_slice(b"tiny"); // far fewer bytes than declared
        match Message::decode(&body) {
            Err(WireError::BadLength { declared: d, .. }) => prop_assert_eq!(d, declared),
            Err(WireError::Truncated { .. }) => {}
            other => return Err(TestCaseError::fail(format!("expected length rejection, got {other:?}"))),
        }
    }

    /// v2 compatibility: a hand-built v2 `Call` body (legacy tag, no
    /// trace field) decodes on a v3 codec as a traceless call — and a
    /// v3 `Call` without trace context encodes to exactly those bytes.
    #[test]
    fn v2_calls_decode_on_a_v3_codec(
        seq in any::<u64>(),
        deadline_ms in any::<u32>(),
        idempotency in any::<u64>(),
        request in arb_request(),
    ) {
        let v3 = Message::Call {
            seq,
            deadline_ms,
            idempotency,
            trace: None,
            request: request.clone(),
        };
        let body = v3.encode();
        // The legacy layout: tag 2, then seq/deadline/idempotency in v2
        // field order. Rebuild it by hand to prove the bytes are the
        // v2 ones, not merely self-consistent.
        let mut v2_body = vec![2u8];
        v2_body.extend_from_slice(&seq.to_le_bytes());
        v2_body.extend_from_slice(&deadline_ms.to_le_bytes());
        v2_body.extend_from_slice(&idempotency.to_le_bytes());
        prop_assert_eq!(&body[..v2_body.len()], &v2_body[..]);
        prop_assert_eq!(Message::decode(&body).unwrap(), v3);
    }

    /// A corrupted trace field never sneaks a wrong context past the
    /// frame boundary: any bit flip inside the trace/span id bytes of a
    /// trace-carrying `Call` fails the CRC check.
    #[test]
    fn corrupted_trace_context_fails_the_frame_checksum(
        seq in any::<u64>(),
        trace in any::<u64>(),
        span in any::<u64>(),
        pos in 0usize..16,
        bit in 0u8..8,
    ) {
        let message = Message::Call {
            seq,
            deadline_ms: 0,
            idempotency: 0,
            trace: Some(SpanContext { trace: TraceId(trace), span: SpanId(span) }),
            request: Request::Ping,
        };
        let mut body = message.encode();
        let declared = crc32(&body);
        // Tag 5 layout: byte 0 is the tag, bytes 1..17 the trace and
        // span ids.
        body[1 + pos] ^= 1 << bit;
        let caught = matches!(
            verify_body(declared, &body),
            Err(WireError::ChecksumMismatch { .. })
        );
        prop_assert!(caught, "flip at trace byte {} bit {} went undetected", pos, bit);
    }

    /// Trace context survives the fault-injecting transport bit-exactly:
    /// a trace-carrying frame written and read through `FaultStream`
    /// partial I/O reassembles into the identical message.
    #[test]
    fn trace_context_roundtrips_through_faulty_partial_io(
        seq in any::<u64>(),
        trace in any::<u64>(),
        span in any::<u64>(),
        request in arb_request(),
        seed in any::<u64>(),
        max_read in 1usize..5,
        max_write in 1usize..5,
    ) {
        let message = Message::Call {
            seq,
            deadline_ms: 7,
            idempotency: 9,
            trace: Some(SpanContext { trace: TraceId(trace), span: SpanId(span) }),
            request,
        };
        let frame = message.to_frame();
        let pipe = Pipe::default();
        let mut writer = FaultStream::new(
            Box::new(pipe.clone()),
            NetFaultPlan::seeded(seed).partial_io(max_write),
        );
        write_all(&mut writer, &frame).unwrap();
        let mut reader = FaultStream::new(
            Box::new(pipe),
            NetFaultPlan::seeded(seed.wrapping_add(1)).partial_io(max_read),
        );
        let mut header = [0u8; HEADER_LEN];
        prop_assert!(read_exact(&mut reader, &mut header).unwrap());
        let (len, declared) = parse_header(&header).unwrap();
        let mut body = vec![0u8; len as usize];
        prop_assert!(read_exact(&mut reader, &mut body).unwrap());
        verify_body(declared, &body).unwrap();
        prop_assert_eq!(Message::decode(&body).unwrap(), message);
    }
}
