/root/repo/target/release/deps/perfdmf_db-650c683ce21a01cc.d: crates/db/src/lib.rs crates/db/src/connection.rs crates/db/src/database.rs crates/db/src/error.rs crates/db/src/exec/mod.rs crates/db/src/exec/aggregate.rs crates/db/src/exec/eval.rs crates/db/src/exec/select.rs crates/db/src/index.rs crates/db/src/observe.rs crates/db/src/schema.rs crates/db/src/sql/mod.rs crates/db/src/sql/ast.rs crates/db/src/sql/lexer.rs crates/db/src/sql/parser.rs crates/db/src/storage.rs crates/db/src/table.rs crates/db/src/value.rs

/root/repo/target/release/deps/libperfdmf_db-650c683ce21a01cc.rlib: crates/db/src/lib.rs crates/db/src/connection.rs crates/db/src/database.rs crates/db/src/error.rs crates/db/src/exec/mod.rs crates/db/src/exec/aggregate.rs crates/db/src/exec/eval.rs crates/db/src/exec/select.rs crates/db/src/index.rs crates/db/src/observe.rs crates/db/src/schema.rs crates/db/src/sql/mod.rs crates/db/src/sql/ast.rs crates/db/src/sql/lexer.rs crates/db/src/sql/parser.rs crates/db/src/storage.rs crates/db/src/table.rs crates/db/src/value.rs

/root/repo/target/release/deps/libperfdmf_db-650c683ce21a01cc.rmeta: crates/db/src/lib.rs crates/db/src/connection.rs crates/db/src/database.rs crates/db/src/error.rs crates/db/src/exec/mod.rs crates/db/src/exec/aggregate.rs crates/db/src/exec/eval.rs crates/db/src/exec/select.rs crates/db/src/index.rs crates/db/src/observe.rs crates/db/src/schema.rs crates/db/src/sql/mod.rs crates/db/src/sql/ast.rs crates/db/src/sql/lexer.rs crates/db/src/sql/parser.rs crates/db/src/storage.rs crates/db/src/table.rs crates/db/src/value.rs

crates/db/src/lib.rs:
crates/db/src/connection.rs:
crates/db/src/database.rs:
crates/db/src/error.rs:
crates/db/src/exec/mod.rs:
crates/db/src/exec/aggregate.rs:
crates/db/src/exec/eval.rs:
crates/db/src/exec/select.rs:
crates/db/src/index.rs:
crates/db/src/observe.rs:
crates/db/src/schema.rs:
crates/db/src/sql/mod.rs:
crates/db/src/sql/ast.rs:
crates/db/src/sql/lexer.rs:
crates/db/src/sql/parser.rs:
crates/db/src/storage.rs:
crates/db/src/table.rs:
crates/db/src/value.rs:
