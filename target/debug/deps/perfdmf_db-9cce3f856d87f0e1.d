/root/repo/target/debug/deps/perfdmf_db-9cce3f856d87f0e1.d: crates/db/src/lib.rs crates/db/src/connection.rs crates/db/src/database.rs crates/db/src/error.rs crates/db/src/exec/mod.rs crates/db/src/exec/aggregate.rs crates/db/src/exec/eval.rs crates/db/src/exec/select.rs crates/db/src/index.rs crates/db/src/observe.rs crates/db/src/schema.rs crates/db/src/sql/mod.rs crates/db/src/sql/ast.rs crates/db/src/sql/lexer.rs crates/db/src/sql/parser.rs crates/db/src/storage.rs crates/db/src/table.rs crates/db/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_db-9cce3f856d87f0e1.rmeta: crates/db/src/lib.rs crates/db/src/connection.rs crates/db/src/database.rs crates/db/src/error.rs crates/db/src/exec/mod.rs crates/db/src/exec/aggregate.rs crates/db/src/exec/eval.rs crates/db/src/exec/select.rs crates/db/src/index.rs crates/db/src/observe.rs crates/db/src/schema.rs crates/db/src/sql/mod.rs crates/db/src/sql/ast.rs crates/db/src/sql/lexer.rs crates/db/src/sql/parser.rs crates/db/src/storage.rs crates/db/src/table.rs crates/db/src/value.rs Cargo.toml

crates/db/src/lib.rs:
crates/db/src/connection.rs:
crates/db/src/database.rs:
crates/db/src/error.rs:
crates/db/src/exec/mod.rs:
crates/db/src/exec/aggregate.rs:
crates/db/src/exec/eval.rs:
crates/db/src/exec/select.rs:
crates/db/src/index.rs:
crates/db/src/observe.rs:
crates/db/src/schema.rs:
crates/db/src/sql/mod.rs:
crates/db/src/sql/ast.rs:
crates/db/src/sql/lexer.rs:
crates/db/src/sql/parser.rs:
crates/db/src/storage.rs:
crates/db/src/table.rs:
crates/db/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
