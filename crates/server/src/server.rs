//! The TCP front door: acceptor, per-connection sessions, graceful
//! drain.
//!
//! Two session executors share this module's protocol logic:
//!
//! * **`eventloop`** (the default) — a sharded set of event-loop
//!   threads ([`crate::eventloop`]); each accepted connection becomes a
//!   nonblocking state machine parked on poll(2) readiness, so ten
//!   thousand idle sessions cost ten thousand small structs, not ten
//!   thousand OS threads. This executor also serves *pipelined* calls:
//!   a bounded window of outstanding seqs per connection, answered out
//!   of order as they complete.
//!
//! * **`threads`** — the original thread-per-session layer below, kept
//!   for differential chaos runs (`PERFDMF_SERVER_EXECUTOR=threads`):
//!
//! ```text
//! TcpListener ── acceptor thread ──┬── session thread ──┐
//!                                  ├── session thread ──┼─► ExplorerClient ─► AnalysisServer
//!                                  └── session thread ──┘      (bounded queue, shed,
//!                                                               deadlines, panic isolation)
//! ```
//!
//! Either way each session speaks the frame protocol ([`crate::wire`]),
//! tracks per-session state (tenant tag, statement sequence numbers,
//! idempotency replays), and funnels decoded requests into the
//! explorer's admission control. Every admission decision the
//! in-process explorer makes — shed on a full queue, discard
//! past-deadline work, isolate panics — is therefore made for network
//! clients too, with no second code path.
//!
//! Failure semantics (see `docs/server.md` for the client's view):
//!
//! * malformed frames (bad magic, oversized, garbage body) → one
//!   `Goodbye` with the decode error, then close; the stream cannot be
//!   trusted to stay in frame sync;
//! * sequence regressions → `Goodbye("sequence regression")`, close;
//! * stalled peers → after `idle_timeout` without a complete frame,
//!   `Goodbye("idle timeout")`, close;
//! * drain → in-flight requests finish (or shed at their deadline),
//!   then every session gets `ShuttingDown`/`Goodbye` and the acceptor
//!   stops; telemetry is flushed into the metrics time series.

use crate::stream::{write_all, NetFaultPlan, RealStream, Stream};
use crate::wire::{
    parse_header, verify_body, Message, WireError, HEADER_LEN, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use perfdmf_db::Connection;
use perfdmf_explorer::{AnalysisServer, ExplorerClient, Request, Response};
use perfdmf_telemetry as telemetry;
use perfdmf_telemetry::sessions::{SessionRecord, SessionState};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the drain flag.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Entries retained by the idempotency replay cache.
const REPLAY_CACHE_CAPACITY: usize = 4096;

/// How long a duplicate request with no deadline waits for the original
/// execution to finish before giving up with a retryable failure.
/// Matches the client's default reply wait.
pub(crate) const DUPLICATE_WAIT: Duration = Duration::from_secs(10);

/// Default bound on outstanding pipelined calls per session
/// (overridable via `PERFDMF_SERVER_WINDOW` or
/// [`ServerConfig::window`]). Calls beyond the window are answered
/// immediately with a typed `Response::Error` naming the window, so a
/// runaway client cannot queue unbounded work behind one connection.
pub const DEFAULT_PIPELINE_WINDOW: usize = 32;

/// Which session executor drives accepted connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorMode {
    /// One OS thread per session, blocking reads (the PR 7 design).
    Threads,
    /// Sharded event loops over nonblocking sockets (the default):
    /// sessions are state machines parked on poll(2) readiness, and
    /// calls may be pipelined within a bounded window.
    EventLoop,
}

impl ExecutorMode {
    /// Resolve from `PERFDMF_SERVER_EXECUTOR` (`threads` | `eventloop`),
    /// defaulting to [`ExecutorMode::EventLoop`].
    pub fn from_env() -> ExecutorMode {
        match std::env::var("PERFDMF_SERVER_EXECUTOR").as_deref() {
            Ok("threads") => ExecutorMode::Threads,
            _ => ExecutorMode::EventLoop,
        }
    }
}

/// Tuning knobs for [`PerfdmfServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind. The default, `127.0.0.1:0`, picks an ephemeral
    /// loopback port (tests); the CLI's `serve` command sets a real one.
    pub addr: SocketAddr,
    /// Analysis worker threads behind the queue.
    pub workers: usize,
    /// Bound on the request queue; submissions beyond it are shed as
    /// [`Response::Overloaded`].
    pub queue_capacity: usize,
    /// Maximum concurrent sessions; connections beyond it are told
    /// `Goodbye("server at connection capacity")` and closed.
    pub max_sessions: usize,
    /// Close sessions that fail to deliver a complete frame for this
    /// long (defense against stalled peers holding threads hostage).
    pub idle_timeout: Duration,
    /// Which session executor to run. Defaults from
    /// `PERFDMF_SERVER_EXECUTOR` (eventloop unless told otherwise).
    pub executor: ExecutorMode,
    /// Event-loop shards (0 = `PERFDMF_SERVER_EXECUTORS`, falling back
    /// to the machine's core count). Ignored by the threads executor.
    pub executors: usize,
    /// Bound on outstanding pipelined calls per session (0 =
    /// `PERFDMF_SERVER_WINDOW`, falling back to
    /// [`DEFAULT_PIPELINE_WINDOW`]). The threads executor reads one
    /// call at a time, so the window only binds under the event loop.
    pub window: usize,
    /// Shared-secret session token. `Some` requires every `Hello` to
    /// present a matching token (constant-time compare) before any
    /// request is admitted; mismatches get a typed `AuthFailed`.
    /// Defaults from `PERFDMF_SERVER_TOKEN` (unset = open).
    pub token: Option<String>,
    /// Test aid: wrap every **accepted** stream in a
    /// [`crate::stream::FaultStream`] with this plan, so chaos tests
    /// can tear the server side of connections too. `None` in
    /// production.
    pub fault: Option<NetFaultPlan>,
    /// Test aid: accept the fault-injection requests
    /// (`Request::InjectPanic`, `Request::Stall`) over the network.
    /// `false` in production — with it off (the default), any client
    /// sending them gets `Response::Error`, so the network boundary
    /// cannot be used to panic workers or park them in long stalls.
    pub allow_fault_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 4,
            queue_capacity: perfdmf_explorer::DEFAULT_QUEUE_CAPACITY,
            max_sessions: 4096,
            idle_timeout: Duration::from_secs(30),
            executor: ExecutorMode::from_env(),
            executors: 0,
            window: 0,
            token: std::env::var("PERFDMF_SERVER_TOKEN").ok(),
            fault: None,
            allow_fault_injection: false,
        }
    }
}

impl ServerConfig {
    /// The resolved event-loop shard count: the explicit setting, else
    /// `PERFDMF_SERVER_EXECUTORS`, else the core count.
    pub(crate) fn resolved_executors(&self) -> usize {
        if self.executors > 0 {
            return self.executors;
        }
        std::env::var("PERFDMF_SERVER_EXECUTORS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }

    /// The resolved pipelining window: the explicit setting, else
    /// `PERFDMF_SERVER_WINDOW`, else [`DEFAULT_PIPELINE_WINDOW`].
    pub(crate) fn resolved_window(&self) -> usize {
        if self.window > 0 {
            return self.window;
        }
        std::env::var("PERFDMF_SERVER_WINDOW")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_PIPELINE_WINDOW)
    }
}

/// Constant-time byte equality: the comparison touches every byte of
/// both inputs regardless of where they first differ, so a client
/// cannot binary-search the token by timing rejections.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = (a.len() ^ b.len()) as u8;
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= x ^ y;
    }
    diff == 0
}

/// Check a `Hello`'s token against the configured secret. `Ok(flag)`
/// admits the session (`flag` = a secret was required and matched);
/// `Err(message)` is the rejection frame to send before closing —
/// a typed [`Message::AuthFailed`] to v4 peers, a `Goodbye` to older
/// peers that cannot decode the new tag.
pub(crate) fn authenticate(
    config: &ServerConfig,
    protocol: u32,
    token: &Option<String>,
) -> Result<bool, Box<Message>> {
    let Some(expected) = &config.token else {
        // Open server: tokens (if any) are accepted but nothing was
        // verified, so the session does not count as authenticated.
        return Ok(false);
    };
    let presented = token.as_deref().unwrap_or("");
    if token.is_some() && constant_time_eq(presented.as_bytes(), expected.as_bytes()) {
        return Ok(true);
    }
    telemetry::add("server.auth_failures", 1);
    telemetry::emit(
        telemetry::Event::new(telemetry::Severity::Warn, "auth_failed")
            .field("presented", u64::from(token.is_some())),
    );
    let reason = if token.is_some() {
        "session token mismatch".to_string()
    } else {
        "session token required".to_string()
    };
    // Older peers cannot decode the AuthFailed tag; they get a Goodbye
    // carrying the same reason instead.
    Err(Box::new(if protocol >= 4 {
        Message::AuthFailed { reason }
    } else {
        Message::Goodbye {
            reason: format!("authentication failed: {reason}"),
        }
    }))
}

/// One replay-cache slot: either the recorded response of a completed
/// execution, or a marker that the execution is still running so a
/// concurrent retry waits for its outcome instead of re-executing.
pub(crate) enum ReplayEntry {
    /// The keyed request was dispatched and has not completed yet.
    InFlight,
    /// The recorded response of the first successful execution.
    Done(Response),
}

/// Bounded idempotency-key → response cache (FIFO eviction). One cache
/// per server, not per session: a retried request usually arrives on a
/// *new* connection after the old one died mid-reply. The in-flight
/// marker is inserted **before** dispatch, closing the window where a
/// retry of a still-executing request would miss the cache and apply
/// the write twice; eviction never removes in-flight entries.
pub(crate) struct ReplayCache {
    map: HashMap<u64, ReplayEntry>,
    order: VecDeque<u64>,
}

impl ReplayCache {
    fn new() -> ReplayCache {
        ReplayCache {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    pub(crate) fn entry(&self, key: u64) -> Option<&ReplayEntry> {
        self.map.get(&key)
    }

    /// Mark `key` as executing. The caller must have checked the key is
    /// absent while holding the same lock.
    pub(crate) fn begin(&mut self, key: u64) {
        self.map.insert(key, ReplayEntry::InFlight);
        self.order.push_back(key);
    }

    /// Record the response of a completed execution under `key`.
    fn finish(&mut self, key: u64, response: Response) {
        self.map.insert(key, ReplayEntry::Done(response));
        self.trim();
    }

    /// Drop `key` without recording a response (the execution failed in
    /// a way that an honest retry should re-attempt).
    fn abandon(&mut self, key: u64) {
        self.map.remove(&key);
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
    }

    /// Evict oldest completed entries beyond capacity. In-flight
    /// entries are rotated past, never evicted — their population is
    /// bounded by the number of concurrent sessions.
    fn trim(&mut self) {
        let mut rotations = 0;
        while self.map.len() > REPLAY_CACHE_CAPACITY && rotations <= self.order.len() {
            match self.order.pop_front() {
                None => break,
                Some(key) => match self.map.get(&key) {
                    Some(ReplayEntry::Done(_)) => {
                        self.map.remove(&key);
                    }
                    Some(ReplayEntry::InFlight) => {
                        self.order.push_back(key);
                        rotations += 1;
                    }
                    None => {}
                },
            }
        }
    }
}

/// State shared by the acceptor and every session (thread or
/// event-loop state machine).
pub(crate) struct Shared {
    pub(crate) explorer: ExplorerClient,
    pub(crate) config: ServerConfig,
    pub(crate) draining: AtomicBool,
    pub(crate) next_session: AtomicU64,
    pub(crate) live_sessions: AtomicUsize,
    pub(crate) replay: Mutex<ReplayCache>,
    /// Signalled whenever a replay-cache entry completes or is
    /// abandoned, waking sessions parked on an in-flight duplicate.
    pub(crate) replay_done: Condvar,
}

/// A running network server.
pub struct PerfdmfServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
    executors: Vec<crate::eventloop::ExecutorHandle>,
    analysis: Option<AnalysisServer>,
}

impl PerfdmfServer {
    /// Bind `127.0.0.1:0` (an ephemeral loopback port) and start
    /// serving with the default configuration.
    pub fn start(conn: Connection) -> perfdmf_db::Result<PerfdmfServer> {
        PerfdmfServer::start_with_config(conn, ServerConfig::default())
    }

    /// Bind [`ServerConfig::addr`] and start serving with an explicit
    /// configuration.
    pub fn start_with_config(
        conn: Connection,
        config: ServerConfig,
    ) -> perfdmf_db::Result<PerfdmfServer> {
        let analysis =
            AnalysisServer::start_with_capacity(conn, config.workers, config.queue_capacity)?;
        let explorer = ExplorerClient::connect(&analysis);
        let listener = TcpListener::bind(config.addr).map_err(io_to_db)?;
        listener.set_nonblocking(true).map_err(io_to_db)?;
        let addr = listener.local_addr().map_err(io_to_db)?;
        let executor = config.executor;
        let shard_count = config.resolved_executors();
        let shared = Arc::new(Shared {
            explorer,
            config,
            draining: AtomicBool::new(false),
            next_session: AtomicU64::new(1),
            live_sessions: AtomicUsize::new(0),
            replay: Mutex::new(ReplayCache::new()),
            replay_done: Condvar::new(),
        });
        let sessions: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (acceptor, executors) = match executor {
            ExecutorMode::Threads => {
                let acceptor = {
                    let shared = shared.clone();
                    let sessions = sessions.clone();
                    std::thread::spawn(move || accept_loop(listener, shared, sessions))
                };
                (acceptor, Vec::new())
            }
            ExecutorMode::EventLoop => {
                let executors: Vec<crate::eventloop::ExecutorHandle> = (0..shard_count)
                    .map(|i| crate::eventloop::ExecutorHandle::spawn(shared.clone(), i))
                    .collect();
                let intakes: Vec<_> = executors.iter().map(|e| e.intake()).collect();
                let acceptor = {
                    let shared = shared.clone();
                    std::thread::spawn(move || {
                        crate::eventloop::accept_loop(listener, shared, intakes)
                    })
                };
                (acceptor, executors)
            }
        };
        Ok(PerfdmfServer {
            addr,
            shared,
            acceptor: Some(acceptor),
            sessions,
            executors,
            analysis: Some(analysis),
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of currently live sessions.
    pub fn live_sessions(&self) -> usize {
        self.shared.live_sessions.load(Ordering::Relaxed)
    }

    /// Number of session thread handles currently tracked (live
    /// sessions plus any finished ones not yet reaped — the acceptor
    /// reaps on every accept, so this stays near [`Self::live_sessions`]
    /// on a long-running server instead of growing without bound).
    pub fn tracked_session_handles(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Graceful drain: stop accepting, let every session finish (or
    /// shed) its in-flight request and say goodbye, stop the analysis
    /// workers, and flush a final telemetry sample into the metrics
    /// time series.
    pub fn shutdown(mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles = std::mem::take(&mut *self.sessions.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
        for executor in std::mem::take(&mut self.executors) {
            executor.join();
        }
        if let Some(analysis) = self.analysis.take() {
            analysis.shutdown();
        }
        telemetry::add("server.drains", 1);
        telemetry::sample_now();
    }
}

impl Drop for PerfdmfServer {
    fn drop(&mut self) {
        // `shutdown` consumed the handles; a plain drop still stops the
        // acceptor and sessions, just without waiting for the analysis
        // pool (AnalysisServer's own shutdown handles that when taken).
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles = std::mem::take(&mut *self.sessions.lock().unwrap());
        for handle in handles {
            let _ = handle.join();
        }
        for executor in std::mem::take(&mut self.executors) {
            executor.join();
        }
        if let Some(analysis) = self.analysis.take() {
            analysis.shutdown();
        }
    }
}

fn io_to_db(e: std::io::Error) -> perfdmf_db::DbError {
    perfdmf_db::DbError::Unsupported(format!("server socket: {e}"))
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((socket, _peer)) => {
                let mut stream: Box<dyn Stream> = Box::new(RealStream::new(socket));
                if let Some(plan) = shared.config.fault.clone() {
                    // Decorrelate per-connection schedules while keeping
                    // the whole run a function of the configured seed.
                    let nth = shared.next_session.load(Ordering::Relaxed);
                    let mut plan = plan;
                    plan.seed = plan.seed.wrapping_add(nth.wrapping_mul(0x9E37_79B9));
                    stream = Box::new(crate::stream::FaultStream::new(stream, plan));
                }
                if shared.live_sessions.load(Ordering::Relaxed) >= shared.config.max_sessions {
                    telemetry::add("server.connection_sheds", 1);
                    let _ = write_all(
                        stream.as_mut(),
                        &Message::Goodbye {
                            reason: "server at connection capacity".into(),
                        }
                        .to_frame(),
                    );
                    stream.shutdown();
                    continue;
                }
                shared.live_sessions.fetch_add(1, Ordering::Relaxed);
                telemetry::add("server.connections", 1);
                let shared = shared.clone();
                let handle = std::thread::spawn(move || {
                    // A session-loop panic must never take the process
                    // down; it is counted so chaos tests can assert the
                    // loop itself is panic-free.
                    if catch_unwind(AssertUnwindSafe(|| session_loop(stream, &shared))).is_err() {
                        telemetry::add("server.session_panics", 1);
                        // Freeze the flight recorder at the moment of
                        // death so the trace leading up to the panic
                        // survives for post-mortem analysis.
                        telemetry::trace::fault_dump("session panic");
                    }
                    shared.live_sessions.fetch_sub(1, Ordering::Relaxed);
                });
                let mut sessions = sessions.lock().unwrap();
                // Reap finished handles so a long-running server does
                // not accumulate one per past connection.
                sessions.retain(|h| !h.is_finished());
                sessions.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Idle tick: reap finished session handles even when no
                // fresh connection arrives, so a server that goes quiet
                // after a burst does not hold a handle per past session
                // until the next accept.
                sessions.lock().unwrap().retain(|h| !h.is_finished());
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// What one attempt to read a frame produced.
enum FrameEvent {
    /// A complete frame body, already length-checked.
    Frame(Vec<u8>),
    /// The peer closed cleanly between frames.
    Eof,
    /// The server is draining.
    Draining,
    /// No complete frame within the idle timeout.
    IdleTimeout,
    /// The frame failed validation (bad magic / oversized / checksum).
    Wire(WireError),
    /// The transport failed (reset, mid-frame EOF, ...).
    Io(std::io::Error),
}

/// Read one complete frame, waking every [`POLL_INTERVAL`] to check the
/// drain flag and the idle budget. The idle clock resets on every byte
/// of progress, so a slow-but-live peer is fine and a stalled one is
/// not.
fn read_frame(stream: &mut dyn Stream, shared: &Shared) -> FrameEvent {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    let mut crc = 0u32;
    let mut body: Option<(Vec<u8>, usize)> = None;
    let mut last_progress = Instant::now();
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return FrameEvent::Draining;
        }
        if last_progress.elapsed() > shared.config.idle_timeout {
            return FrameEvent::IdleTimeout;
        }
        let target: &mut [u8] = match &mut body {
            None => &mut header[filled..],
            Some((buf, at)) => &mut buf[*at..],
        };
        match stream.read(target) {
            Ok(0) => {
                let mid_frame = filled > 0 || body.is_some();
                return if mid_frame {
                    FrameEvent::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                } else {
                    FrameEvent::Eof
                };
            }
            Ok(n) => {
                last_progress = Instant::now();
                match &mut body {
                    None => {
                        filled += n;
                        if filled == header.len() {
                            match parse_header(&header) {
                                Ok((len, declared)) => {
                                    crc = declared;
                                    if len == 0 {
                                        return match verify_body(crc, &[]) {
                                            Ok(()) => FrameEvent::Frame(Vec::new()),
                                            Err(e) => FrameEvent::Wire(e),
                                        };
                                    }
                                    body = Some((vec![0u8; len as usize], 0));
                                }
                                Err(e) => return FrameEvent::Wire(e),
                            }
                        }
                    }
                    Some((buf, at)) => {
                        *at += n;
                        if *at == buf.len() {
                            let (buf, _) = body.take().expect("body present");
                            return match verify_body(crc, &buf) {
                                Ok(()) => FrameEvent::Frame(buf),
                                Err(e) => FrameEvent::Wire(e),
                            };
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return FrameEvent::Io(e),
        }
    }
}

/// Send a best-effort goodbye and close.
fn farewell(stream: &mut dyn Stream, reason: &str) {
    let _ = write_all(
        stream,
        &Message::Goodbye {
            reason: reason.into(),
        }
        .to_frame(),
    );
    stream.shutdown();
}

/// Drive one session from handshake to close.
fn session_loop(mut stream: Box<dyn Stream>, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let started = Instant::now();

    // Handshake: the first frame must be a protocol-compatible Hello.
    // Anything in `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` is served;
    // the peer's version is remembered so replies to v2 clients never
    // carry v3-only encodings (the usage-bearing Reply).
    let (record, peer_protocol) = match read_frame(stream.as_mut(), shared) {
        FrameEvent::Frame(body) => match Message::decode(&body) {
            Ok(Message::Hello {
                protocol,
                tenant,
                token,
            }) => {
                if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&protocol) {
                    telemetry::add("server.protocol_errors", 1);
                    farewell(
                        stream.as_mut(),
                        &format!(
                            "protocol version {protocol} unsupported \
                             (want {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})"
                        ),
                    );
                    return;
                }
                let authenticated = match authenticate(&shared.config, protocol, &token) {
                    Ok(authenticated) => authenticated,
                    Err(rejection) => {
                        let _ = write_all(stream.as_mut(), &rejection.to_frame());
                        stream.shutdown();
                        return;
                    }
                };
                let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
                // The key space must be unique server-wide so clients
                // in different processes can never collide in the
                // replay cache; the session counter provides exactly
                // that. Only the low 32 bits participate in keys
                // (`key_space << 32 | counter`), which wraps after 2^32
                // sessions of one server process — far beyond any
                // replay-cache lifetime.
                if write_all(
                    stream.as_mut(),
                    &Message::HelloAck {
                        session: id,
                        key_space: id & 0xFFFF_FFFF,
                    }
                    .to_frame(),
                )
                .is_err()
                {
                    telemetry::add("server.disconnects", 1);
                    return;
                }
                let mut record = SessionRecord::new(id, tenant);
                record.authenticated = authenticated;
                telemetry::sessions::upsert(record.clone());
                (record, protocol)
            }
            Ok(_) => {
                telemetry::add("server.protocol_errors", 1);
                farewell(stream.as_mut(), "expected Hello as the first frame");
                return;
            }
            Err(e) => {
                telemetry::add("server.frames_rejected", 1);
                farewell(stream.as_mut(), &format!("bad hello frame: {e}"));
                return;
            }
        },
        FrameEvent::Draining => {
            farewell(stream.as_mut(), "server draining");
            return;
        }
        _ => {
            telemetry::add("server.disconnects", 1);
            stream.shutdown();
            return;
        }
    };

    let mut record = record;
    let close_reason = serve_session(stream.as_mut(), shared, &mut record, peer_protocol);
    record.state = SessionState::Closed;
    record.connected_ms = started.elapsed().as_millis().min(u64::MAX as u128) as u64;
    record.close_reason = Some(close_reason);
    telemetry::sessions::upsert(record);
    telemetry::record_duration("server.session_lifetime_ns", started.elapsed());
}

/// The post-handshake request loop. Returns the close reason.
fn serve_session(
    stream: &mut dyn Stream,
    shared: &Arc<Shared>,
    record: &mut SessionRecord,
    peer_protocol: u32,
) -> String {
    loop {
        let body = match read_frame(stream, shared) {
            FrameEvent::Frame(body) => body,
            FrameEvent::Eof => {
                telemetry::add("server.disconnects", 1);
                stream.shutdown();
                return "client closed".into();
            }
            FrameEvent::Draining => {
                farewell(stream, "server draining");
                return "server drained".into();
            }
            FrameEvent::IdleTimeout => {
                telemetry::add("server.idle_closes", 1);
                farewell(stream, "idle timeout");
                return "idle timeout".into();
            }
            FrameEvent::Wire(e) => {
                telemetry::add("server.frames_rejected", 1);
                record.protocol_errors += 1;
                farewell(stream, &format!("bad frame: {e}"));
                return format!("protocol error: {e}");
            }
            FrameEvent::Io(e) => {
                telemetry::add("server.disconnects", 1);
                stream.shutdown();
                return format!("transport error: {e}");
            }
        };
        let message = match Message::decode(&body) {
            Ok(message) => message,
            Err(e) => {
                telemetry::add("server.frames_rejected", 1);
                record.protocol_errors += 1;
                telemetry::sessions::upsert(record.clone());
                farewell(stream, &format!("bad frame: {e}"));
                return format!("protocol error: {e}");
            }
        };
        match message {
            Message::Goodbye { .. } => {
                stream.shutdown();
                return "client goodbye".into();
            }
            Message::Call {
                seq,
                deadline_ms,
                idempotency,
                trace,
                request,
            } => {
                if seq <= record.last_seq {
                    telemetry::add("server.protocol_errors", 1);
                    record.protocol_errors += 1;
                    telemetry::sessions::upsert(record.clone());
                    farewell(
                        stream,
                        &format!("sequence regression: {seq} after {}", record.last_seq),
                    );
                    return "protocol error: sequence regression".into();
                }
                record.last_seq = seq;
                record.requests_inflight += 1;
                record.trace_id = trace.map(|c| c.trace.0);
                telemetry::sessions::note_request_started(record.id, record.trace_id);
                let (response, usage) =
                    answer(shared, record, deadline_ms, idempotency, trace, request);
                record.requests_inflight = record.requests_inflight.saturating_sub(1);
                record.trace_id = None;
                telemetry::sessions::note_request_finished(record.id);
                // A v2 peer cannot decode the usage-bearing Reply tag;
                // its replies stay in the legacy encoding.
                let usage = (peer_protocol >= 3).then_some(usage);
                if write_all(
                    stream,
                    &Message::Reply {
                        seq,
                        usage,
                        response,
                    }
                    .to_frame(),
                )
                .is_err()
                {
                    telemetry::add("server.disconnects", 1);
                    stream.shutdown();
                    return "transport error: reply write failed".into();
                }
            }
            Message::Hello { .. }
            | Message::HelloAck { .. }
            | Message::Reply { .. }
            | Message::AuthFailed { .. } => {
                telemetry::add("server.protocol_errors", 1);
                record.protocol_errors += 1;
                telemetry::sessions::upsert(record.clone());
                farewell(stream, "unexpected message kind");
                return "protocol error: unexpected message kind".into();
            }
        }
    }
}

/// Largest accepted value for any clustering cardinality parameter
/// (`k`, `max_k`, `pca_components`). A bit-flipped or hostile frame can
/// decode to a structurally valid request with a parameter like
/// `max_k = 2^30`, which would pin an analysis worker in a
/// CPU-bound sweep no deadline can interrupt — the chaos harness found
/// exactly this. Real trials never need more clusters than threads.
const MAX_CLUSTER_PARAM: usize = 4096;

/// Largest accepted `Stall` duration; anything longer parks a worker
/// for what is effectively forever.
const MAX_STALL_MS: u64 = 60_000;

/// Network-boundary validation: requests that decode fine but carry
/// values that would capture a worker are rejected before dispatch.
pub(crate) fn validate(request: &Request, config: &ServerConfig) -> Result<(), String> {
    match request {
        Request::Shutdown => {
            // Shutdown is an in-process control request; over the
            // network it would let any client kill a worker thread.
            Err("Shutdown is not accepted over the network".into())
        }
        Request::InjectPanic(_) | Request::Stall { .. } if !config.allow_fault_injection => {
            // Fault-injection aids exist for the chaos harness; over
            // the network they would let any client panic workers or
            // park them all in minute-long stalls — a trivial denial of
            // service. Only a server explicitly configured for testing
            // accepts them.
            Err("fault-injection requests are not accepted over the network".into())
        }
        Request::ClusterTrial {
            k,
            max_k,
            pca_components,
            ..
        } => {
            let biggest = k.unwrap_or(0).max(*max_k).max(*pca_components);
            if biggest > MAX_CLUSTER_PARAM {
                Err(format!(
                    "clustering parameter {biggest} exceeds limit {MAX_CLUSTER_PARAM}"
                ))
            } else {
                Ok(())
            }
        }
        Request::Stall { millis } if *millis > MAX_STALL_MS => Err(format!(
            "stall of {millis}ms exceeds limit {MAX_STALL_MS}ms"
        )),
        _ => Ok(()),
    }
}

/// Removes the in-flight replay-cache marker if the execution never
/// reported an outcome (a panic between dispatch and completion, caught
/// by the session loop's `catch_unwind`). Without this, a stuck
/// `InFlight` entry would park every future retry of the key forever.
pub(crate) struct InFlightGuard {
    shared: Arc<Shared>,
    key: u64,
    resolved: bool,
}

impl InFlightGuard {
    /// Register `key` as in flight. The caller must already hold the
    /// cache decision that the key is fresh (no `Done`/`InFlight`
    /// entry).
    pub(crate) fn new(shared: Arc<Shared>, key: u64) -> InFlightGuard {
        InFlightGuard {
            shared,
            key,
            resolved: false,
        }
    }

    /// Record the execution's outcome: cache successful responses for
    /// replay, drop the marker for outcomes an honest retry should
    /// re-attempt. Either way, waiters are woken.
    pub(crate) fn resolve(mut self, response: &Response) {
        let cacheable = !matches!(
            response,
            Response::Overloaded
                | Response::Error(_)
                | Response::Failed { .. }
                | Response::ShuttingDown
        );
        let mut cache = self.shared.replay.lock().unwrap();
        if cacheable {
            cache.finish(self.key, response.clone());
            telemetry::add("server.replay_inserts", 1);
        } else {
            cache.abandon(self.key);
        }
        drop(cache);
        self.resolved = true;
        self.shared.replay_done.notify_all();
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        if !self.resolved {
            self.shared.replay.lock().unwrap().abandon(self.key);
            self.shared.replay_done.notify_all();
        }
    }
}

/// Emits the panic artifacts for a request that dies on the session
/// thread: without it, the `catch_unwind` in the accept loop swallows
/// the unwinding with nothing but a counter, losing the trace context
/// of the request that killed the session. Dropped while panicking (and
/// not `completed`), it records the request in the accounting ring with
/// `status = "panic"` and freezes the flight recorder. Declared
/// *before* the `server.request` span guard so the span publishes its
/// record first and the dump captures it.
pub(crate) struct PanicArtifact {
    pub(crate) kind: &'static str,
    pub(crate) session: u64,
    pub(crate) tenant: String,
    pub(crate) trace_id: Option<u64>,
    pub(crate) deadline_ms: u32,
    pub(crate) started: Instant,
    pub(crate) meter: telemetry::RequestMeter,
    pub(crate) completed: bool,
}

impl Drop for PanicArtifact {
    fn drop(&mut self) {
        if self.completed || !std::thread::panicking() {
            return;
        }
        telemetry::add("server.request_panics", 1);
        let elapsed = self.started.elapsed();
        let mut event = telemetry::Event::new(telemetry::Severity::Warn, "session_panic")
            .field("kind", self.kind)
            .field("session", self.session)
            .field("tenant", self.tenant.clone());
        if let Some(trace_id) = self.trace_id {
            event = event.field("trace", format!("{trace_id:016x}"));
        }
        telemetry::emit(event);
        telemetry::requests::record(telemetry::RequestRecord {
            seq: 0,
            trace_id: self.trace_id,
            session: self.session,
            tenant: std::mem::take(&mut self.tenant),
            kind: self.kind,
            status: "panic",
            deadline_slack_ms: deadline_slack(self.deadline_ms, elapsed),
            elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
            slow: false,
            usage: self.meter.snapshot(),
        });
        telemetry::trace::fault_dump("session panic");
    }
}

/// Milliseconds of deadline left when the reply was formed (negative =
/// the deadline was exceeded); `None` for calls without a deadline.
pub(crate) fn deadline_slack(deadline_ms: u32, elapsed: Duration) -> Option<i64> {
    (deadline_ms > 0)
        .then(|| i64::from(deadline_ms) - (elapsed.as_millis().min(i64::MAX as u128) as i64))
}

/// Resolve one `Call` into a `Response` plus the resources it consumed.
///
/// This is the server end of the causal trace: the client's propagated
/// context (if any) is adopted so the `server.request` span — and every
/// span below it on the worker and pool threads — parents into the
/// caller's `client.request` span. A fresh [`telemetry::RequestMeter`]
/// is adopted for the duration, and the finished request is recorded in
/// the bounded accounting ring behind `perfdmf_requests`.
fn answer(
    shared: &Arc<Shared>,
    record: &mut SessionRecord,
    deadline_ms: u32,
    idempotency: u64,
    trace: Option<telemetry::SpanContext>,
    request: Request,
) -> (Response, telemetry::ResourceUsage) {
    let kind = request.kind();
    let started = Instant::now();
    let _adopted = trace.map(telemetry::trace::adopt_context);
    let meter = telemetry::RequestMeter::new();
    let _metered = telemetry::adopt_meter(meter.clone());
    let mut artifact = PanicArtifact {
        kind,
        session: record.id,
        tenant: record.tenant.clone(),
        trace_id: trace.map(|c| c.trace.0),
        deadline_ms,
        started,
        meter: meter.clone(),
        completed: false,
    };
    let _span = telemetry::span("server.request");
    // A server tracing without a propagated client context still stamps
    // its own fresh trace id on the accounting row.
    let trace_id = artifact
        .trace_id
        .or_else(|| telemetry::trace::current_trace_id().map(|t| t.0));
    artifact.trace_id = trace_id;
    if shared.config.allow_fault_injection {
        if let Request::InjectPanic(message) = &request {
            // `session:`-prefixed injections panic *here*, on the
            // session thread inside the `server.request` span — the
            // deterministic trigger for the panic-artifact path (plain
            // injections panic on a worker and are isolated there).
            if let Some(rest) = message.strip_prefix("session:") {
                panic!("injected session panic: {rest}");
            }
        }
    }
    let (response, status) = dispatch(shared, record, deadline_ms, idempotency, request);
    artifact.completed = true;
    let usage = meter.snapshot();
    let elapsed = started.elapsed();
    telemetry::requests::record(telemetry::RequestRecord {
        seq: 0,
        trace_id,
        session: record.id,
        tenant: record.tenant.clone(),
        kind,
        status,
        deadline_slack_ms: deadline_slack(deadline_ms, elapsed),
        elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
        slow: false,
        usage,
    });
    (response, usage)
}

/// Replay-cache hit, drain rejection, or dispatch through the
/// explorer's admission control. Returns the response plus the status
/// label the accounting ring files it under.
///
/// Keyed requests are registered in the replay cache **before**
/// dispatch, so a retry that arrives while the original is still
/// executing waits for its outcome (bounded by the retry's own
/// deadline) instead of executing the write a second time.
fn dispatch(
    shared: &Arc<Shared>,
    record: &mut SessionRecord,
    deadline_ms: u32,
    idempotency: u64,
    request: Request,
) -> (Response, &'static str) {
    if let Err(reason) = validate(&request, &shared.config) {
        telemetry::add("server.requests_rejected", 1);
        record.errors += 1;
        return (Response::Error(reason), "rejected");
    }
    if shared.draining.load(Ordering::SeqCst) {
        return (Response::ShuttingDown, "shutting_down");
    }
    let guard = if idempotency != 0 {
        let wait_until = Instant::now()
            + if deadline_ms > 0 {
                Duration::from_millis(u64::from(deadline_ms))
            } else {
                DUPLICATE_WAIT
            };
        let mut cache = shared.replay.lock().unwrap();
        loop {
            match cache.entry(idempotency) {
                Some(ReplayEntry::Done(response)) => {
                    let response = response.clone();
                    telemetry::add("server.idempotent_replays", 1);
                    record.replays += 1;
                    return (response, "replayed");
                }
                Some(ReplayEntry::InFlight) => {
                    if shared.draining.load(Ordering::SeqCst) {
                        return (Response::ShuttingDown, "shutting_down");
                    }
                    let now = Instant::now();
                    if now >= wait_until {
                        telemetry::add("server.duplicate_waits_expired", 1);
                        return (
                            Response::Failed {
                                reason: "duplicate request still executing".into(),
                                retryable: true,
                            },
                            "failed",
                        );
                    }
                    // Short slices so the drain flag stays responsive
                    // even if the wakeup is missed.
                    let slice = (wait_until - now).min(POLL_INTERVAL);
                    let (c, _) = shared.replay_done.wait_timeout(cache, slice).unwrap();
                    cache = c;
                }
                None => {
                    cache.begin(idempotency);
                    break;
                }
            }
        }
        Some(InFlightGuard::new(shared.clone(), idempotency))
    } else {
        None
    };
    let submitted = Instant::now();
    let response = if deadline_ms > 0 {
        shared
            .explorer
            .request_with_deadline(request, Duration::from_millis(u64::from(deadline_ms)))
    } else {
        shared.explorer.request(request)
    };
    let status = finish_request(record, &response, submitted);
    if let Some(guard) = guard {
        guard.resolve(&response);
    }
    (response, status)
}

/// Account a completed dispatch: the shared counters, the per-session
/// tallies, and the status label the accounting ring files the request
/// under. Used by both executors so the counter deltas chaos tests
/// assert on are identical in either mode.
pub(crate) fn finish_request(
    record: &mut SessionRecord,
    response: &Response,
    submitted: Instant,
) -> &'static str {
    telemetry::add("server.requests", 1);
    telemetry::record_duration("server.request_latency_ns", submitted.elapsed());
    record.requests += 1;
    match response {
        Response::Overloaded => {
            telemetry::add("server.sheds", 1);
            record.sheds += 1;
        }
        Response::Error(_) | Response::Failed { .. } => {
            telemetry::add("server.request_errors", 1);
            record.errors += 1;
        }
        _ => {}
    }
    match response {
        Response::Overloaded => "overloaded",
        Response::Error(_) => "error",
        Response::Failed { .. } => "failed",
        Response::ShuttingDown => "shutting_down",
        _ => "ok",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_cache_evicts_oldest_done_but_never_in_flight() {
        let mut cache = ReplayCache::new();
        let pinned = u64::MAX;
        cache.begin(pinned);
        for key in 1..=(REPLAY_CACHE_CAPACITY as u64 + 8) {
            cache.begin(key);
            cache.finish(key, Response::Pong);
        }
        assert!(cache.map.len() <= REPLAY_CACHE_CAPACITY);
        assert!(
            matches!(cache.entry(pinned), Some(ReplayEntry::InFlight)),
            "in-flight entries must survive churn"
        );
        assert!(
            cache.entry(1).is_none(),
            "the oldest completed entry must be evicted first"
        );
        assert!(
            matches!(
                cache.entry(REPLAY_CACHE_CAPACITY as u64 + 8),
                Some(ReplayEntry::Done(_))
            ),
            "the newest completed entry must be retained"
        );
        cache.abandon(pinned);
        assert!(cache.entry(pinned).is_none());
        assert!(
            !cache.order.contains(&pinned),
            "abandon must drop the eviction-order slot too"
        );
    }
}
