/root/repo/target/debug/deps/prop_upload-716e17ce443b522b.d: crates/core/tests/prop_upload.rs

/root/repo/target/debug/deps/prop_upload-716e17ce443b522b: crates/core/tests/prop_upload.rs

crates/core/tests/prop_upload.rs:
