/root/repo/target/debug/deps/perfdmf_xml-a7f8df4f480f33cd.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libperfdmf_xml-a7f8df4f480f33cd.rlib: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libperfdmf_xml-a7f8df4f480f33cd.rmeta: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
