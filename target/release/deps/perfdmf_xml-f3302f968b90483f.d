/root/repo/target/release/deps/perfdmf_xml-f3302f968b90483f.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libperfdmf_xml-f3302f968b90483f.rlib: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libperfdmf_xml-f3302f968b90483f.rmeta: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
