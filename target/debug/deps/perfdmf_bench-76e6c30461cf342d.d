/root/repo/target/debug/deps/perfdmf_bench-76e6c30461cf342d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/perfdmf_bench-76e6c30461cf342d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
