//! Trial comparison algebra.
//!
//! The paper's §7 names integrating "the CUBE algebra ... to implement
//! high-level comparative queries and analysis operations" as planned
//! work; this module implements that extension: *difference* and *merge*
//! operators over profiles (Song et al., ICPP'04 — the paper's \[26\]).
//!
//! Operands are aligned by event name and metric name; the thread
//! dimension is collapsed to the mean summary, which is how CUBE's algebra
//! treats system-dimension mismatches.

use perfdmf_profile::{MetricId, Profile};
use std::collections::BTreeMap;

/// Comparison of one (event, metric) pair between two trials.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Event name.
    pub event: String,
    /// Metric name.
    pub metric: String,
    /// Mean exclusive value in the left trial (`None` if absent).
    pub left: Option<f64>,
    /// Mean exclusive value in the right trial (`None` if absent).
    pub right: Option<f64>,
    /// right − left (when both present).
    pub absolute: Option<f64>,
    /// (right − left) / left (when both present and left ≠ 0).
    pub relative: Option<f64>,
}

/// Difference of two trials: for every (event, metric) present in either,
/// the change in mean exclusive value from `left` to `right`.
pub fn diff(left: &Profile, right: &Profile) -> Vec<DiffEntry> {
    let lmap = mean_exclusive_map(left);
    let rmap = mean_exclusive_map(right);
    let mut keys: Vec<&(String, String)> = lmap.keys().chain(rmap.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .map(|key| {
            let l = lmap.get(key).copied();
            let r = rmap.get(key).copied();
            let absolute = match (l, r) {
                (Some(a), Some(b)) => Some(b - a),
                _ => None,
            };
            let relative = match (l, absolute) {
                (Some(a), Some(d)) if a != 0.0 => Some(d / a),
                _ => None,
            };
            DiffEntry {
                event: key.0.clone(),
                metric: key.1.clone(),
                left: l,
                right: r,
                absolute,
                relative,
            }
        })
        .collect()
}

/// Merge two trials: mean of the mean-exclusive values where both define
/// an (event, metric), the defined one otherwise. Returns the merged map
/// keyed by (event, metric).
pub fn merge(left: &Profile, right: &Profile) -> BTreeMap<(String, String), f64> {
    let lmap = mean_exclusive_map(left);
    let rmap = mean_exclusive_map(right);
    let mut out = BTreeMap::new();
    for (k, v) in &lmap {
        match rmap.get(k) {
            Some(w) => out.insert(k.clone(), (v + w) / 2.0),
            None => out.insert(k.clone(), *v),
        };
    }
    for (k, w) in &rmap {
        out.entry(k.clone()).or_insert(*w);
    }
    out
}

/// Events whose relative change exceeds `threshold` (e.g. 0.10 = 10%),
/// sorted by |relative| descending — the regression-detection primitive.
pub fn regressions(entries: &[DiffEntry], threshold: f64) -> Vec<&DiffEntry> {
    let mut out: Vec<&DiffEntry> = entries
        .iter()
        .filter(|e| e.relative.map(f64::abs).unwrap_or(0.0) > threshold)
        .collect();
    out.sort_by(|a, b| {
        b.relative
            .unwrap_or(0.0)
            .abs()
            .total_cmp(&a.relative.unwrap_or(0.0).abs())
    });
    out
}

fn mean_exclusive_map(p: &Profile) -> BTreeMap<(String, String), f64> {
    let mut out = BTreeMap::new();
    for (mi, metric) in p.metrics().iter().enumerate() {
        let means = p.mean_summary(MetricId(mi));
        for (ei, event) in p.events().iter().enumerate() {
            if let Some(x) = means[ei].exclusive() {
                out.insert((event.name.clone(), metric.name.clone()), x);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric, ThreadId};

    fn profile(values: &[(&str, f64)]) -> Profile {
        let mut p = Profile::new("t");
        let m = p.add_metric(Metric::measured("TIME"));
        p.add_thread(ThreadId::ZERO);
        for (name, v) in values {
            let e = p.add_event(IntervalEvent::ungrouped(*name));
            p.set_interval(e, ThreadId::ZERO, m, IntervalData::new(*v, *v, 1.0, 0.0));
        }
        p
    }

    #[test]
    fn diff_basic() {
        let a = profile(&[("f", 10.0), ("g", 5.0)]);
        let b = profile(&[("f", 12.0), ("h", 3.0)]);
        let d = diff(&a, &b);
        assert_eq!(d.len(), 3);
        let f = d.iter().find(|e| e.event == "f").unwrap();
        assert_eq!(f.absolute, Some(2.0));
        assert!((f.relative.unwrap() - 0.2).abs() < 1e-12);
        let g = d.iter().find(|e| e.event == "g").unwrap();
        assert_eq!(g.right, None);
        assert_eq!(g.absolute, None);
        let h = d.iter().find(|e| e.event == "h").unwrap();
        assert_eq!(h.left, None);
    }

    #[test]
    fn diff_collapses_threads_to_mean() {
        let mut a = Profile::new("a");
        let m = a.add_metric(Metric::measured("TIME"));
        let e = a.add_event(IntervalEvent::ungrouped("f"));
        a.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
        a.set_interval(
            e,
            ThreadId::new(0, 0, 0),
            m,
            IntervalData::new(10.0, 10.0, 1.0, 0.0),
        );
        a.set_interval(
            e,
            ThreadId::new(1, 0, 0),
            m,
            IntervalData::new(20.0, 20.0, 1.0, 0.0),
        );
        let b = profile(&[("f", 30.0)]);
        let d = diff(&a, &b);
        assert_eq!(d[0].left, Some(15.0));
        assert_eq!(d[0].absolute, Some(15.0));
    }

    #[test]
    fn merge_means_and_unions() {
        let a = profile(&[("f", 10.0), ("g", 4.0)]);
        let b = profile(&[("f", 20.0), ("h", 6.0)]);
        let m = merge(&a, &b);
        assert_eq!(m[&("f".to_string(), "TIME".to_string())], 15.0);
        assert_eq!(m[&("g".to_string(), "TIME".to_string())], 4.0);
        assert_eq!(m[&("h".to_string(), "TIME".to_string())], 6.0);
    }

    #[test]
    fn regression_detection_sorted() {
        let a = profile(&[("stable", 10.0), ("slower", 10.0), ("much_slower", 10.0)]);
        let b = profile(&[("stable", 10.2), ("slower", 13.0), ("much_slower", 25.0)]);
        let d = diff(&a, &b);
        let reg = regressions(&d, 0.10);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg[0].event, "much_slower");
        assert_eq!(reg[1].event, "slower");
    }

    #[test]
    fn multi_metric_alignment() {
        let mut a = profile(&[("f", 10.0)]);
        let papi = a.add_metric(Metric::measured("PAPI_FP_OPS"));
        let e = a.find_event("f").unwrap();
        a.set_interval(
            e,
            ThreadId::ZERO,
            papi,
            IntervalData::new(1e9, 1e9, 1.0, 0.0),
        );
        let b = profile(&[("f", 10.0)]);
        let d = diff(&a, &b);
        // TIME aligns, PAPI only on the left
        assert_eq!(d.len(), 2);
        let papi_entry = d.iter().find(|e| e.metric == "PAPI_FP_OPS").unwrap();
        assert_eq!(papi_entry.right, None);
    }
}
