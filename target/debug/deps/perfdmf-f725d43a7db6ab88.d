/root/repo/target/debug/deps/perfdmf-f725d43a7db6ab88.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf-f725d43a7db6ab88.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
