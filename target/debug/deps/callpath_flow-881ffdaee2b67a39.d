/root/repo/target/debug/deps/callpath_flow-881ffdaee2b67a39.d: tests/callpath_flow.rs

/root/repo/target/debug/deps/callpath_flow-881ffdaee2b67a39: tests/callpath_flow.rs

tests/callpath_flow.rs:
