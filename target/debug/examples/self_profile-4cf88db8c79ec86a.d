/root/repo/target/debug/examples/self_profile-4cf88db8c79ec86a.d: examples/self_profile.rs Cargo.toml

/root/repo/target/debug/examples/libself_profile-4cf88db8c79ec86a.rmeta: examples/self_profile.rs Cargo.toml

examples/self_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
