//! SQL values and data types.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INTEGER`, `INT`, `BIGINT`).
    Integer,
    /// 64-bit IEEE float (`DOUBLE`, `FLOAT`, `REAL`).
    Double,
    /// UTF-8 string (`TEXT`, `VARCHAR`).
    Text,
    /// Boolean (`BOOLEAN`).
    Boolean,
    /// Raw bytes (`BLOB`).
    Blob,
}

impl DataType {
    /// Parse a SQL type name (case-insensitive, size suffixes ignored).
    pub fn parse(name: &str) -> Option<DataType> {
        let up = name.trim().to_ascii_uppercase();
        let base = up.split('(').next().unwrap_or("").trim();
        match base {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "SERIAL" => Some(DataType::Integer),
            "DOUBLE" | "DOUBLE PRECISION" | "FLOAT" | "REAL" | "NUMERIC" | "DECIMAL" => {
                Some(DataType::Double)
            }
            "TEXT" | "VARCHAR" | "CHAR" | "CLOB" | "STRING" => Some(DataType::Text),
            "BOOLEAN" | "BOOL" => Some(DataType::Boolean),
            "BLOB" | "BYTEA" | "BINARY" => Some(DataType::Blob),
            _ => None,
        }
    }

    /// Canonical SQL name.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Boolean => "BOOLEAN",
            DataType::Blob => "BLOB",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

/// Process-wide string dictionary backing [`IStr`].
///
/// Interning is global so equal strings always share one id: `IStr`
/// equality and hashing reduce to a `u32` compare, which makes group-by
/// keys and DISTINCT sets cheap and lets column chunks store text
/// columns as dictionary ids. Entries live for the process lifetime —
/// acceptable for a metrics store whose event/metric name cardinality
/// is bounded.
struct Interner {
    ids: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            ids: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// An interned, immutable UTF-8 string.
///
/// Cloning bumps an `Arc`; equality and hashing compare the dictionary
/// id (O(1)); ordering still compares bytes, so the SQL total order is
/// unchanged. Derefs to `str`, so call sites treat it like a `String`.
#[derive(Debug, Clone)]
pub struct IStr {
    id: u32,
    s: Arc<str>,
}

impl IStr {
    /// Intern `s`, returning the canonical handle for its contents.
    pub fn intern(s: &str) -> IStr {
        {
            let rd = interner().read().unwrap();
            if let Some(&id) = rd.ids.get(s) {
                return IStr {
                    id,
                    s: Arc::clone(&rd.strings[id as usize]),
                };
            }
        }
        let mut wr = interner().write().unwrap();
        if let Some(&id) = wr.ids.get(s) {
            return IStr {
                id,
                s: Arc::clone(&wr.strings[id as usize]),
            };
        }
        let arc: Arc<str> = Arc::from(s);
        let id = u32::try_from(wr.strings.len()).expect("string dictionary overflow");
        wr.strings.push(Arc::clone(&arc));
        wr.ids.insert(Arc::clone(&arc), id);
        IStr { id, s: arc }
    }

    /// The dictionary id. Equal strings share one id process-wide.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Resolve a dictionary id previously minted by [`IStr::id`].
    pub fn from_id(id: u32) -> Option<IStr> {
        let rd = interner().read().unwrap();
        rd.strings.get(id as usize).map(|s| IStr {
            id,
            s: Arc::clone(s),
        })
    }

    /// View as `&str`.
    pub fn as_str(&self) -> &str {
        &self.s
    }
}

impl Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.s
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.s
    }
}

impl PartialEq for IStr {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for IStr {}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialOrd for IStr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IStr {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.id == other.id {
            Ordering::Equal
        } else {
            self.s.cmp(&other.s)
        }
    }
}

impl std::hash::Hash for IStr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.s)
    }
}

impl From<&str> for IStr {
    fn from(s: &str) -> Self {
        IStr::intern(s)
    }
}

impl From<String> for IStr {
    fn from(s: String) -> Self {
        IStr::intern(&s)
    }
}

impl From<&String> for IStr {
    fn from(s: &String) -> Self {
        IStr::intern(s)
    }
}

/// A dynamically-typed SQL value.
///
/// `Value` has a *total order* used by indexes, ORDER BY, and MIN/MAX:
/// `Null` sorts before everything; numeric types compare numerically across
/// Integer/Double; NaN sorts after all other doubles and equal to itself
/// (so indexes stay consistent).
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text, dictionary-interned.
    Text(IStr),
    /// Boolean.
    Bool(bool),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Double),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Boolean),
            Value::Bytes(_) => Some(DataType::Blob),
        }
    }

    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret as i64 if the value is numeric.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// Interpret as f64 if the value is numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Interpret as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interpret as bool (SQL truthiness: nonzero numbers are true).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            _ => None,
        }
    }

    /// Coerce to `ty`, if a lossless-enough conversion exists.
    ///
    /// This implements column-type coercion on INSERT/UPDATE: integers widen
    /// to doubles, numeric text parses, booleans map to 0/1, etc. NULL
    /// coerces to any type.
    pub fn coerce(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            (Value::Int(i), DataType::Double) => Some(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Integer) if f.fract() == 0.0 && f.is_finite() => {
                Some(Value::Int(*f as i64))
            }
            (Value::Bool(b), DataType::Integer) => Some(Value::Int(*b as i64)),
            (Value::Int(i), DataType::Boolean) => Some(Value::Bool(*i != 0)),
            (Value::Text(s), DataType::Integer) => s.trim().parse().ok().map(Value::Int),
            (Value::Text(s), DataType::Double) => s.trim().parse().ok().map(Value::Float),
            (Value::Text(s), DataType::Boolean) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Some(Value::Bool(true)),
                "false" | "f" | "0" => Some(Value::Bool(false)),
                _ => None,
            },
            (Value::Int(i), DataType::Text) => Some(Value::Text(i.to_string().into())),
            (Value::Float(f), DataType::Text) => Some(Value::Text(format_float(*f).into())),
            (Value::Bool(b), DataType::Text) => Some(Value::Text(b.to_string().into())),
            _ => None,
        }
    }

    /// SQL equality: NULL is not equal to anything (including NULL).
    ///
    /// Returns `None` when either side is NULL (unknown), per SQL semantics.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL comparison (`None` if either side is NULL).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order used by indexes and sorting. NULL first, then booleans,
    /// then numbers (cross-type), then text, then blobs.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Text(_) => 3,
                Bytes(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

/// Format a float the way SQL text conversion expects (no trailing `.0`
/// stripping surprises; integral values keep one decimal for round-trip
/// clarity).
pub fn format_float(f: f64) -> String {
    if f.is_finite() && f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            // Interned text hashes its dictionary id, not its bytes:
            // global dedupe guarantees equal strings share one id.
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", format_float(*x)),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Bytes(b) => write!(f, "x'{}'", hex(b)),
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(IStr::intern(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(IStr::intern(&v))
    }
}
impl From<IStr> for Value {
    fn from(v: IStr) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing() {
        assert_eq!(DataType::parse("varchar(255)"), Some(DataType::Text));
        assert_eq!(DataType::parse("INT"), Some(DataType::Integer));
        assert_eq!(DataType::parse(" double "), Some(DataType::Double));
        assert_eq!(DataType::parse("bool"), Some(DataType::Boolean));
        assert_eq!(DataType::parse("widget"), None);
    }

    #[test]
    fn cross_type_numeric_order() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_sorts_first() {
        let mut v = [Value::Int(1), Value::Null, Value::Text("a".into())];
        v.sort();
        assert!(v[0].is_null());
        assert_eq!(v[1], Value::Int(1));
    }

    #[test]
    fn nan_is_orderable() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.total_cmp(&nan), Ordering::Equal);
        assert_eq!(Value::Float(1.0).total_cmp(&nan), Ordering::Less);
    }

    #[test]
    fn sql_null_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::Int(3).coerce(DataType::Double),
            Some(Value::Float(3.0))
        );
        assert_eq!(
            Value::Float(3.0).coerce(DataType::Integer),
            Some(Value::Int(3))
        );
        assert_eq!(Value::Float(3.5).coerce(DataType::Integer), None);
        assert_eq!(
            Value::Text("42".into()).coerce(DataType::Integer),
            Some(Value::Int(42))
        );
        assert_eq!(
            Value::Text("true".into()).coerce(DataType::Boolean),
            Some(Value::Bool(true))
        );
        assert_eq!(Value::Null.coerce(DataType::Blob), Some(Value::Null));
        assert_eq!(Value::Text("xyz".into()).coerce(DataType::Integer), None);
    }

    #[test]
    fn int_float_hash_consistency() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bytes(vec![0xde, 0xad]).to_string(), "x'dead'");
    }

    #[test]
    fn interning_dedupes_and_orders() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = IStr::intern("MPI_Send");
        let b = IStr::intern("MPI_Send");
        let c = IStr::intern("MPI_Recv");
        assert_eq!(a.id(), b.id());
        assert_ne!(a.id(), c.id());
        assert_eq!(a, b);
        // Ordering is by bytes, independent of intern order.
        assert!(c < a);
        assert_eq!(IStr::from_id(a.id()).unwrap().as_str(), "MPI_Send");
        // Hash-by-id must agree with equality.
        fn h(v: &IStr) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&a), h(&b));
        // Deref gives str methods.
        assert_eq!(a.len(), 8);
        assert!(a.starts_with("MPI"));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from(Some("x")), Value::Text("x".into()));
        assert_eq!(Value::from(None::<i64>), Value::Null);
    }
}
