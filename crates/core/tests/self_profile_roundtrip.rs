//! The self-profiling loop, closed: live telemetry exported with
//! `snapshot_to_profile()` is stored through `DataSession::store_profile`
//! and read back with `load_profile` like any other trial.

use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_profile::ThreadId;
use perfdmf_telemetry as telemetry;
use perfdmf_telemetry::snapshot::{EXPORTED_QUANTILES, TELEMETRY_METRIC};

#[test]
fn telemetry_snapshot_round_trips_through_database() {
    // Open the session first so its schema DDL runs before the snapshot;
    // unique names keep this test independent of parallel tests.
    let mut session = DatabaseSession::new(Connection::open_in_memory()).unwrap();

    telemetry::counter("rt.core.rows").add(42);
    let h = telemetry::histogram("rt.core.latency_ns");
    h.record(1_000);
    h.record(3_000);

    let profile = telemetry::snapshot_to_profile();
    assert!(profile.validate().is_empty());

    let trial_id = session
        .store_profile("perfdmf", "self-profiling", &profile)
        .unwrap();
    session.set_trial(trial_id);
    let loaded = session.load_profile().unwrap();

    let metric = loaded.find_metric(TELEMETRY_METRIC).expect("metric stored");
    let event = loaded
        .find_event("rt.core.latency_ns")
        .expect("histogram became an interval event");
    let data = loaded
        .interval(event, ThreadId::ZERO, metric)
        .expect("data");
    assert_eq!(data.calls(), Some(2.0));
    assert_eq!(data.inclusive(), Some(4_000.0));

    let atomic = loaded
        .find_atomic_event("rt.core.rows")
        .expect("counter became an atomic event");
    let ad = loaded.atomic(atomic, ThreadId::ZERO).expect("atomic data");
    assert_eq!(ad.mean, 42.0);

    // The instrumented store/load above fed the registry in turn: the
    // session spans themselves show up as latency histograms.
    let snap = telemetry::snapshot();
    assert!(snap
        .histogram("session.store_profile")
        .is_some_and(|s| s.count >= 1));
    assert!(snap
        .histogram("session.load_profile")
        .is_some_and(|s| s.count >= 1));
}

#[test]
fn histogram_quantiles_survive_the_round_trip() {
    let mut session = DatabaseSession::new(Connection::open_in_memory()).unwrap();

    // A skewed distribution so p50 and p99 land in different buckets.
    let h = telemetry::histogram("rt.quant.latency_ns");
    for _ in 0..98 {
        h.record(1_000);
    }
    h.record(500_000);
    h.record(2_000_000);

    // Freeze the expectation from the same snapshot that gets exported;
    // other tests keep recording into the shared registry.
    let snap = telemetry::snapshot();
    let live = snap.histogram("rt.quant.latency_ns").expect("histogram");
    let expected: Vec<(String, u64)> = EXPORTED_QUANTILES
        .iter()
        .map(|(label, q)| {
            (
                format!("rt.quant.latency_ns.{label}"),
                live.quantile(*q).expect("non-empty"),
            )
        })
        .collect();
    let profile = telemetry::snapshot::profile_from_snapshot(&snap);

    let trial_id = session
        .store_profile("perfdmf", "self-profiling-quantiles", &profile)
        .unwrap();
    session.set_trial(trial_id);
    let loaded = session.load_profile().unwrap();

    let mut stored = Vec::new();
    for (name, want) in &expected {
        let event = loaded
            .find_atomic_event(name)
            .unwrap_or_else(|| panic!("{name} survives store/load"));
        let data = loaded.atomic(event, ThreadId::ZERO).expect("atomic data");
        assert_eq!(data.mean, *want as f64, "{name}");
        stored.push(data.mean);
    }
    // p50 <= p95 <= p99, and the tail actually separated from the median.
    assert!(stored[0] <= stored[1] && stored[1] <= stored[2]);
    assert!(stored[2] > stored[0], "p99 must reflect the outliers");
}
