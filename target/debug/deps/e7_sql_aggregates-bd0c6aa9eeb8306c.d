/root/repo/target/debug/deps/e7_sql_aggregates-bd0c6aa9eeb8306c.d: crates/bench/benches/e7_sql_aggregates.rs Cargo.toml

/root/repo/target/debug/deps/libe7_sql_aggregates-bd0c6aa9eeb8306c.rmeta: crates/bench/benches/e7_sql_aggregates.rs Cargo.toml

crates/bench/benches/e7_sql_aggregates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
