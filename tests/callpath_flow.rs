//! Callpath flow: TAU callpath profiles survive the write → import →
//! store → load pipeline and reconstruct into consistent call trees.

use perfdmf::core::DatabaseSession;
use perfdmf::db::Connection;
use perfdmf::profile::{
    build_call_tree, flatten_callpaths, validate_call_tree, IntervalData, IntervalEvent, Metric,
    Profile, ThreadId,
};
use perfdmf::workload::write_tau_directory;

fn callpath_profile() -> Profile {
    let mut p = Profile::new("cp-run");
    p.source_format = "tau".into();
    let m = p.add_metric(Metric::measured("GET_TIME_OF_DAY"));
    p.add_threads([ThreadId::new(0, 0, 0), ThreadId::new(1, 0, 0)]);
    let paths: [(&str, f64, f64, f64); 6] = [
        ("main", 100.0, 5.0, 1.0),
        ("main => solve", 70.0, 10.0, 10.0),
        ("main => solve => sweep", 40.0, 40.0, 200.0),
        ("main => solve => MPI_Allreduce()", 20.0, 20.0, 50.0),
        ("main => io", 25.0, 25.0, 4.0),
        ("sweep", 40.0, 40.0, 200.0), // flat twin
    ];
    for (name, incl, excl, calls) in paths {
        let group = if name.contains("=>") {
            "TAU_CALLPATH"
        } else {
            "TAU_USER"
        };
        let e = p.add_event(IntervalEvent::new(name, group));
        for &t in p.threads().to_vec().iter() {
            p.set_interval(e, t, m, IntervalData::new(incl, excl, calls, 0.0));
        }
    }
    p
}

#[test]
fn callpaths_roundtrip_through_tau_files_and_database() {
    let truth = callpath_profile();
    // --- through TAU files ---
    let dir = std::env::temp_dir().join(format!(
        "pdmf_cp_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    write_tau_directory(&truth, &dir).unwrap();
    let imported = perfdmf::import::load_path(&dir).unwrap();
    assert_eq!(imported.events().len(), truth.events().len());
    assert!(imported
        .events()
        .iter()
        .any(|e| e.name == "main => solve => sweep"));

    // --- through the database ---
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    let trial = session.store_profile("app", "cp", &imported).unwrap();
    session.set_trial(trial);
    let loaded = session.load_profile().unwrap();

    // --- reconstruct and validate the call tree ---
    let m = loaded.find_metric("GET_TIME_OF_DAY").unwrap();
    let tree = build_call_tree(&loaded, ThreadId::new(1, 0, 0), m);
    let problems = validate_call_tree(&tree, 1e-9);
    assert!(problems.is_empty(), "{problems:?}");
    let main = tree.child("main").unwrap();
    assert_eq!(main.inclusive, Some(100.0));
    let solve = main.child("solve").unwrap();
    assert_eq!(solve.children.len(), 2);
    assert_eq!(solve.child("MPI_Allreduce()").unwrap().calls, Some(50.0));

    // --- flat view merges the callpath leaf with its flat twin ---
    let flat = flatten_callpaths(&loaded, ThreadId::new(0, 0, 0), m);
    assert_eq!(flat["sweep"].exclusive(), Some(80.0));
    assert_eq!(flat["sweep"].calls(), Some(400.0));
    assert_eq!(flat["io"].exclusive(), Some(25.0));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn callpath_groups_separate_in_reports() {
    use perfdmf::analysis::group_summaries;
    let p = callpath_profile();
    let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
    let groups = group_summaries(&p, m);
    let names: Vec<&str> = groups.iter().map(|g| g.group.as_str()).collect();
    assert!(names.contains(&"TAU_CALLPATH"));
    assert!(names.contains(&"TAU_USER"));
    let total: f64 = groups.iter().map(|g| g.share).sum();
    assert!((total - 1.0).abs() < 1e-9);
}
