//! The process-wide network-request log: a bounded ring of recent
//! requests with their [`ResourceUsage`], per-kind Chan–Welford
//! latency/cost aggregates, and a slow-request log symmetrical to the
//! db layer's slow-query log.
//!
//! `perfdmf-server` calls [`record`] once per answered request;
//! `perfdmf-db` materializes the retained state as the
//! `perfdmf_requests` and `perfdmf_request_summary` virtual system
//! tables (the registry lives here, like [`crate::sessions`], because
//! the db layer cannot depend on the server crate without a cycle).
//!
//! Requests at or over the configurable threshold
//! ([`set_slow_request_threshold`], default 100ms) additionally emit a
//! `slow_request` structured event, bump the `server.slow_requests`
//! counter, and are retained in their own ring ([`slow_request_log`])
//! so a burst of fast traffic cannot evict the evidence of a slow one.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

use crate::meter::ResourceUsage;

/// Default bound on retained request records; override with
/// `PERFDMF_REQUESTS_CAPACITY`.
pub const DEFAULT_REQUESTS_CAPACITY: usize = 256;

/// Slow requests retained by their dedicated ring.
const SLOW_RING_CAPACITY: usize = 256;

/// Default slow-request threshold: 100ms (a network request includes
/// queue wait and retries, so it breathes wider than a statement).
const DEFAULT_SLOW_REQUEST_NS: u64 = 100_000_000;

/// One answered (or failed) network request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// Monotonically increasing record number (survives eviction).
    pub seq: u64,
    /// Trace id of the request's causal trace, when tracing was on.
    pub trace_id: Option<u64>,
    /// Server session that carried the request.
    pub session: u64,
    /// Tenant tag of that session.
    pub tenant: String,
    /// Request kind label (e.g. `"ClusterTrial"`, `"Ping"`).
    pub kind: &'static str,
    /// How the request resolved: `"ok"`, `"error"`, `"failed"`,
    /// `"overloaded"`, `"replayed"`, `"rejected"`, `"panic"`, …
    pub status: &'static str,
    /// Milliseconds of deadline remaining at completion (negative when
    /// the deadline was exceeded); `None` for requests with no deadline.
    pub deadline_slack_ms: Option<i64>,
    /// Wall time from dispatch to reply, nanoseconds.
    pub elapsed_ns: u64,
    /// True when `elapsed_ns` met the slow-request threshold (set by
    /// [`record`]).
    pub slow: bool,
    /// Server-side resources the request consumed.
    pub usage: ResourceUsage,
}

/// Chan–Welford accumulator: single observations fold in as
/// count-1 accumulators via the parallel combine, so the same merge
/// serves streaming updates and cross-accumulator merges.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    pub count: u64,
    pub mean: f64,
    pub m2: f64,
}

impl Welford {
    /// Accumulator holding the single observation `x`.
    pub fn of(x: f64) -> Welford {
        Welford {
            count: 1,
            mean: x,
            m2: 0.0,
        }
    }

    /// Chan et al.'s parallel combine of two accumulators.
    pub fn merge(self, other: Welford) -> Welford {
        if self.count == 0 {
            return other;
        }
        if other.count == 0 {
            return self;
        }
        let count = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * (other.count as f64 / count as f64);
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64 / count as f64);
        Welford { count, mean, m2 }
    }

    /// Population standard deviation (0 for fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

/// Aggregates for one request kind, as exposed by
/// `perfdmf_request_summary`.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestKindSummary {
    pub kind: &'static str,
    /// Requests of this kind recorded (all statuses).
    pub count: u64,
    /// Requests that resolved as anything but `"ok"` or `"replayed"`.
    pub errors: u64,
    /// Requests that met the slow threshold.
    pub slow: u64,
    /// Chan–Welford latency accumulator (nanoseconds).
    pub latency: Welford,
    /// Largest single latency seen, nanoseconds.
    pub max_latency_ns: u64,
    /// Element-wise resource totals (divide by `count` for means).
    pub totals: ResourceUsage,
}

impl RequestKindSummary {
    fn new(kind: &'static str) -> RequestKindSummary {
        RequestKindSummary {
            kind,
            count: 0,
            errors: 0,
            slow: 0,
            latency: Welford::default(),
            max_latency_ns: 0,
            totals: ResourceUsage::default(),
        }
    }
}

#[derive(Default)]
struct Log {
    ring: VecDeque<RequestRecord>,
    slow_ring: VecDeque<RequestRecord>,
    summary: BTreeMap<&'static str, RequestKindSummary>,
    next_seq: u64,
    capacity: usize,
}

fn log_cell() -> &'static Mutex<Log> {
    static LOG: OnceLock<Mutex<Log>> = OnceLock::new();
    LOG.get_or_init(|| {
        let capacity = std::env::var("PERFDMF_REQUESTS_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_REQUESTS_CAPACITY);
        Mutex::new(Log {
            capacity,
            ..Log::default()
        })
    })
}

static SLOW_REQUEST_THRESHOLD_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_REQUEST_NS);

/// Requests at or above this wall time are logged as slow.
pub fn slow_request_threshold() -> Duration {
    Duration::from_nanos(SLOW_REQUEST_THRESHOLD_NS.load(Ordering::Relaxed))
}

/// Change the slow-request threshold process-wide. `Duration::ZERO`
/// flags every request.
pub fn set_slow_request_threshold(threshold: Duration) {
    let ns = threshold.as_nanos().min(u64::MAX as u128) as u64;
    SLOW_REQUEST_THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

/// Record one completed request: assigns its sequence number, computes
/// the `slow` flag, folds it into the per-kind summary, and — when slow
/// — emits the `slow_request` event and retains it in the slow ring.
/// No-op while telemetry is disabled.
pub fn record(mut record: RequestRecord) {
    if !crate::enabled() {
        return;
    }
    record.slow = record.elapsed_ns >= SLOW_REQUEST_THRESHOLD_NS.load(Ordering::Relaxed);
    let ok = matches!(record.status, "ok" | "replayed");
    {
        let mut log = log_cell().lock();
        record.seq = log.next_seq;
        log.next_seq += 1;

        let entry = log
            .summary
            .entry(record.kind)
            .or_insert_with(|| RequestKindSummary::new(record.kind));
        entry.count += 1;
        entry.errors += u64::from(!ok);
        entry.slow += u64::from(record.slow);
        entry.latency = entry.latency.merge(Welford::of(record.elapsed_ns as f64));
        entry.max_latency_ns = entry.max_latency_ns.max(record.elapsed_ns);
        entry.totals = entry.totals.saturating_add(&record.usage);

        if log.ring.len() >= log.capacity {
            log.ring.pop_front();
        }
        log.ring.push_back(record.clone());
        if record.slow {
            if log.slow_ring.len() >= SLOW_RING_CAPACITY {
                log.slow_ring.pop_front();
            }
            log.slow_ring.push_back(record.clone());
        }
    }
    if record.slow {
        crate::add("server.slow_requests", 1);
        let mut event = crate::event::Event::new(crate::event::Severity::Warn, "slow_request")
            .field("kind", record.kind)
            .field("status", record.status)
            .field("tenant", record.tenant.clone())
            .field("session", record.session)
            .field("elapsed_ns", record.elapsed_ns)
            .field("rows_scanned", record.usage.rows_scanned)
            .field("queue_wait_ns", record.usage.queue_wait_ns)
            .field("execute_ns", record.usage.execute_ns)
            .field("wal_bytes", record.usage.wal_bytes);
        if let Some(trace) = record.trace_id {
            event = event.field("trace", format!("{trace:016x}"));
        }
        crate::event::emit(event);
    }
}

/// Copy of the retained request records, oldest first.
pub fn log() -> Vec<RequestRecord> {
    log_cell().lock().ring.iter().cloned().collect()
}

/// Copy of the retained *slow* request records, oldest first.
pub fn slow_request_log() -> Vec<RequestRecord> {
    log_cell().lock().slow_ring.iter().cloned().collect()
}

/// Per-kind aggregates, ordered by kind name. Aggregates cover every
/// request ever recorded, not just those still in the ring.
pub fn summary() -> Vec<RequestKindSummary> {
    log_cell().lock().summary.values().cloned().collect()
}

/// Drop all retained records and aggregates (sequence numbers keep
/// counting).
pub fn clear() {
    let mut log = log_cell().lock();
    log.ring.clear();
    log.slow_ring.clear();
    log.summary.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that mutate the shared request log.
    fn test_lock() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock()
    }

    fn sample(kind: &'static str, elapsed_ns: u64, status: &'static str) -> RequestRecord {
        RequestRecord {
            seq: 0,
            trace_id: Some(0xABCD),
            session: 7,
            tenant: "t".into(),
            kind,
            status,
            deadline_slack_ms: Some(12),
            elapsed_ns,
            slow: false,
            usage: ResourceUsage {
                rows_scanned: 10,
                execute_ns: elapsed_ns / 2,
                ..Default::default()
            },
        }
    }

    #[test]
    fn records_fold_into_ring_and_summary() {
        let _serial = test_lock();
        let _on = crate::enabled_flag_lock().read();
        clear();
        let before = log().len();
        record(sample("reqtest.Ping", 1_000, "ok"));
        record(sample("reqtest.Ping", 3_000, "ok"));
        record(sample("reqtest.Ping", 2_000, "error"));
        assert_eq!(log().len(), before + 3);
        let summary = summary()
            .into_iter()
            .find(|s| s.kind == "reqtest.Ping")
            .expect("kind aggregated");
        assert_eq!(summary.count, 3);
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.latency.count, 3);
        assert!((summary.latency.mean - 2_000.0).abs() < 1e-6);
        assert_eq!(summary.max_latency_ns, 3_000);
        assert_eq!(summary.totals.rows_scanned, 30);
        clear();
    }

    #[test]
    fn slow_requests_land_in_the_slow_ring() {
        let _serial = test_lock();
        let _on = crate::enabled_flag_lock().read();
        clear();
        let before = slow_request_threshold();
        set_slow_request_threshold(Duration::from_nanos(2_000));
        record(sample("reqtest.Slow", 1_000, "ok"));
        record(sample("reqtest.Slow", 5_000, "ok"));
        set_slow_request_threshold(before);
        let slow: Vec<_> = slow_request_log()
            .into_iter()
            .filter(|r| r.kind == "reqtest.Slow")
            .collect();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].elapsed_ns, 5_000);
        assert!(slow[0].slow);
        let fast = log()
            .into_iter()
            .find(|r| r.kind == "reqtest.Slow" && r.elapsed_ns == 1_000)
            .unwrap();
        assert!(!fast.slow);
        clear();
    }

    #[test]
    fn welford_merge_matches_direct_computation() {
        let xs = [1.0f64, 2.0, 4.0, 8.0, 16.0, 32.0];
        // Streaming fold.
        let streamed = xs
            .iter()
            .fold(Welford::default(), |acc, &x| acc.merge(Welford::of(x)));
        // Two-way split merged with Chan's combine.
        let left = xs[..3]
            .iter()
            .fold(Welford::default(), |acc, &x| acc.merge(Welford::of(x)));
        let right = xs[3..]
            .iter()
            .fold(Welford::default(), |acc, &x| acc.merge(Welford::of(x)));
        let merged = left.merge(right);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        for w in [streamed, merged] {
            assert_eq!(w.count, xs.len() as u64);
            assert!((w.mean - mean).abs() < 1e-9);
            assert!((w.stddev() - var.sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn ring_is_bounded() {
        let _serial = test_lock();
        let _on = crate::enabled_flag_lock().read();
        clear();
        let cap = log_cell().lock().capacity;
        for i in 0..cap + 10 {
            record(sample("reqtest.Bound", i as u64, "ok"));
        }
        assert_eq!(log().len(), cap);
        clear();
    }
}
