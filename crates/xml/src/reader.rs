//! Streaming pull parser.
//!
//! [`Reader`] walks a `&str` and yields [`Event`]s. It performs
//! well-formedness checks that matter for data integrity (balanced tags,
//! attribute syntax, entity validity) and skips constructs performance-tool
//! XML does not use (DOCTYPE internals are consumed but not interpreted).

use crate::error::{Error, Result};
use crate::escape::unescape_at;
use std::borrow::Cow;

/// A single attribute on a start or empty element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name (namespace prefixes are kept verbatim).
    pub name: String,
    /// Attribute value with entities resolved.
    pub value: String,
}

/// A parse event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// `<?xml version="1.0" ...?>`
    Declaration { attributes: Vec<Attribute> },
    /// `<name attr="v">`
    Start {
        name: String,
        attributes: Vec<Attribute>,
    },
    /// `</name>`
    End { name: String },
    /// `<name attr="v"/>` — reported as a single event.
    Empty {
        name: String,
        attributes: Vec<Attribute>,
    },
    /// Character data with entities resolved. Whitespace-only text between
    /// elements is reported too; callers that don't care can skip it.
    Text(String),
    /// `<![CDATA[...]]>` content, verbatim.
    CData(String),
    /// `<!-- ... -->` content, verbatim.
    Comment(String),
    /// `<?target data?>` other than the XML declaration.
    ProcessingInstruction { target: String, data: String },
    /// End of input. Returned exactly once; subsequent calls repeat it.
    Eof,
}

/// A pull parser over an in-memory document.
pub struct Reader<'a> {
    src: &'a str,
    pos: usize,
    /// Stack of currently open element names, for balance checking.
    stack: Vec<String>,
    seen_root: bool,
    done: bool,
}

impl<'a> Reader<'a> {
    /// Create a reader over `src`.
    pub fn new(src: &'a str) -> Self {
        Reader {
            src,
            pos: 0,
            stack: Vec::new(),
            seen_root: false,
            done: false,
        }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn syntax(&self, message: impl Into<String>) -> Error {
        Error::Syntax {
            message: message.into(),
            offset: self.pos,
        }
    }

    /// Pull the next event.
    pub fn next_event(&mut self) -> Result<Event> {
        if self.done {
            return Ok(Event::Eof);
        }
        if self.pos >= self.src.len() {
            if !self.stack.is_empty() {
                return Err(Error::UnexpectedEof {
                    context: "open element",
                });
            }
            self.done = true;
            return Ok(Event::Eof);
        }

        if self.rest().starts_with('<') {
            self.parse_markup()
        } else {
            self.parse_text()
        }
    }

    /// Pull events until the next non-text, non-comment event; collect text.
    ///
    /// Convenience for "give me the text content of this element" patterns.
    pub fn collect_text_until_end(&mut self) -> Result<String> {
        let mut out = String::new();
        let start_depth = self.stack.len();
        loop {
            match self.next_event()? {
                Event::Text(t) => out.push_str(&t),
                Event::CData(t) => out.push_str(&t),
                Event::Comment(_) | Event::ProcessingInstruction { .. } => {}
                Event::End { .. } => {
                    if self.stack.len() < start_depth {
                        return Ok(out);
                    }
                }
                Event::Start { .. } | Event::Empty { .. } => {
                    return Err(self.syntax("unexpected child element while reading text content"))
                }
                Event::Declaration { .. } => {
                    return Err(self.syntax("unexpected XML declaration inside element"))
                }
                Event::Eof => {
                    return Err(Error::UnexpectedEof {
                        context: "element text content",
                    })
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<Event> {
        let start = self.pos;
        let end = self
            .rest()
            .find('<')
            .map(|p| start + p)
            .unwrap_or(self.src.len());
        let raw = &self.src[start..end];
        self.pos = end;
        if self.stack.is_empty() && !raw.trim().is_empty() {
            return Err(Error::Syntax {
                message: "character data outside root element".into(),
                offset: start,
            });
        }
        let text = unescape_at(raw, start)?;
        Ok(Event::Text(match text {
            Cow::Borrowed(s) => s.to_string(),
            Cow::Owned(s) => s,
        }))
    }

    fn parse_markup(&mut self) -> Result<Event> {
        debug_assert!(self.rest().starts_with('<'));
        let r = self.rest();
        if let Some(stripped) = r.strip_prefix("<!--") {
            let end = stripped
                .find("-->")
                .ok_or(Error::UnexpectedEof { context: "comment" })?;
            let body = stripped[..end].to_string();
            self.bump(4 + end + 3);
            return Ok(Event::Comment(body));
        }
        if let Some(stripped) = r.strip_prefix("<![CDATA[") {
            let end = stripped.find("]]>").ok_or(Error::UnexpectedEof {
                context: "CDATA section",
            })?;
            if self.stack.is_empty() {
                return Err(self.syntax("CDATA outside root element"));
            }
            let body = stripped[..end].to_string();
            self.bump(9 + end + 3);
            return Ok(Event::CData(body));
        }
        if r.starts_with("<!DOCTYPE") || r.starts_with("<!doctype") {
            return self.skip_doctype();
        }
        if r.starts_with("<?") {
            return self.parse_pi();
        }
        if let Some(stripped) = r.strip_prefix("</") {
            let end = stripped
                .find('>')
                .ok_or(Error::UnexpectedEof { context: "end tag" })?;
            let name = stripped[..end].trim();
            if !is_name(name) {
                return Err(self.syntax(format!("invalid end tag name {name:?}")));
            }
            let offset = self.pos;
            self.bump(2 + end + 1);
            match self.stack.pop() {
                Some(open) if open == name => Ok(Event::End {
                    name: name.to_string(),
                }),
                Some(open) => Err(Error::MismatchedTag {
                    expected: open,
                    found: name.to_string(),
                    offset,
                }),
                None => Err(Error::Syntax {
                    message: format!("end tag </{name}> with no open element"),
                    offset,
                }),
            }
        } else {
            self.parse_start_tag()
        }
    }

    fn skip_doctype(&mut self) -> Result<Event> {
        // Consume "<!DOCTYPE ... >" honouring one level of [...] internal subset.
        let r = self.rest();
        let mut depth = 0usize;
        for (i, c) in r.char_indices() {
            match c {
                '[' => depth += 1,
                ']' => depth = depth.saturating_sub(1),
                '>' if depth == 0 => {
                    self.bump(i + 1);
                    return self.next_event();
                }
                _ => {}
            }
        }
        Err(Error::UnexpectedEof {
            context: "DOCTYPE declaration",
        })
    }

    fn parse_pi(&mut self) -> Result<Event> {
        let r = self.rest();
        let end = r.find("?>").ok_or(Error::UnexpectedEof {
            context: "processing instruction",
        })?;
        let body = &r[2..end];
        let consumed = end + 2;
        let (target, data) = match body.find(|c: char| c.is_ascii_whitespace()) {
            Some(sp) => (&body[..sp], body[sp..].trim_start()),
            None => (body, ""),
        };
        if target.eq_ignore_ascii_case("xml") {
            // Re-parse the declaration pseudo-attributes.
            let mut attrs = Vec::new();
            let mut cursor = data;
            let base = self.pos + 2 + (body.len() - data.len());
            while !cursor.trim().is_empty() {
                let consumed_before = data.len() - cursor.len();
                let (attr, rest) = parse_attribute(cursor, base + consumed_before)?;
                attrs.push(attr);
                cursor = rest;
            }
            self.bump(consumed);
            Ok(Event::Declaration { attributes: attrs })
        } else {
            let ev = Event::ProcessingInstruction {
                target: target.to_string(),
                data: data.to_string(),
            };
            self.bump(consumed);
            Ok(ev)
        }
    }

    fn parse_start_tag(&mut self) -> Result<Event> {
        let tag_start = self.pos;
        let r = self.rest();
        debug_assert!(r.starts_with('<'));
        // Find the closing '>' while respecting quoted attribute values.
        let mut in_quote: Option<char> = None;
        let mut gt = None;
        for (i, c) in r.char_indices() {
            match (in_quote, c) {
                (Some(q), _) if c == q => in_quote = None,
                (Some(_), _) => {}
                (None, '"') | (None, '\'') => in_quote = Some(c),
                (None, '>') => {
                    gt = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let gt = gt.ok_or(Error::UnexpectedEof {
            context: "start tag",
        })?;
        let mut inner = &r[1..gt];
        let self_closing = inner.ends_with('/');
        if self_closing {
            inner = &inner[..inner.len() - 1];
        }
        let name_end = inner
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(inner.len());
        let name = &inner[..name_end];
        if !is_name(name) {
            return Err(Error::Syntax {
                message: format!("invalid element name {name:?}"),
                offset: tag_start,
            });
        }
        if self.stack.is_empty() && self.seen_root {
            return Err(Error::Syntax {
                message: format!("second root element <{name}>"),
                offset: tag_start,
            });
        }
        let mut attrs = Vec::new();
        let mut cursor = inner[name_end..].trim_start();
        while !cursor.is_empty() {
            let consumed_before = inner.len() - cursor.len();
            let (attr, rest) = parse_attribute(cursor, tag_start + 1 + consumed_before)?;
            if attrs.iter().any(|a: &Attribute| a.name == attr.name) {
                return Err(Error::Syntax {
                    message: format!("duplicate attribute {:?} on <{name}>", attr.name),
                    offset: tag_start,
                });
            }
            attrs.push(attr);
            cursor = rest.trim_start();
        }
        self.bump(gt + 1);
        self.seen_root = true;
        if self_closing {
            Ok(Event::Empty {
                name: name.to_string(),
                attributes: attrs,
            })
        } else {
            self.stack.push(name.to_string());
            Ok(Event::Start {
                name: name.to_string(),
                attributes: attrs,
            })
        }
    }
}

/// Parse one `name="value"` pair from the front of `s`; return it and the rest.
fn parse_attribute(s: &str, offset: usize) -> Result<(Attribute, &str)> {
    let eq = s.find('=').ok_or(Error::Syntax {
        message: format!("expected '=' in attribute near {:?}", truncate(s, 20)),
        offset,
    })?;
    let name = s[..eq].trim();
    if !is_name(name) {
        return Err(Error::Syntax {
            message: format!("invalid attribute name {name:?}"),
            offset,
        });
    }
    let after = s[eq + 1..].trim_start();
    let quote = after.chars().next().ok_or(Error::UnexpectedEof {
        context: "attribute value",
    })?;
    if quote != '"' && quote != '\'' {
        return Err(Error::Syntax {
            message: format!("attribute value for {name:?} must be quoted"),
            offset,
        });
    }
    let body = &after[1..];
    let close = body.find(quote).ok_or(Error::UnexpectedEof {
        context: "attribute value",
    })?;
    let raw = &body[..close];
    let value = unescape_at(raw, offset)?.into_owned();
    let rest_idx = s.len() - body.len() + close + 1;
    Ok((
        Attribute {
            name: name.to_string(),
            value,
        },
        &s[rest_idx..],
    ))
}

/// Check a (possibly prefixed) XML name.
fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.'))
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        let mut r = Reader::new(src);
        let mut out = Vec::new();
        loop {
            let e = r.next_event().expect("parse");
            if e == Event::Eof {
                break;
            }
            out.push(e);
        }
        out
    }

    #[test]
    fn simple_document() {
        let evs = events(r#"<?xml version="1.0"?><a x="1"><b/>hi</a>"#);
        assert_eq!(
            evs,
            vec![
                Event::Declaration {
                    attributes: vec![Attribute {
                        name: "version".into(),
                        value: "1.0".into()
                    }]
                },
                Event::Start {
                    name: "a".into(),
                    attributes: vec![Attribute {
                        name: "x".into(),
                        value: "1".into()
                    }]
                },
                Event::Empty {
                    name: "b".into(),
                    attributes: vec![]
                },
                Event::Text("hi".into()),
                Event::End { name: "a".into() },
            ]
        );
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let evs = events(r#"<f n="a&lt;b">x &amp; y</f>"#);
        match &evs[0] {
            Event::Start { attributes, .. } => assert_eq!(attributes[0].value, "a<b"),
            other => panic!("{other:?}"),
        }
        assert_eq!(evs[1], Event::Text("x & y".into()));
    }

    #[test]
    fn cdata_not_unescaped() {
        let evs = events("<x><![CDATA[a < b & c]]></x>");
        assert_eq!(evs[1], Event::CData("a < b & c".into()));
    }

    #[test]
    fn comments_and_pis() {
        let evs = events("<x><!-- note --><?tool data here?></x>");
        assert_eq!(evs[1], Event::Comment(" note ".into()));
        assert_eq!(
            evs[2],
            Event::ProcessingInstruction {
                target: "tool".into(),
                data: "data here".into()
            }
        );
    }

    #[test]
    fn doctype_skipped() {
        let evs = events("<!DOCTYPE html [ <!ENTITY x \"y\"> ]><r/>");
        assert_eq!(
            evs,
            vec![Event::Empty {
                name: "r".into(),
                attributes: vec![]
            }]
        );
    }

    #[test]
    fn mismatched_tag_rejected() {
        let mut r = Reader::new("<a><b></a></b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert!(matches!(r.next_event(), Err(Error::MismatchedTag { .. })));
    }

    #[test]
    fn unclosed_element_rejected() {
        let mut r = Reader::new("<a><b></b>");
        r.next_event().unwrap();
        r.next_event().unwrap();
        r.next_event().unwrap();
        assert!(matches!(r.next_event(), Err(Error::UnexpectedEof { .. })));
    }

    #[test]
    fn second_root_rejected() {
        let mut r = Reader::new("<a/><b/>");
        r.next_event().unwrap();
        assert!(r.next_event().is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        let mut r = Reader::new("junk<a/>");
        assert!(r.next_event().is_err());
    }

    #[test]
    fn whitespace_outside_root_ok() {
        let evs = events("\n  <a/>\n");
        assert!(evs.iter().any(|e| matches!(e, Event::Empty { .. })));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let mut r = Reader::new(r#"<a x="1" x="2"/>"#);
        assert!(r.next_event().is_err());
    }

    #[test]
    fn unquoted_attribute_rejected() {
        let mut r = Reader::new("<a x=1/>");
        assert!(r.next_event().is_err());
    }

    #[test]
    fn single_quoted_attributes() {
        let evs = events("<a x='it is \"fine\"'/>");
        match &evs[0] {
            Event::Empty { attributes, .. } => {
                assert_eq!(attributes[0].value, "it is \"fine\"")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gt_inside_attribute_value() {
        let evs = events(r#"<a x="1 > 0"/>"#);
        match &evs[0] {
            Event::Empty { attributes, .. } => assert_eq!(attributes[0].value, "1 > 0"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn namespaced_names_pass_through() {
        let evs = events("<ns:a ns:x=\"v\"></ns:a>");
        match &evs[0] {
            Event::Start { name, attributes } => {
                assert_eq!(name, "ns:a");
                assert_eq!(attributes[0].name, "ns:x");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_is_sticky() {
        let mut r = Reader::new("<a/>");
        r.next_event().unwrap();
        assert_eq!(r.next_event().unwrap(), Event::Eof);
        assert_eq!(r.next_event().unwrap(), Event::Eof);
    }
}
