/root/repo/target/debug/deps/multi_format_archive-732c7a4b1e5af853.d: tests/multi_format_archive.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_format_archive-732c7a4b1e5af853.rmeta: tests/multi_format_archive.rs Cargo.toml

tests/multi_format_archive.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
