//! perfdmf-pool — a small deterministic worker pool shared by the query
//! engine and the importer.
//!
//! Work is split into index-addressed partitions. Partitions are *dispatched*
//! to workers in a seeded pseudo-random order (so tests exercise
//! order-independence), but results are always collected **by partition
//! index**, so the output of [`run`]/[`try_run`] is independent of thread
//! scheduling: same input + same partitioning → same output, on any machine.
//!
//! Thread count resolution, in priority order:
//! 1. a thread-local override installed with [`override_for_thread`]
//!    (used by tests to force the parallel or serial path),
//! 2. the `PERFDMF_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Callers gate parallelism on [`partitions`], which returns `None` when the
//! work is too small to be worth fanning out (below
//! [`min_partition_items`]) or when only one thread is available — the
//! caller then runs its existing serial path.

use crossbeam::channel;
use crossbeam::thread as cb_thread;
use perfdmf_telemetry as telemetry;
use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;
use std::time::Instant;

/// Work below this many items stays on the caller's serial path unless a
/// test override lowers the threshold. Chosen so unit-test-sized tables
/// never pay pool overhead (and keep bit-identical serial float results).
pub const DEFAULT_MIN_PARTITION_ITEMS: usize = 4096;

/// Default dispatch-order seed; override with `PERFDMF_POOL_SEED`.
const DEFAULT_SEED: u64 = 0x5eed_9e37_79b9_7f4a;

thread_local! {
    static OVERRIDE_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
    static OVERRIDE_MIN_ITEMS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        env_usize("PERFDMF_THREADS").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

fn dispatch_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("PERFDMF_POOL_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SEED)
    })
}

/// Effective worker count for the calling thread.
pub fn threads() -> usize {
    OVERRIDE_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Minimum number of items before [`partitions`] engages the pool.
pub fn min_partition_items() -> usize {
    OVERRIDE_MIN_ITEMS
        .with(|c| c.get())
        .unwrap_or(DEFAULT_MIN_PARTITION_ITEMS)
}

/// RAII guard restoring the previous thread-local pool configuration.
pub struct OverrideGuard {
    prev_threads: Option<usize>,
    prev_min_items: Option<usize>,
}

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        OVERRIDE_THREADS.with(|c| c.set(self.prev_threads));
        OVERRIDE_MIN_ITEMS.with(|c| c.set(self.prev_min_items));
    }
}

/// Force `threads` workers and a `min_items` engagement threshold for the
/// calling thread until the guard drops. Tests use this to pin the serial
/// path (`threads = 1`) or force the parallel path on any input size
/// (`threads = 4, min_items = 1`) without racing other tests in the same
/// process.
pub fn override_for_thread(threads: usize, min_items: usize) -> OverrideGuard {
    let guard = OverrideGuard {
        prev_threads: OVERRIDE_THREADS.with(|c| c.get()),
        prev_min_items: OVERRIDE_MIN_ITEMS.with(|c| c.get()),
    };
    OVERRIDE_THREADS.with(|c| c.set(Some(threads.max(1))));
    OVERRIDE_MIN_ITEMS.with(|c| c.set(Some(min_items.max(1))));
    guard
}

/// Split `0..n_items` into contiguous ranges, one per prospective worker.
/// Returns `None` when the caller should stay serial: a single worker, or
/// fewer than [`min_partition_items`] items. Ranges concatenated in order
/// cover `0..n_items` exactly, so order-preserving callers can concatenate
/// per-partition output and match their serial result order.
pub fn partitions(n_items: usize) -> Option<Vec<Range<usize>>> {
    let workers = threads();
    if workers <= 1 || n_items < min_partition_items() || n_items < 2 {
        telemetry::add("pool.serial_fallbacks", 1);
        return None;
    }
    let parts = workers.min(n_items);
    let chunk = n_items.div_ceil(parts);
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    while start < n_items {
        let end = (start + chunk).min(n_items);
        ranges.push(start..end);
        start = end;
    }
    Some(ranges)
}

/// Seeded Fisher–Yates permutation of `0..n` using xorshift64*; this is the
/// order partitions are handed to workers (results still land by index).
fn dispatch_order(n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = dispatch_seed() | 1;
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Run `f(partition_index)` for every index in `0..parts` across the pool
/// and return the results in partition-index order. Falls back to a plain
/// serial loop when one worker suffices.
pub fn run<R, F>(parts: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if parts == 0 {
        return Vec::new();
    }
    let workers = threads().min(parts);
    if workers <= 1 {
        return (0..parts).map(f).collect();
    }
    telemetry::add("pool.runs", 1);
    telemetry::add("pool.partitions_dispatched", parts as u64);
    telemetry::record("pool.workers_per_run", workers as u64);
    telemetry::meter::add_pool_tasks(parts as u64);

    let (task_tx, task_rx) = channel::unbounded::<usize>();
    for i in dispatch_order(parts) {
        let _ = task_tx.send(i);
    }
    drop(task_tx);
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();
    let timing = telemetry::enabled().then(Instant::now);
    // Capture the dispatching thread's trace context so worker-side spans
    // join the same trace as children of the span that called run().
    let trace_ctx = telemetry::trace::current_context();
    // Likewise the resource meter, so work the partitions do (chunk
    // cache lookups, row scans) bills to the request being served.
    let meter = telemetry::current_meter();
    let f = &f;

    let mut slots: Vec<Option<R>> = cb_thread::scope(|s| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let res_tx = res_tx.clone();
            let meter = meter.clone();
            s.spawn(move |_| {
                let _adopted = trace_ctx.map(telemetry::trace::adopt_context);
                let _metered = meter.map(telemetry::adopt_meter);
                let mut busy_ns: u64 = 0;
                while let Ok(i) = task_rx.recv() {
                    let _task_span = telemetry::span("pool.task");
                    let started = timing.is_some().then(Instant::now);
                    let r = f(i);
                    if let Some(started) = started {
                        busy_ns += started.elapsed().as_nanos() as u64;
                    }
                    if res_tx.send((i, r)).is_err() {
                        break;
                    }
                }
                if timing.is_some() {
                    telemetry::add("pool.busy_ns", busy_ns);
                }
            });
        }
        drop(res_tx);
        drop(task_rx);
        let mut slots: Vec<Option<R>> = (0..parts).map(|_| None).collect();
        while let Ok((i, r)) = res_rx.recv() {
            slots[i] = Some(r);
        }
        slots
    })
    .expect("pool worker panicked");

    if let Some(started) = timing {
        // Utilization ≈ summed busy time / (wall time × workers); the busy
        // counter is cumulative, so snapshot consumers diff it per run.
        let wall_ns = started.elapsed().as_nanos() as u64 * workers as u64;
        telemetry::record("pool.run_capacity_ns", wall_ns);
    }
    slots
        .iter_mut()
        .map(|s| s.take().expect("pool delivered every partition"))
        .collect()
}

/// Like [`run`] for fallible work. If any partition fails, the error from
/// the **lowest-index** failing partition is returned — the same error a
/// serial left-to-right loop would surface, keeping error reporting
/// deterministic.
pub fn try_run<R, E, F>(parts: usize, f: F) -> std::result::Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> std::result::Result<R, E> + Sync,
{
    let results = run(parts, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Map `f` over a slice with one partition per item (used for per-file
/// work such as importer fan-out), preserving item order and serial error
/// semantics.
pub fn try_map<T, R, E, F>(items: &[T], f: F) -> std::result::Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> std::result::Result<R, E> + Sync,
{
    try_run(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_range_exactly() {
        let _g = override_for_thread(4, 1);
        let ranges = partitions(10).expect("parallel engaged");
        let flat: Vec<usize> = ranges.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn partitions_decline_small_or_serial_work() {
        {
            let _g = override_for_thread(1, 1);
            assert!(partitions(1_000_000).is_none());
        }
        {
            let _g = override_for_thread(8, 100);
            assert!(partitions(99).is_none());
            assert!(partitions(100).is_some());
        }
    }

    #[test]
    fn run_returns_results_in_index_order() {
        let _g = override_for_thread(4, 1);
        let out = run(17, |i| i * 3);
        assert_eq!(out, (0..17).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_matches_serial_regardless_of_thread_count() {
        let serial: Vec<usize> = {
            let _g = override_for_thread(1, 1);
            run(40, |i| i + 7)
        };
        for threads in [2, 3, 8] {
            let _g = override_for_thread(threads, 1);
            assert_eq!(run(40, |i| i + 7), serial);
        }
    }

    #[test]
    fn try_run_reports_lowest_index_error() {
        let _g = override_for_thread(4, 1);
        let err = try_run(20, |i| {
            if i == 5 || i == 13 {
                Err(format!("boom {i}"))
            } else {
                Ok(i)
            }
        })
        .unwrap_err();
        assert_eq!(err, "boom 5");
    }

    #[test]
    fn try_map_preserves_item_order() {
        let _g = override_for_thread(4, 1);
        let items: Vec<String> = (0..12).map(|i| format!("item-{i}")).collect();
        let out: Vec<String> = try_map(&items, |s| Ok::<_, ()>(s.to_uppercase())).unwrap();
        assert_eq!(out[0], "ITEM-0");
        assert_eq!(out[11], "ITEM-11");
    }

    #[test]
    fn override_guard_restores_previous_config() {
        let before = threads();
        {
            let _g = override_for_thread(7, 3);
            assert_eq!(threads(), 7);
            assert_eq!(min_partition_items(), 3);
        }
        assert_eq!(threads(), before);
    }

    #[test]
    fn run_propagates_trace_context_to_workers() {
        let _g = override_for_thread(4, 1);
        telemetry::set_tracing(true);
        let ctx = {
            let _root = telemetry::span("pool.test.trace_root");
            let ctx = telemetry::trace::current_context().expect("context inside span");
            let out = run(8, |i| i * 2);
            assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
            ctx
        };
        telemetry::set_tracing(false);
        let recs = telemetry::trace::recorder().dump();
        let root = recs
            .iter()
            .find(|r| r.span == ctx.span.0)
            .expect("root span recorded");
        let tasks: Vec<_> = recs
            .iter()
            .filter(|r| r.trace == ctx.trace.0 && r.name == "pool.task")
            .collect();
        assert_eq!(tasks.len(), 8, "one pool.task span per partition");
        assert!(tasks.iter().all(|t| t.parent == ctx.span.0));
        assert!(
            tasks.iter().all(|t| t.thread != root.thread),
            "pool.task spans run on worker threads, not the dispatcher"
        );
    }

    #[test]
    fn dispatch_order_is_a_permutation() {
        let order = dispatch_order(50);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
