//! Per-request resource metering: one [`RequestMeter`] per network
//! request, threaded through execution the same way a trace context is.
//!
//! The server's session loop creates a meter when a request arrives and
//! *adopts* it on the session thread ([`adopt_meter`]); any code that
//! hops threads captures [`current_meter`] before the hop and adopts it
//! on the other side — exactly the [`crate::trace::current_context`] /
//! [`crate::trace::adopt_context`] pattern, so the meter follows the
//! request through the explorer's admission queue, its worker, and every
//! pool partition the worker fans out to.
//!
//! Instrumented subsystems call the free hook functions
//! ([`add_rows_scanned`], [`add_wal_bytes`], …). Each hook is one
//! thread-local read when no meter is adopted — cheap enough to leave in
//! hot paths unconditionally — and one relaxed `fetch_add` on the shared
//! cells when one is. The cells are atomics because pool workers on
//! several threads charge the same request concurrently.
//!
//! When the request completes, [`RequestMeter::snapshot`] yields a
//! [`ResourceUsage`] — a plain `Copy` struct that travels in the wire
//! `Reply` (so clients see server-side cost) and into the request ring
//! behind the `perfdmf_requests` system table ([`crate::requests`]).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Snapshot of the resources one request consumed server-side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Base-table rows materialized during execution.
    pub rows_scanned: u64,
    /// Column-chunk cache hits.
    pub chunk_hits: u64,
    /// Column-chunk cache misses (chunks built).
    pub chunk_misses: u64,
    /// Worker-pool partition tasks dispatched.
    pub pool_tasks: u64,
    /// Bytes appended to the WAL on the request's behalf.
    pub wal_bytes: u64,
    /// Nanoseconds spent waiting in the admission queue.
    pub queue_wait_ns: u64,
    /// Nanoseconds spent executing on a worker.
    pub execute_ns: u64,
}

impl ResourceUsage {
    /// True when every cell is zero (nothing was metered).
    pub fn is_zero(&self) -> bool {
        *self == ResourceUsage::default()
    }

    /// Element-wise saturating sum — used by per-kind aggregates.
    pub fn saturating_add(&self, other: &ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            rows_scanned: self.rows_scanned.saturating_add(other.rows_scanned),
            chunk_hits: self.chunk_hits.saturating_add(other.chunk_hits),
            chunk_misses: self.chunk_misses.saturating_add(other.chunk_misses),
            pool_tasks: self.pool_tasks.saturating_add(other.pool_tasks),
            wal_bytes: self.wal_bytes.saturating_add(other.wal_bytes),
            queue_wait_ns: self.queue_wait_ns.saturating_add(other.queue_wait_ns),
            execute_ns: self.execute_ns.saturating_add(other.execute_ns),
        }
    }
}

#[derive(Default)]
struct Cells {
    rows_scanned: AtomicU64,
    chunk_hits: AtomicU64,
    chunk_misses: AtomicU64,
    pool_tasks: AtomicU64,
    wal_bytes: AtomicU64,
    queue_wait_ns: AtomicU64,
    execute_ns: AtomicU64,
}

/// Shared accounting handle for one request. Clones share the cells, so
/// the handle can be captured by value across thread hops.
#[derive(Clone, Default)]
pub struct RequestMeter {
    cells: Arc<Cells>,
}

impl std::fmt::Debug for RequestMeter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestMeter")
            .field("usage", &self.snapshot())
            .finish()
    }
}

impl RequestMeter {
    /// A fresh meter with every cell at zero.
    pub fn new() -> RequestMeter {
        RequestMeter::default()
    }

    /// Copy the current cell values out as a [`ResourceUsage`].
    pub fn snapshot(&self) -> ResourceUsage {
        let c = &self.cells;
        ResourceUsage {
            rows_scanned: c.rows_scanned.load(Ordering::Relaxed),
            chunk_hits: c.chunk_hits.load(Ordering::Relaxed),
            chunk_misses: c.chunk_misses.load(Ordering::Relaxed),
            pool_tasks: c.pool_tasks.load(Ordering::Relaxed),
            wal_bytes: c.wal_bytes.load(Ordering::Relaxed),
            queue_wait_ns: c.queue_wait_ns.load(Ordering::Relaxed),
            execute_ns: c.execute_ns.load(Ordering::Relaxed),
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<RequestMeter>> = const { RefCell::new(None) };
}

/// The meter adopted on this thread, if any. Capture it before handing
/// work to another thread, then [`adopt_meter`] it there.
pub fn current_meter() -> Option<RequestMeter> {
    CURRENT.with(|m| m.borrow().clone())
}

/// Restores the previously adopted meter when dropped.
pub struct MeterGuard {
    prev: Option<RequestMeter>,
}

/// Adopt `meter` as this thread's active request meter: until the guard
/// drops, every hook call on this thread charges it.
pub fn adopt_meter(meter: RequestMeter) -> MeterGuard {
    let prev = CURRENT.with(|m| m.borrow_mut().replace(meter));
    MeterGuard { prev }
}

impl Drop for MeterGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|m| *m.borrow_mut() = prev);
    }
}

#[inline]
fn charge(f: impl FnOnce(&Cells)) {
    CURRENT.with(|m| {
        if let Some(meter) = m.borrow().as_ref() {
            f(&meter.cells);
        }
    });
}

/// Charge `n` scanned base-table rows to the active meter, if any.
#[inline]
pub fn add_rows_scanned(n: u64) {
    charge(|c| {
        c.rows_scanned.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge one column-chunk cache hit.
#[inline]
pub fn add_chunk_hit() {
    charge(|c| {
        c.chunk_hits.fetch_add(1, Ordering::Relaxed);
    });
}

/// Charge one column-chunk cache miss.
#[inline]
pub fn add_chunk_miss() {
    charge(|c| {
        c.chunk_misses.fetch_add(1, Ordering::Relaxed);
    });
}

/// Charge `n` pool partition tasks.
#[inline]
pub fn add_pool_tasks(n: u64) {
    charge(|c| {
        c.pool_tasks.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge `n` bytes appended to the WAL.
#[inline]
pub fn add_wal_bytes(n: u64) {
    charge(|c| {
        c.wal_bytes.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge `n` nanoseconds of admission-queue wait.
#[inline]
pub fn add_queue_wait_ns(n: u64) {
    charge(|c| {
        c.queue_wait_ns.fetch_add(n, Ordering::Relaxed);
    });
}

/// Charge `n` nanoseconds of worker execution.
#[inline]
pub fn add_execute_ns(n: u64) {
    charge(|c| {
        c.execute_ns.fetch_add(n, Ordering::Relaxed);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_without_an_adopted_meter() {
        assert!(current_meter().is_none());
        add_rows_scanned(10);
        add_wal_bytes(10);
        assert!(current_meter().is_none());
    }

    #[test]
    fn adopted_meter_collects_and_guard_restores() {
        let meter = RequestMeter::new();
        {
            let _g = adopt_meter(meter.clone());
            add_rows_scanned(3);
            add_chunk_hit();
            add_chunk_miss();
            add_pool_tasks(4);
            add_wal_bytes(128);
            add_queue_wait_ns(5);
            add_execute_ns(6);
            {
                // Nested adoption shadows, then restores.
                let inner = RequestMeter::new();
                let _g2 = adopt_meter(inner.clone());
                add_rows_scanned(100);
                assert_eq!(inner.snapshot().rows_scanned, 100);
            }
            add_rows_scanned(2);
        }
        add_rows_scanned(50); // after the guard: charged to nobody
        let usage = meter.snapshot();
        assert_eq!(
            usage,
            ResourceUsage {
                rows_scanned: 5,
                chunk_hits: 1,
                chunk_misses: 1,
                pool_tasks: 4,
                wal_bytes: 128,
                queue_wait_ns: 5,
                execute_ns: 6,
            }
        );
        assert!(!usage.is_zero());
        assert!(ResourceUsage::default().is_zero());
    }

    #[test]
    fn clones_share_cells_across_threads() {
        let meter = RequestMeter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = meter.clone();
                s.spawn(move || {
                    let _g = adopt_meter(m);
                    for _ in 0..100 {
                        add_pool_tasks(1);
                    }
                });
            }
        });
        assert_eq!(meter.snapshot().pool_tasks, 400);
    }

    #[test]
    fn saturating_add_merges_elementwise() {
        let a = ResourceUsage {
            rows_scanned: 1,
            wal_bytes: u64::MAX,
            ..Default::default()
        };
        let b = ResourceUsage {
            rows_scanned: 2,
            wal_bytes: 10,
            ..Default::default()
        };
        let sum = a.saturating_add(&b);
        assert_eq!(sum.rows_scanned, 3);
        assert_eq!(sum.wal_bytes, u64::MAX);
    }
}
