/root/repo/target/release/deps/e8_telemetry_overhead-859810b58351a802.d: crates/bench/benches/e8_telemetry_overhead.rs

/root/repo/target/release/deps/e8_telemetry_overhead-859810b58351a802: crates/bench/benches/e8_telemetry_overhead.rs

crates/bench/benches/e8_telemetry_overhead.rs:
