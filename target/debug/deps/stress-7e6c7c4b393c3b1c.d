/root/repo/target/debug/deps/stress-7e6c7c4b393c3b1c.d: crates/db/tests/stress.rs

/root/repo/target/debug/deps/stress-7e6c7c4b393c3b1c: crates/db/tests/stress.rs

crates/db/tests/stress.rs:
