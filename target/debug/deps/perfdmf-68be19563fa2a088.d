/root/repo/target/debug/deps/perfdmf-68be19563fa2a088.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf-68be19563fa2a088.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
