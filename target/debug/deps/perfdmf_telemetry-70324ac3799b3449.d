/root/repo/target/debug/deps/perfdmf_telemetry-70324ac3799b3449.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/debug/deps/perfdmf_telemetry-70324ac3799b3449: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
