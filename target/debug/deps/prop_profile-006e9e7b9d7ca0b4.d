/root/repo/target/debug/deps/prop_profile-006e9e7b9d7ca0b4.d: crates/profile/tests/prop_profile.rs Cargo.toml

/root/repo/target/debug/deps/libprop_profile-006e9e7b9d7ca0b4.rmeta: crates/profile/tests/prop_profile.rs Cargo.toml

crates/profile/tests/prop_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
