//! Group-commit bulk-insert path: batching semantics, atomicity, and the
//! Durability::Fsync knob (verified through fault injection).

use perfdmf_db::{Connection, Durability, FaultKind, FaultPlan, FaultVfs, Value};
use std::sync::Arc;

fn setup(conn: &Connection) {
    conn.execute(
        "CREATE TABLE t (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            a INTEGER NOT NULL,
            b TEXT DEFAULT 'dflt'
        )",
        &[],
    )
    .unwrap();
}

fn int_rows(vals: &[i64]) -> Vec<Vec<Value>> {
    vals.iter().map(|&a| vec![Value::Int(a)]).collect()
}

#[test]
fn bulk_insert_assigns_auto_ids_and_defaults() {
    let conn = Connection::open_in_memory();
    setup(&conn);
    let (n, last) = conn
        .bulk_insert("t", &["a"], int_rows(&[10, 20, 30]))
        .unwrap();
    assert_eq!(n, 3);
    assert_eq!(last, Some(3));
    let rs = conn
        .query("SELECT id, a, b FROM t ORDER BY id", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    assert_eq!(
        rs.rows[0],
        vec![Value::Int(1), Value::Int(10), Value::Text("dflt".into())]
    );
    assert_eq!(
        rs.rows[2],
        vec![Value::Int(3), Value::Int(30), Value::Text("dflt".into())]
    );
}

#[test]
fn bulk_insert_full_schema_order_when_columns_empty() {
    let conn = Connection::open_in_memory();
    setup(&conn);
    let rows = vec![vec![Value::Null, Value::Int(7), Value::Text("x".into())]];
    let (n, last) = conn.bulk_insert("t", &[], rows).unwrap();
    assert_eq!((n, last), (1, Some(1)));
}

#[test]
fn bulk_insert_rolls_back_whole_batch_on_bad_row() {
    let conn = Connection::open_in_memory();
    setup(&conn);
    conn.bulk_insert("t", &["a"], int_rows(&[1])).unwrap();
    // Second row violates NOT NULL: the whole batch must vanish.
    let err = conn.bulk_insert("t", &["a"], vec![vec![Value::Int(2)], vec![Value::Null]]);
    assert!(err.is_err());
    assert_eq!(conn.row_count("t").unwrap(), 1);
}

#[test]
fn bulk_insert_arity_and_unknown_column_errors() {
    let conn = Connection::open_in_memory();
    setup(&conn);
    assert!(conn
        .bulk_insert("t", &["a"], vec![vec![Value::Int(1), Value::Int(2)]])
        .is_err());
    assert!(conn.bulk_insert("t", &["nope"], int_rows(&[1])).is_err());
    assert_eq!(conn.row_count("t").unwrap(), 0);
}

#[test]
fn bulk_insert_inside_transaction_keeps_txn_open_on_row_failure() {
    let conn = Connection::open_in_memory();
    setup(&conn);
    let res: perfdmf_db::Result<()> = conn.transaction(|tx| {
        tx.bulk_insert("t", &["a"], int_rows(&[1, 2])).unwrap();
        // Failing statement rolls back only itself...
        assert!(tx
            .bulk_insert("t", &["a"], vec![vec![Value::Null]])
            .is_err());
        // ...the earlier rows are still visible inside the transaction.
        let rs = tx.query("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        Ok(())
    });
    res.unwrap();
    assert_eq!(conn.row_count("t").unwrap(), 2);
}

#[test]
fn bulk_batch_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("perfdmf_bulk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let conn = Connection::open(&dir).unwrap();
        setup(&conn);
        conn.set_durability(Durability::Fsync);
        conn.bulk_insert("t", &["a"], int_rows(&(0..100).collect::<Vec<_>>()))
            .unwrap();
    }
    {
        let conn = Connection::open(&dir).unwrap();
        assert_eq!(conn.row_count("t").unwrap(), 100);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsync_durability_surfaces_fsync_faults_as_failed_commits() {
    let dir = std::env::temp_dir().join(format!("perfdmf_bulk_fsync_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let vfs = FaultVfs::on_disk(FaultPlan::default());
    let conn = Connection::open_with_vfs(&dir, Arc::new(vfs.clone())).unwrap();
    setup(&conn);
    conn.set_durability(Durability::Fsync);
    conn.bulk_insert("t", &["a"], int_rows(&[1, 2, 3])).unwrap();

    // A Fsync-mode commit batch is write, flush, sync (ops 0, 1, 2 after a
    // reset). Failing the sync must fail the commit and roll back memory.
    vfs.reset(FaultPlan::fail_at(2, FaultKind::FsyncError));
    let err = conn.bulk_insert("t", &["a"], int_rows(&[4, 5]));
    assert!(err.is_err(), "fsync failure must fail the commit");
    assert_eq!(conn.row_count("t").unwrap(), 3);

    // Buffered mode never fsyncs: the same schedule targets an op that is
    // no longer issued, so the commit goes through.
    vfs.reset(FaultPlan::fail_at(2, FaultKind::FsyncError));
    conn.set_durability(Durability::Buffered);
    conn.bulk_insert("t", &["a"], int_rows(&[6])).unwrap();
    assert_eq!(conn.row_count("t").unwrap(), 4);
    drop(conn);
    let _ = std::fs::remove_dir_all(&dir);
}
