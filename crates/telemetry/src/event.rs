//! Structured events: typed key/value records fanned out to sinks.
//!
//! The slow-query log rides on this: the db layer emits a `slow_query`
//! event with the SQL, latency, and row counts; whatever sink is
//! installed decides where it goes. The bundled [`RingBufferSink`] keeps
//! the last N events in memory with text and JSON export.

use std::collections::VecDeque;
use std::fmt;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::{Mutex, RwLock};
use std::sync::{Arc, OnceLock};

/// Event importance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Debug,
    Info,
    Warn,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warn => "WARN",
        }
    }
}

/// A single typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Wall-clock microseconds since the Unix epoch.
    pub timestamp_micros: u64,
    pub severity: Severity,
    /// Machine-matchable kind, e.g. `"slow_query"`.
    pub kind: &'static str,
    /// Span path active on the emitting thread, `""` outside any span.
    pub span_path: String,
    /// Active trace id on the emitting thread, 0 when tracing is off or
    /// no trace is active — lets log lines be joined to their trace.
    pub trace_id: u64,
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Build an event stamped with now, the current span path, and the
    /// active trace id (if causal tracing is on).
    pub fn new(severity: Severity, kind: &'static str) -> Self {
        let timestamp_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        Event {
            timestamp_micros,
            severity,
            kind,
            span_path: crate::span::current_path(),
            trace_id: crate::trace::current_trace_id().map(|t| t.0).unwrap_or(0),
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder-style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Value of the first field named `key`.
    pub fn get(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// One-line human-readable rendering.
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "[{}us] {} {}",
            self.timestamp_micros,
            self.severity.as_str(),
            self.kind
        );
        if !self.span_path.is_empty() {
            out.push_str(" @");
            out.push_str(&self.span_path);
        }
        if self.trace_id != 0 {
            out.push_str(&format!(" trace={:016x}", self.trace_id));
        }
        for (k, v) in &self.fields {
            match v {
                FieldValue::Str(s) => {
                    out.push_str(&format!(" {k}={s:?}"));
                }
                other => out.push_str(&format!(" {k}={other}")),
            }
        }
        out
    }

    /// JSON object rendering (hand-rolled; no serde in this build).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"ts_us\":{},\"severity\":\"{}\",\"kind\":\"{}\",\"span\":\"{}\"",
            self.timestamp_micros,
            self.severity.as_str(),
            json_escape(self.kind),
            json_escape(&self.span_path),
        );
        if self.trace_id != 0 {
            out.push_str(&format!(",\"trace\":\"{:016x}\"", self.trace_id));
        }
        for (k, v) in &self.fields {
            out.push_str(",\"");
            out.push_str(&json_escape(k));
            out.push_str("\":");
            match v {
                FieldValue::U64(n) => out.push_str(&n.to_string()),
                FieldValue::I64(n) => out.push_str(&n.to_string()),
                FieldValue::F64(n) if n.is_finite() => out.push_str(&n.to_string()),
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Str(s) => {
                    out.push('"');
                    out.push_str(&json_escape(s));
                    out.push('"');
                }
            }
        }
        out.push('}');
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Receives emitted events. Implementations must tolerate concurrent
/// emitters.
pub trait EventSink: Send + Sync {
    fn accept(&self, event: &Event);
}

/// Keeps the most recent `capacity` events in memory.
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingBufferSink {
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Remove and return all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All buffered events as text, one per line.
    pub fn export_text(&self) -> String {
        self.buf
            .lock()
            .iter()
            .map(Event::to_text)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// All buffered events as a JSON array.
    pub fn export_json(&self) -> String {
        let body = self
            .buf
            .lock()
            .iter()
            .map(Event::to_json)
            .collect::<Vec<_>>()
            .join(",");
        format!("[{body}]")
    }
}

impl EventSink for RingBufferSink {
    fn accept(&self, event: &Event) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

fn sinks() -> &'static RwLock<Vec<Arc<dyn EventSink>>> {
    static SINKS: OnceLock<RwLock<Vec<Arc<dyn EventSink>>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Register a sink; every subsequent [`emit`] reaches it.
pub fn install_sink(sink: Arc<dyn EventSink>) {
    sinks().write().push(sink);
}

/// Remove all sinks (used by [`crate::reset`]).
pub fn clear_sinks() {
    sinks().write().clear();
}

/// Deliver `event` to every installed sink. No-op while telemetry is
/// disabled or when no sink is installed.
pub fn emit(event: Event) {
    if !crate::enabled() {
        return;
    }
    for sink in sinks().read().iter() {
        sink.accept(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_caps_and_drains() {
        let sink = RingBufferSink::new(3);
        for i in 0..5u64 {
            sink.accept(&Event::new(Severity::Info, "evt.test").field("i", i));
        }
        let events = sink.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("i"), Some(&FieldValue::U64(2)));
        assert_eq!(sink.drain().len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn text_and_json_exports() {
        let e = Event {
            timestamp_micros: 42,
            severity: Severity::Warn,
            kind: "slow_query",
            span_path: "db.execute".to_string(),
            trace_id: 0,
            fields: vec![
                ("sql", FieldValue::Str("SELECT \"x\"\n".to_string())),
                ("elapsed_ns", FieldValue::U64(1500)),
                ("selectivity", FieldValue::F64(0.5)),
            ],
        };
        let text = e.to_text();
        assert!(text.contains("WARN slow_query @db.execute"), "{text}");
        assert!(text.contains("elapsed_ns=1500"), "{text}");
        assert!(
            !text.contains("trace="),
            "no trace id when untraced: {text}"
        );
        let json = e.to_json();
        assert_eq!(
            json,
            "{\"ts_us\":42,\"severity\":\"WARN\",\"kind\":\"slow_query\",\
             \"span\":\"db.execute\",\"sql\":\"SELECT \\\"x\\\"\\n\",\
             \"elapsed_ns\":1500,\"selectivity\":0.5}"
        );
    }

    #[test]
    fn trace_id_rendered_when_present() {
        let e = Event {
            timestamp_micros: 42,
            severity: Severity::Warn,
            kind: "slow_query",
            span_path: String::new(),
            trace_id: 0xdead_beef,
            fields: vec![],
        };
        assert!(e.to_text().contains("trace=00000000deadbeef"));
        assert!(e.to_json().contains("\"trace\":\"00000000deadbeef\""));
    }

    /// Minimal JSON well-formedness scan: string-aware brace/bracket
    /// balance plus a check that no raw control characters survive.
    fn assert_wellformed_json(s: &str) {
        let mut depth = 0i32;
        let mut in_str = false;
        let mut escaped = false;
        for c in s.chars() {
            if in_str {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_str = false;
                } else {
                    assert!((c as u32) >= 0x20, "raw control char in string: {s}");
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
                assert!(depth >= 0, "unbalanced: {s}");
            }
        }
        assert_eq!(depth, 0, "unbalanced: {s}");
        assert!(!in_str, "unterminated string: {s}");
    }

    #[test]
    fn json_escapes_quotes_newlines_and_controls_in_fields() {
        let e = Event {
            timestamp_micros: 1,
            severity: Severity::Warn,
            kind: "slow_query",
            span_path: "db.exec".to_string(),
            trace_id: 7,
            fields: vec![(
                "sql",
                FieldValue::Str("SELECT \"a\",\n\t'b\\c'\u{1} FROM t\r".to_string()),
            )],
        };
        let json = e.to_json();
        assert_wellformed_json(&json);
        assert!(json.contains("\\\"a\\\""), "{json}");
        assert!(json.contains("\\n\\t"), "{json}");
        assert!(json.contains("\\\\c"), "{json}");
        assert!(json.contains("\\u0001"), "{json}");
        assert!(json.contains("\\r"), "{json}");
        assert!(!json.contains('\n'), "raw newline leaked: {json}");
    }

    #[test]
    fn ring_buffer_wraparound_preserves_emission_order() {
        let sink = RingBufferSink::new(4);
        for i in 0..11u64 {
            sink.accept(&Event {
                timestamp_micros: i,
                severity: Severity::Info,
                kind: "evt.wrap",
                span_path: String::new(),
                trace_id: 0,
                fields: vec![("i", FieldValue::U64(i))],
            });
        }
        // After wrapping nearly three times, the newest 4 remain, oldest
        // first, in exactly the order they were emitted.
        let order: Vec<u64> = sink
            .events()
            .iter()
            .map(|e| match e.get("i") {
                Some(FieldValue::U64(v)) => *v,
                other => panic!("unexpected field {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![7, 8, 9, 10]);
        let json = sink.export_json();
        assert_wellformed_json(&json);
    }

    #[test]
    fn emit_reaches_installed_sinks() {
        let _on = crate::enabled_flag_lock().read();
        let sink = Arc::new(RingBufferSink::new(8));
        install_sink(sink.clone());
        emit(Event::new(Severity::Debug, "evt.fanout"));
        assert!(sink.events().iter().any(|e| e.kind == "evt.fanout"));
    }
}
