//! Golden EXPLAIN plan corpus.
//!
//! Every query below has its full `EXPLAIN` output snapshotted under
//! `tests/fixtures/plans/`. The test fails on any drift — a changed
//! access decision, a rule firing differently, a reworded trail line —
//! so plan regressions are caught even when results stay correct.
//!
//! Regenerate after an intentional planner change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p perfdmf-db --test plan_golden
//! ```
//!
//! and review the fixture diff like any other code change.
//!
//! Determinism: the fixture database is fixed, EXPLAIN (not ANALYZE)
//! prints no timings, and both the optimizer configuration and the
//! columnar mode are pinned per query — environment toggles
//! (`PERFDMF_OPTIMIZER`, `PERFDMF_COLUMNAR`) cannot reach this test.

use std::fmt::Write as _;
use std::path::PathBuf;

use perfdmf_db::{
    override_columnar, override_optimizer, ColumnarMode, Connection, OptimizerConfig, Value,
};

/// (fixture name, optimizer config, columnar mode, SQL)
type Case = (
    &'static str,
    fn() -> OptimizerConfig,
    ColumnarMode,
    &'static str,
);

fn all_on() -> OptimizerConfig {
    OptimizerConfig::all_on()
}

fn off() -> OptimizerConfig {
    OptimizerConfig::disabled()
}

const CASES: &[Case] = &[
    // --- scans ---
    (
        "seq_scan",
        all_on,
        ColumnarMode::Auto,
        "SELECT name FROM trial",
    ),
    (
        "seq_scan_where",
        all_on,
        ColumnarMode::Auto,
        "SELECT name FROM trial WHERE time < 40.0",
    ),
    (
        "index_scan_eq",
        all_on,
        ColumnarMode::Auto,
        "SELECT name FROM trial WHERE node_count = 4",
    ),
    (
        "index_scan_range",
        all_on,
        ColumnarMode::Auto,
        "SELECT name FROM trial WHERE node_count BETWEEN 2 AND 8",
    ),
    (
        "index_scan_in_list",
        all_on,
        ColumnarMode::Auto,
        "SELECT name FROM trial WHERE node_count IN (1, 16)",
    ),
    (
        "virtual_scan",
        all_on,
        ColumnarMode::Auto,
        "SELECT name, value FROM perfdmf_counters WHERE name = 'db.plan.builds'",
    ),
    ("constant_row", all_on, ColumnarMode::Auto, "SELECT 1, 'x'"),
    // --- columnar access ---
    (
        "columnar_auto_big_table",
        all_on,
        ColumnarMode::Auto,
        "SELECT COUNT(*), SUM(v), AVG(v) FROM metric WHERE v >= 0",
    ),
    (
        "columnar_declined_small_table",
        all_on,
        ColumnarMode::Auto,
        "SELECT COUNT(*), AVG(time) FROM trial",
    ),
    (
        "columnar_declined_selective_index",
        all_on,
        ColumnarMode::Auto,
        "SELECT COUNT(*) FROM metric WHERE g = 7",
    ),
    (
        "columnar_forced",
        all_on,
        ColumnarMode::Force,
        "SELECT COUNT(*), AVG(time) FROM trial WHERE node_count >= 2",
    ),
    // --- joins ---
    (
        "hash_join_pushdown",
        all_on,
        ColumnarMode::Auto,
        "SELECT t.name, e.name FROM trial t JOIN experiment e ON t.experiment = e.id \
         WHERE t.node_count >= 2 AND e.application = 1",
    ),
    (
        "left_join_is_null",
        all_on,
        ColumnarMode::Auto,
        "SELECT e.name FROM experiment e LEFT JOIN trial t ON e.id = t.experiment \
         WHERE t.id IS NULL",
    ),
    (
        "nested_loop_join",
        all_on,
        ColumnarMode::Auto,
        "SELECT t.name FROM trial t JOIN experiment e ON t.experiment = e.id AND e.application = 1",
    ),
    (
        "cross_join",
        all_on,
        ColumnarMode::Auto,
        "SELECT a.name, e.name FROM application a CROSS JOIN experiment e",
    ),
    (
        "join_reorder_aggregate",
        all_on,
        ColumnarMode::Auto,
        "SELECT COUNT(*), SUM(t.time) FROM trial t JOIN experiment e ON t.experiment = e.id \
         JOIN application a ON t.experiment = a.id",
    ),
    // --- tail operators and rewrites ---
    (
        "limit_pushdown",
        all_on,
        ColumnarMode::Auto,
        "SELECT name FROM trial WHERE node_count >= 2 LIMIT 2 OFFSET 1",
    ),
    (
        "sort_elision",
        all_on,
        ColumnarMode::Auto,
        "SELECT name, node_count FROM trial ORDER BY node_count LIMIT 3",
    ),
    (
        "sort_blocks_limit_pushdown",
        all_on,
        ColumnarMode::Auto,
        "SELECT name FROM trial ORDER BY name LIMIT 2",
    ),
    (
        "group_by_having_order",
        all_on,
        ColumnarMode::Auto,
        "SELECT experiment, COUNT(*), AVG(time) FROM trial GROUP BY experiment \
         HAVING COUNT(*) > 1 ORDER BY experiment DESC",
    ),
    (
        "distinct_projection",
        all_on,
        ColumnarMode::Auto,
        "SELECT DISTINCT node_count FROM trial ORDER BY node_count",
    ),
    // --- optimizer off: same queries, naive plans ---
    (
        "off_hash_join_pushdown",
        off,
        ColumnarMode::Auto,
        "SELECT t.name, e.name FROM trial t JOIN experiment e ON t.experiment = e.id \
         WHERE t.node_count >= 2 AND e.application = 1",
    ),
    (
        "off_limit_pushdown",
        off,
        ColumnarMode::Auto,
        "SELECT name FROM trial WHERE node_count >= 2 LIMIT 2 OFFSET 1",
    ),
    (
        "off_sort_elision",
        off,
        ColumnarMode::Auto,
        "SELECT name, node_count FROM trial ORDER BY node_count LIMIT 3",
    ),
];

fn fixture_db() -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE application (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            name TEXT NOT NULL,
            version TEXT)",
        &[],
    )
    .unwrap();
    conn.execute(
        "CREATE TABLE experiment (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            application INTEGER NOT NULL,
            name TEXT NOT NULL)",
        &[],
    )
    .unwrap();
    conn.execute(
        "CREATE TABLE trial (
            id INTEGER PRIMARY KEY AUTO_INCREMENT,
            experiment INTEGER NOT NULL,
            name TEXT NOT NULL,
            node_count INTEGER,
            time DOUBLE)",
        &[],
    )
    .unwrap();
    conn.execute("CREATE INDEX ix_nodes ON trial (node_count)", &[])
        .unwrap();
    conn.execute(
        "INSERT INTO application (name, version) VALUES ('evh1', '1.0'), ('sppm', '2.1')",
        &[],
    )
    .unwrap();
    conn.execute(
        "INSERT INTO experiment (application, name) VALUES
            (1, 'scaling'), (1, 'tuning'), (2, 'baseline'), (2, 'idle')",
        &[],
    )
    .unwrap();
    conn.execute(
        "INSERT INTO trial (experiment, name, node_count, time) VALUES
            (1, 'p1',   1, 100.0),
            (1, 'p2',   2,  52.0),
            (1, 'p4',   4,  28.0),
            (1, 'p8',   8,  16.0),
            (2, 'base', 4,  30.0),
            (3, 'c1',   16, NULL)",
        &[],
    )
    .unwrap();
    // A chunk-sized table so the auto columnar decision has statistics
    // worth citing, with a secondary index for the selectivity branch.
    conn.execute("CREATE TABLE metric (v INTEGER, g INTEGER)", &[])
        .unwrap();
    conn.execute("CREATE INDEX ix_metric_g ON metric (g)", &[])
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..5000)
        .map(|i| vec![Value::Int(i % 97 - 48), Value::Int(i % 100)])
        .collect();
    conn.bulk_insert("metric", &["v", "g"], rows).unwrap();
    conn
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("plans")
}

fn render(conn: &Connection, case: &Case) -> String {
    let (_, cfg, columnar, sql) = case;
    let _cfg = override_optimizer(cfg());
    let _col = override_columnar(*columnar);
    let rs = conn
        .query(&format!("EXPLAIN {sql}"), &[])
        .unwrap_or_else(|e| panic!("EXPLAIN failed for {sql}: {e}"));
    let mut out = String::new();
    writeln!(out, "-- EXPLAIN {sql}").unwrap();
    for row in &rs.rows {
        writeln!(out, "{}", row[0].as_text().expect("plan line is text")).unwrap();
    }
    out
}

#[test]
fn explain_plans_match_goldens() {
    let conn = fixture_db();
    let dir = fixtures_dir();
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut drift = Vec::new();
    for case in CASES {
        let got = render(&conn, case);
        let path = dir.join(format!("{}.txt", case.0));
        if update {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => drift.push(format!(
                "plan drift for {:?}:\n--- golden ({})\n{want}\n--- actual\n{got}",
                case.0,
                path.display()
            )),
            Err(e) => drift.push(format!(
                "missing golden {:?} ({}): {e}\nactual plan:\n{got}\nrun with UPDATE_GOLDEN=1 to create it",
                case.0,
                path.display()
            )),
        }
    }
    assert!(
        drift.is_empty(),
        "{}\n({} golden(s) drifted; UPDATE_GOLDEN=1 regenerates after review)",
        drift.join("\n\n"),
        drift.len()
    );
}

/// The golden corpus must demonstrate each headline rewrite actually
/// firing — a silently inert optimizer would otherwise keep stale but
/// self-consistent goldens green.
#[test]
fn golden_corpus_exercises_the_rules() {
    let conn = fixture_db();
    let all = CASES
        .iter()
        .map(|c| render(&conn, c))
        .collect::<Vec<_>>()
        .join("\n");
    for needle in [
        "optimizer: predicate-pushdown:",
        "optimizer: projection-pruning:",
        "optimizer: limit-pushdown:",
        "optimizer: sort-elision:",
        "optimizer: join-reorder:",
        "optimizer: off",
        "columnar scan on",
        "index scan on",
        "index-order scan on",
        "virtual scan on",
        "hash join",
        "nested-loop join",
        "cross join (cartesian)",
        "[early exit after",
    ] {
        assert!(
            all.contains(needle),
            "corpus never shows {needle:?}:\n{all}"
        );
    }
}
