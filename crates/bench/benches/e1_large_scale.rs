//! Experiment E1 — large-scale profile handling (paper §3.1 / §5.3).
//!
//! Paper claim: "101 events on 16K processors ... 1.6 million data
//! points, and the PerfDMF API was able to handle the data without
//! problems." This bench sweeps Miranda-shaped trials over processor
//! counts and measures the three pipeline stages: store into the DBMS,
//! full trial load, and a node-selective load. Expected shape: all three
//! scale ~linearly in data points (the 16K point itself is exercised by
//! `examples/large_scale_miranda.rs --full`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_bench::{sizes, store_fresh};
use perfdmf_core::{load_trial, load_trial_filtered, LoadFilter};
use perfdmf_workload::MirandaModel;

fn bench_store(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_store");
    group.sample_size(10);
    for procs in sizes(&[64, 256, 1024]) {
        let profile = model.generate(procs);
        let points = profile.data_point_count() as u64;
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &profile, |b, p| {
            b.iter(|| store_fresh(p));
        });
    }
    group.finish();
}

fn bench_load(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_load_full");
    group.sample_size(10);
    for procs in sizes(&[64, 256, 1024]) {
        let profile = model.generate(procs);
        let points = profile.data_point_count() as u64;
        let (conn, trial) = store_fresh(&profile);
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| load_trial(&conn, trial).expect("load"));
        });
    }
    group.finish();
}

fn bench_selective_load(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_load_one_node");
    for procs in sizes(&[256, 1024, 4096]) {
        let profile = model.generate(procs);
        let (conn, trial) = store_fresh(&profile);
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| {
                load_trial_filtered(
                    &conn,
                    trial,
                    &LoadFilter {
                        node: Some(0),
                        ..Default::default()
                    },
                )
                .expect("filtered load")
            });
        });
    }
    group.finish();
}

fn bench_summaries(c: &mut Criterion) {
    let model = MirandaModel::default();
    let mut group = c.benchmark_group("e1_total_summary");
    for procs in sizes(&[1024, 4096, 16384]) {
        let profile = model.generate(procs);
        let m = profile.find_metric("WALL_CLOCK").expect("metric");
        group.throughput(Throughput::Elements(profile.data_point_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| profile.total_summary(m));
        });
    }
    group.finish();
}

/// Serial vs parallel TAU directory import. The directory is written
/// once; both modes must produce the same profile before being timed.
fn bench_parallel_import(c: &mut Criterion) {
    use perfdmf_import::tau::load_tau_directory;
    use perfdmf_pool as pool;

    let model = MirandaModel::default();
    let profile = model.generate(if perfdmf_bench::quick() { 16 } else { 64 });
    let dir = std::env::temp_dir().join(format!("pdmf_bench_tau_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    perfdmf_workload::write_tau_directory(&profile, &dir).expect("write tau dir");

    let serial = {
        let _mode = pool::override_for_thread(1, 1);
        load_tau_directory(&dir).expect("serial import")
    };
    let parallel = {
        let _mode = pool::override_for_thread(4, 1);
        load_tau_directory(&dir).expect("parallel import")
    };
    assert_eq!(serial.data_point_count(), parallel.data_point_count());
    assert_eq!(serial.threads(), parallel.threads());

    let mut group = c.benchmark_group("e1_parallel_import");
    group.throughput(Throughput::Elements(serial.data_point_count() as u64));
    for (label, threads) in [("serial", 1usize), ("threads2", 2), ("threads4", 4)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            let _mode = pool::override_for_thread(threads, 1);
            b.iter(|| load_tau_directory(&dir).expect("import"));
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Group-commit bulk insert on an fsync-durable on-disk database: one
/// WAL fsync per batch instead of one per row.
fn bench_group_commit(c: &mut Criterion) {
    use perfdmf_db::{Connection, Durability, Value};

    const ROWS: usize = 200;
    let batch: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i as i64), Value::Float(i as f64 * 0.5)])
        .collect();
    let dir = std::env::temp_dir().join(format!("pdmf_bench_commit_{}", std::process::id()));

    let mut group = c.benchmark_group("e1_group_commit");
    group.throughput(Throughput::Elements(ROWS as u64));
    for (label, durability, bulk) in [
        ("row_autocommit_fsync", Durability::Fsync, false),
        ("bulk_fsync", Durability::Fsync, true),
        ("bulk_buffered", Durability::Buffered, true),
    ] {
        let _ = std::fs::remove_dir_all(&dir);
        let conn = Connection::open(&dir).expect("open");
        conn.execute("CREATE TABLE b (x INTEGER, y DOUBLE)", &[])
            .expect("create");
        conn.set_durability(durability);
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            if bulk {
                b.iter(|| {
                    conn.bulk_insert("b", &["x", "y"], batch.clone())
                        .expect("bulk insert")
                });
            } else {
                b.iter(|| {
                    for row in &batch {
                        conn.execute("INSERT INTO b (x, y) VALUES (?, ?)", row)
                            .expect("insert");
                    }
                });
            }
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_store,
    bench_load,
    bench_selective_load,
    bench_summaries,
    bench_parallel_import,
    bench_group_commit
);
criterion_main!(benches);
