//! Atomic-event profiles: count / min / max / mean / standard deviation.
//!
//! Matches the paper's ATOMIC_LOCATION_PROFILE columns ("the sample count,
//! maximum value, minimum value, mean value and standard deviation for each
//! ATOMIC_EVENT, node, context, thread combination"). Accumulation uses
//! Welford's online algorithm so streaming large sample sets stays
//! numerically stable.

/// Summary statistics of one atomic event on one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtomicData {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Sample mean.
    pub mean: f64,
    /// Welford sum of squared deviations (not the stddev itself).
    m2: f64,
}

impl Default for AtomicData {
    /// Same as [`AtomicData::new`]: an empty accumulator with min/max at
    /// the identity elements (±infinity), not zero.
    fn default() -> Self {
        AtomicData::new()
    }
}

impl AtomicData {
    /// Empty accumulator.
    pub fn new() -> Self {
        AtomicData {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Construct directly from precomputed summary fields (used by
    /// importers whose input files carry the statistics, not the samples).
    pub fn from_summary(count: u64, min: f64, max: f64, mean: f64, stddev: f64) -> Self {
        let m2 = if count > 1 {
            stddev * stddev * (count - 1) as f64
        } else {
            0.0
        };
        AtomicData {
            count,
            min,
            max,
            mean,
            m2,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Sample standard deviation (n−1); `None` with fewer than 2 samples.
    pub fn stddev(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some((self.m2 / (self.count - 1) as f64).sqrt())
        }
    }

    /// Merge another accumulator into this one (parallel combination via
    /// Chan et al.'s pairwise update).
    pub fn merge(&mut self, other: &AtomicData) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_basic_stats() {
        let mut a = AtomicData::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            a.record(x);
        }
        assert_eq!(a.count, 8);
        assert_eq!(a.min, 2.0);
        assert_eq!(a.max, 9.0);
        assert!((a.mean - 5.0).abs() < 1e-12);
        assert!((a.stddev().unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stddev_undefined_for_small_samples() {
        let mut a = AtomicData::new();
        assert_eq!(a.stddev(), None);
        a.record(5.0);
        assert_eq!(a.stddev(), None);
        a.record(7.0);
        assert!(a.stddev().is_some());
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = AtomicData::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = AtomicData::new();
        let mut right = AtomicData::new();
        for &x in &xs[..37] {
            left.record(x);
        }
        for &x in &xs[37..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count, whole.count);
        assert!((left.mean - whole.mean).abs() < 1e-12);
        assert!((left.stddev().unwrap() - whole.stddev().unwrap()).abs() < 1e-12);
        assert_eq!(left.min, whole.min);
        assert_eq!(left.max, whole.max);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = AtomicData::new();
        a.record(1.0);
        let before = a;
        a.merge(&AtomicData::new());
        assert_eq!(a, before);
        let mut empty = AtomicData::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn from_summary_roundtrip() {
        let mut a = AtomicData::new();
        for x in [1.0, 3.0, 5.0, 7.0] {
            a.record(x);
        }
        let b = AtomicData::from_summary(a.count, a.min, a.max, a.mean, a.stddev().unwrap());
        assert!((b.stddev().unwrap() - a.stddev().unwrap()).abs() < 1e-12);
        assert_eq!(b.count, 4);
    }
}
