//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Deterministic, seedable generation only — everything this workspace
//! does goes through `StdRng::seed_from_u64` + `gen_range`. The engine
//! is xoshiro256++ seeded via SplitMix64; not upstream's ChaCha, so
//! streams differ from real `rand`, but all in-repo use derives expected
//! values from the same seeded run, which stays self-consistent.

pub mod rngs;

pub use rngs::StdRng;

/// Construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive full seed state from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open `low..high`).
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Sample a value of type `T` (here: `f64` in `[0, 1)` or any
    /// integer width via [`SampleUniform`]).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types with a "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` via Lemire-style widening multiply with a
/// simple rejection loop to stay unbiased.
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample an empty range");
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // Reject the biased tail of the [0, 2^64) stream.
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_sample_range {
    ($($int:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$int> for std::ops::Range<$int> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $int {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_u64_below(rng, span);
                (self.start as $wide).wrapping_add(off as $wide) as $int
            }
        }
        impl SampleRange<$int> for std::ops::RangeInclusive<$int> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $int {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $int;
                }
                let off = uniform_u64_below(rng, span + 1);
                (start as $wide).wrapping_add(off as $wide) as $int
            }
        }
    )*};
}

int_sample_range! {
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding landing exactly on the open bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let wide: f64 = (self.start as f64..self.end as f64).sample(rng);
        let v = wide as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..17);
            assert!(v < 17);
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&i));
            let inc: u8 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&inc));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
