//! Experiment E7 — SQL aggregate layer (paper §5.2: "standard SQL
//! aggregate operations such as minimum, maximum, mean, standard
//! deviation").
//!
//! Measures the grouped-aggregate query that powers the speedup analyzer
//! (per-event MIN/MAX/AVG/STDDEV across threads) against the equivalent
//! toolkit-side computation on a loaded profile. Expected shape: both
//! scale linearly in location rows; SQL pays the relational overhead,
//! the toolkit pays the full-trial load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_bench::{quick, sizes, store_fresh};
use perfdmf_core::{load_trial, DatabaseSession};
use perfdmf_profile::IntervalField;
use perfdmf_workload::Evh1Model;

fn bench_sql_aggregates(c: &mut Criterion) {
    let model = Evh1Model::default_mix(41);
    let mut group = c.benchmark_group("e7_sql_event_aggregates");
    group.sample_size(20);
    for procs in sizes(&[16, 64, 256]) {
        let profile = model.generate(procs);
        let points = profile.data_point_count() as u64;
        let (conn, trial) = store_fresh(&profile);
        let mut session = DatabaseSession::new(conn).expect("session");
        session.set_trial(trial);
        group.throughput(Throughput::Elements(points));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
        });
    }
    group.finish();
}

fn bench_toolkit_aggregates(c: &mut Criterion) {
    let model = Evh1Model::default_mix(41);
    let mut group = c.benchmark_group("e7_toolkit_event_stats");
    for procs in sizes(&[16, 64, 256]) {
        let profile = model.generate(procs);
        let m = profile.find_metric("GET_TIME_OF_DAY").expect("metric");
        group.throughput(Throughput::Elements(profile.data_point_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(procs), &(), |b, _| {
            b.iter(|| {
                (0..profile.events().len())
                    .filter_map(|e| {
                        profile.event_stats(
                            perfdmf_profile::EventId(e),
                            m,
                            IntervalField::Exclusive,
                        )
                    })
                    .count()
            });
        });
    }
    group.finish();
}

fn bench_load_then_analyze(c: &mut Criterion) {
    // the paper's tradeoff: database-only access vs loading the whole
    // trial and analyzing in memory
    let model = Evh1Model::default_mix(43);
    let profile = model.generate(64);
    let (conn, trial) = store_fresh(&profile);
    let mut group = c.benchmark_group("e7_access_methods");
    group.sample_size(20);
    let mut session = DatabaseSession::new(conn.clone()).expect("session");
    session.set_trial(trial);
    group.bench_function("database_only_aggregates", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    group.bench_function("load_trial_then_stats", |b| {
        b.iter(|| {
            let p = load_trial(&conn, trial).expect("load");
            let m = p.find_metric("GET_TIME_OF_DAY").expect("metric");
            (0..p.events().len())
                .filter_map(|e| {
                    p.event_stats(perfdmf_profile::EventId(e), m, IntervalField::Exclusive)
                })
                .count()
        });
    });
    group.finish();
}

/// Serial vs parallel partitioned execution of the grouped-aggregate
/// scan. The parallel runs force the pool past its size threshold; the
/// answers are asserted identical (floats within 1e-9 relative) before
/// anything is timed, so a speedup can never come from a wrong result.
fn bench_parallel_aggregate_scaling(c: &mut Criterion) {
    use perfdmf_db::Value;
    use perfdmf_pool as pool;

    const SQL: &str = "SELECT node, COUNT(*), AVG(exclusive), STDDEV(exclusive), \
                       MIN(inclusive), MAX(inclusive) \
                       FROM interval_location_profile GROUP BY node";
    let model = Evh1Model::default_mix(41);
    let profile = model.generate(if quick() { 16 } else { 256 });
    let (conn, _trial) = store_fresh(&profile);

    let serial = {
        let _mode = pool::override_for_thread(1, 1);
        conn.query(SQL, &[]).expect("serial aggregates").rows
    };
    let parallel = {
        let _mode = pool::override_for_thread(4, 1);
        conn.query(SQL, &[]).expect("parallel aggregates").rows
    };
    assert_eq!(serial.len(), parallel.len(), "parallel run dropped groups");
    for (a, b) in serial.iter().zip(&parallel) {
        for (x, y) in a.iter().zip(b) {
            match (x, y) {
                (Value::Float(x), Value::Float(y)) => assert!(
                    (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                    "parallel aggregate diverged: {x} vs {y}"
                ),
                _ => assert_eq!(x, y, "parallel aggregate diverged"),
            }
        }
    }

    let mut group = c.benchmark_group("e7_parallel_aggregates");
    group.throughput(Throughput::Elements(profile.data_point_count() as u64));
    for (label, threads) in [("serial", 1usize), ("threads2", 2), ("threads4", 4)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            let _mode = pool::override_for_thread(threads, 1);
            b.iter(|| conn.query(SQL, &[]).expect("aggregates"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sql_aggregates,
    bench_toolkit_aggregates,
    bench_load_then_analyze,
    bench_parallel_aggregate_scaling
);
criterion_main!(benches);
