/root/repo/target/debug/deps/perfdmf_profile-0dc50c26aa841317.d: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_profile-0dc50c26aa841317.rmeta: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs Cargo.toml

crates/profile/src/lib.rs:
crates/profile/src/atomic.rs:
crates/profile/src/callpath.rs:
crates/profile/src/derived.rs:
crates/profile/src/event.rs:
crates/profile/src/interval.rs:
crates/profile/src/profile.rs:
crates/profile/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
