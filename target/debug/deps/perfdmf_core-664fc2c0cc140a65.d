/root/repo/target/debug/deps/perfdmf_core-664fc2c0cc140a65.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/debug/deps/perfdmf_core-664fc2c0cc140a65: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/objects.rs:
crates/core/src/schema.rs:
crates/core/src/session.rs:
crates/core/src/upload.rs:
