//! Statement execution.

pub mod aggregate;
pub mod eval;
pub mod select;
pub mod vector;

use crate::database::Database;
use crate::error::{DbError, Result};
use crate::schema::TableSchema;
use crate::sql::ast::{Expr, Statement};
use crate::table::{Row, RowId};
use crate::value::Value;
use eval::{Env, Layout};

/// A query result: column names plus rows of values.
///
/// Also carries execution provenance (`rows_scanned`, `elapsed`) filled
/// in by the SELECT executor. Provenance is advisory — it does not
/// participate in equality, so result sets compare by visible data only.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// Output column names, in projection order.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rows the executor materialized from base tables (after index
    /// pruning, before WHERE filtering); a selectivity denominator.
    pub rows_scanned: u64,
    /// Wall-clock time spent executing the SELECT.
    pub elapsed: std::time::Duration,
}

impl PartialEq for ResultSet {
    fn eq(&self, other: &Self) -> bool {
        self.columns == other.columns && self.rows == other.rows
    }
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Value at `(row, column-name)`.
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let ci = self.column_index(column)?;
        self.rows.get(row).and_then(|r| r.get(ci))
    }

    /// First value of the first row — convenient for scalar queries like
    /// `SELECT COUNT(*) ...`.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as an aligned text table (for CLI tools and examples).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Outcome of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// SELECT produced rows.
    Rows(ResultSet),
    /// DML affected this many rows. For INSERT into a table with an
    /// AUTO_INCREMENT key, `last_insert_id` carries the last generated id.
    Affected {
        count: usize,
        last_insert_id: Option<i64>,
    },
    /// DDL or transaction-control statement completed.
    Done,
}

/// Execute a parsed statement with bound parameters.
///
/// Statement-level atomicity: on error, any partial effects are rolled
/// back; on success outside an explicit transaction, effects are committed
/// (autocommit).
pub fn execute(db: &mut Database, stmt: &Statement, params: &[Value]) -> Result<Outcome> {
    let mark = db.stmt_begin();
    match execute_inner(db, stmt, params) {
        Ok(out) => {
            db.stmt_finish()?;
            Ok(out)
        }
        Err(e) => {
            db.stmt_abort(mark);
            Err(e)
        }
    }
}

fn execute_inner(db: &mut Database, stmt: &Statement, params: &[Value]) -> Result<Outcome> {
    match stmt {
        Statement::Explain { statement, analyze } => {
            let lines = match (statement.as_ref(), *analyze) {
                (Statement::Select(sel), false) => select::explain_select(db, sel, params)?,
                (Statement::Select(sel), true) => select::explain_analyze_select(db, sel, params)?,
                (other, false) => vec![describe_statement(other)],
                (other, true) => {
                    // EXPLAIN ANALYZE of DML/DDL executes the statement for
                    // real (PostgreSQL semantics) and annotates the plan
                    // description with measured effects.
                    let started = std::time::Instant::now();
                    let outcome = execute_inner(db, other, params)?;
                    let elapsed_ms =
                        started.elapsed().as_nanos().min(u64::MAX as u128) as f64 / 1e6;
                    let affected = match outcome {
                        Outcome::Affected { count, .. } => count,
                        _ => 0,
                    };
                    vec![format!(
                        "{} [actual rows_affected={affected}, {elapsed_ms:.3}ms]",
                        describe_statement(other)
                    )]
                }
            };
            Ok(Outcome::Rows(ResultSet {
                columns: vec!["plan".to_string()],
                rows: lines
                    .into_iter()
                    .map(|l| vec![Value::Text(l.into())])
                    .collect(),
                ..ResultSet::default()
            }))
        }
        Statement::Select(sel) => Ok(Outcome::Rows(select::execute_select(db, sel, params)?)),
        Statement::Insert(ins) => {
            crate::introspect::check_dml_name(&ins.table)?;
            let (count, last) = execute_insert(db, ins, params)?;
            Ok(Outcome::Affected {
                count,
                last_insert_id: last,
            })
        }
        Statement::Update(upd) => {
            crate::introspect::check_dml_name(&upd.table)?;
            let count = execute_update(db, upd, params)?;
            Ok(Outcome::Affected {
                count,
                last_insert_id: None,
            })
        }
        Statement::Delete(del) => {
            crate::introspect::check_dml_name(&del.table)?;
            let count = execute_delete(db, del, params)?;
            Ok(Outcome::Affected {
                count,
                last_insert_id: None,
            })
        }
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let schema = TableSchema::new(name.clone(), columns.clone())?;
            db.create_table(schema, *if_not_exists)?;
            Ok(Outcome::Done)
        }
        Statement::DropTable { name, if_exists } => {
            crate::introspect::check_ddl_name(name)?;
            db.drop_table(name, *if_exists)?;
            Ok(Outcome::Done)
        }
        Statement::AlterTableAddColumn { table, column } => {
            crate::introspect::check_ddl_name(table)?;
            db.add_column(table, column.clone())?;
            Ok(Outcome::Done)
        }
        Statement::AlterTableDropColumn { table, column } => {
            crate::introspect::check_ddl_name(table)?;
            db.drop_column(table, column)?;
            Ok(Outcome::Done)
        }
        Statement::CreateIndex {
            name,
            table,
            column,
            unique,
        } => {
            crate::introspect::check_ddl_name(table)?;
            db.create_index(name, table, column, *unique)?;
            Ok(Outcome::Done)
        }
        Statement::DropIndex { name } => {
            db.drop_index(name)?;
            Ok(Outcome::Done)
        }
        Statement::Begin => {
            db.begin()?;
            Ok(Outcome::Done)
        }
        Statement::Commit => {
            db.commit()?;
            Ok(Outcome::Done)
        }
        Statement::Rollback => {
            db.rollback()?;
            Ok(Outcome::Done)
        }
    }
}

fn describe_statement(stmt: &Statement) -> String {
    match stmt {
        Statement::Insert(i) => format!("insert into {} ({} row(s))", i.table, i.rows.len()),
        Statement::Update(u) => format!(
            "update {} ({} assignment(s){})",
            u.table,
            u.assignments.len(),
            if u.where_clause.is_some() {
                ", filtered"
            } else {
                ", all rows"
            }
        ),
        Statement::Delete(d) => format!(
            "delete from {}{}",
            d.table,
            if d.where_clause.is_some() {
                " (filtered)"
            } else {
                " (all rows)"
            }
        ),
        other => format!("{other:?}")
            .split_whitespace()
            .next()
            .unwrap_or("statement")
            .to_ascii_lowercase(),
    }
}

fn eval_const(expr: &Expr, params: &[Value]) -> Result<Value> {
    let layout = Layout::default();
    let env = Env::new(&layout, &[], params);
    eval::eval(expr, &env)
}

fn execute_insert(
    db: &mut Database,
    ins: &crate::sql::ast::Insert,
    params: &[Value],
) -> Result<(usize, Option<i64>)> {
    // Resolve the column mapping once.
    let (schema_cols, col_map, auto_pk): (usize, Vec<usize>, Option<usize>) = {
        let t = db.table(&ins.table)?;
        let n = t.schema.columns.len();
        let map: Vec<usize> = if ins.columns.is_empty() {
            (0..n).collect()
        } else {
            let mut m = Vec::with_capacity(ins.columns.len());
            for c in &ins.columns {
                m.push(
                    t.schema
                        .column_index(c)
                        .ok_or_else(|| DbError::NoSuchColumn {
                            table: ins.table.clone(),
                            column: c.clone(),
                        })?,
                );
            }
            m
        };
        let auto = t
            .schema
            .primary_key_index()
            .filter(|&i| t.schema.columns[i].auto_increment);
        (n, map, auto)
    };
    let defaults: Vec<Value> = {
        let t = db.table(&ins.table)?;
        t.schema
            .columns
            .iter()
            .map(|c| c.default.clone().unwrap_or(Value::Null))
            .collect()
    };
    let mut count = 0;
    let mut last = None;
    for tuple in &ins.rows {
        if tuple.len() != col_map.len() {
            return Err(DbError::Arity {
                expected: col_map.len(),
                got: tuple.len(),
            });
        }
        let mut row: Row = defaults.clone();
        for (slot, expr) in col_map.iter().zip(tuple) {
            let expr = select::resolve_subqueries(db, expr, params)?;
            row[*slot] = eval_const(&expr, params)?;
        }
        let id: RowId = db.insert_row(&ins.table, row)?;
        if let Some(pk) = auto_pk {
            if let Some(Value::Int(v)) = db.table(&ins.table)?.row(id).map(|r| r[pk].clone()) {
                last = Some(v);
            }
        }
        count += 1;
    }
    let _ = schema_cols;
    Ok((count, last))
}

fn execute_update(
    db: &mut Database,
    upd: &crate::sql::ast::Update,
    params: &[Value],
) -> Result<usize> {
    let where_clause = upd
        .where_clause
        .as_ref()
        .map(|w| select::resolve_subqueries(db, w, params))
        .transpose()?;
    #[allow(clippy::type_complexity)]
    let (layout, assignments, targets): (Layout, Vec<(usize, Expr)>, Vec<(RowId, Row)>) = {
        let t = db.table(&upd.table)?;
        let layout = Layout::single(
            t.schema.name.clone(),
            t.schema.columns.iter().map(|c| c.name.clone()).collect(),
        );
        let mut assigns = Vec::with_capacity(upd.assignments.len());
        for (col, e) in &upd.assignments {
            let idx = t
                .schema
                .column_index(col)
                .ok_or_else(|| DbError::NoSuchColumn {
                    table: upd.table.clone(),
                    column: col.clone(),
                })?;
            assigns.push((idx, select::resolve_subqueries(db, e, params)?));
        }
        let mut targets = Vec::new();
        let candidates = select::index_candidates(
            t,
            &t.schema.name.clone(),
            &layout,
            where_clause.as_ref(),
            params,
        )?;
        let mut check = |id: RowId, row: &Row| -> Result<()> {
            let matched = match &where_clause {
                None => true,
                Some(pred) => {
                    let env = Env::new(&layout, row, params);
                    eval::eval_condition(pred, &env)?
                }
            };
            if matched {
                targets.push((id, row.clone()));
            }
            Ok(())
        };
        match candidates {
            Some(choice) => {
                for id in choice.ids {
                    if let Some(row) = t.row(id) {
                        check(id, row)?;
                    }
                }
            }
            None => {
                for (id, row) in t.iter() {
                    check(id, row)?;
                }
            }
        }
        (layout, assigns, targets)
    };
    let count = targets.len();
    for (id, old_row) in targets {
        let env = Env::new(&layout, &old_row, params);
        let mut new_row = old_row.clone();
        for (idx, e) in &assignments {
            new_row[*idx] = eval::eval(e, &env)?;
        }
        db.update_row(&upd.table, id, new_row)?;
    }
    Ok(count)
}

fn execute_delete(
    db: &mut Database,
    del: &crate::sql::ast::Delete,
    params: &[Value],
) -> Result<usize> {
    let where_clause = del
        .where_clause
        .as_ref()
        .map(|w| select::resolve_subqueries(db, w, params))
        .transpose()?;
    let targets: Vec<RowId> = {
        let t = db.table(&del.table)?;
        let layout = Layout::single(
            t.schema.name.clone(),
            t.schema.columns.iter().map(|c| c.name.clone()).collect(),
        );
        let mut ids = Vec::new();
        let candidates = select::index_candidates(
            t,
            &t.schema.name.clone(),
            &layout,
            where_clause.as_ref(),
            params,
        )?;
        let mut check = |id: RowId, row: &Row| -> Result<()> {
            let matched = match &where_clause {
                None => true,
                Some(pred) => {
                    let env = Env::new(&layout, row, params);
                    eval::eval_condition(pred, &env)?
                }
            };
            if matched {
                ids.push(id);
            }
            Ok(())
        };
        match candidates {
            Some(choice) => {
                for id in choice.ids {
                    if let Some(row) = t.row(id) {
                        check(id, row)?;
                    }
                }
            }
            None => {
                for (id, row) in t.iter() {
                    check(id, row)?;
                }
            }
        }
        ids
    };
    let count = targets.len();
    for id in targets {
        db.delete_row(&del.table, id)?;
    }
    Ok(count)
}
