//! Per-location interval measurements.
//!
//! One [`IntervalData`] holds the cumulative measurements for one
//! (event, node, context, thread, metric) combination — exactly the row
//! contents of the paper's INTERVAL_LOCATION_PROFILE table: inclusive,
//! inclusive %, exclusive, exclusive %, inclusive per call, number of
//! calls, number of subroutines.
//!
//! Some profile formats leave fields undefined (paper §3.2: "For some
//! profiling tools, the value of one or more of these fields may be
//! undefined"). Undefined fields are stored as `f64::NAN` and read back as
//! `None` through the checked accessors; this keeps the struct a flat
//! 56-byte record, which matters at 1.6M+ data points (experiment E1).

/// Cumulative interval measurements for one profile location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalData {
    /// Inclusive value (time or counter units), including callees.
    pub inclusive: f64,
    /// Exclusive value, excluding callees.
    pub exclusive: f64,
    /// Inclusive value as a percentage of the thread total.
    pub inclusive_percent: f64,
    /// Exclusive value as a percentage of the thread total.
    pub exclusive_percent: f64,
    /// Inclusive value per call.
    pub inclusive_per_call: f64,
    /// Number of times the event was entered.
    pub calls: f64,
    /// Number of child events invoked (subroutines).
    pub subroutines: f64,
}

/// The undefined-field sentinel.
pub const UNDEFINED: f64 = f64::NAN;

fn def(v: f64) -> Option<f64> {
    if v.is_nan() {
        None
    } else {
        Some(v)
    }
}

impl Default for IntervalData {
    fn default() -> Self {
        IntervalData {
            inclusive: UNDEFINED,
            exclusive: UNDEFINED,
            inclusive_percent: UNDEFINED,
            exclusive_percent: UNDEFINED,
            inclusive_per_call: UNDEFINED,
            calls: UNDEFINED,
            subroutines: UNDEFINED,
        }
    }
}

impl IntervalData {
    /// Construct from the two primary measurements plus call counts; the
    /// percentage and per-call fields are derived later by
    /// [`crate::Profile::recompute_derived_fields`].
    pub fn new(inclusive: f64, exclusive: f64, calls: f64, subroutines: f64) -> Self {
        IntervalData {
            inclusive,
            exclusive,
            inclusive_percent: UNDEFINED,
            exclusive_percent: UNDEFINED,
            inclusive_per_call: if calls > 0.0 {
                inclusive / calls
            } else {
                UNDEFINED
            },
            calls,
            subroutines,
        }
    }

    /// Inclusive value, `None` if undefined.
    pub fn inclusive(&self) -> Option<f64> {
        def(self.inclusive)
    }

    /// Exclusive value, `None` if undefined.
    pub fn exclusive(&self) -> Option<f64> {
        def(self.exclusive)
    }

    /// Inclusive percent, `None` if undefined.
    pub fn inclusive_percent(&self) -> Option<f64> {
        def(self.inclusive_percent)
    }

    /// Exclusive percent, `None` if undefined.
    pub fn exclusive_percent(&self) -> Option<f64> {
        def(self.exclusive_percent)
    }

    /// Inclusive per call, `None` if undefined.
    pub fn inclusive_per_call(&self) -> Option<f64> {
        def(self.inclusive_per_call)
    }

    /// Call count, `None` if undefined.
    pub fn calls(&self) -> Option<f64> {
        def(self.calls)
    }

    /// Subroutine count, `None` if undefined.
    pub fn subroutines(&self) -> Option<f64> {
        def(self.subroutines)
    }

    /// Accumulate another location's data into this one (used when
    /// building total summaries). Undefined fields are treated as absent:
    /// `defined + undefined = defined`.
    pub fn accumulate(&mut self, other: &IntervalData) {
        fn add(a: f64, b: f64) -> f64 {
            match (a.is_nan(), b.is_nan()) {
                (true, true) => UNDEFINED,
                (true, false) => b,
                (false, true) => a,
                (false, false) => a + b,
            }
        }
        self.inclusive = add(self.inclusive, other.inclusive);
        self.exclusive = add(self.exclusive, other.exclusive);
        self.calls = add(self.calls, other.calls);
        self.subroutines = add(self.subroutines, other.subroutines);
        // Percent / per-call are recomputed from the sums, not summed.
        self.inclusive_percent = UNDEFINED;
        self.exclusive_percent = UNDEFINED;
        self.inclusive_per_call =
            if !self.calls.is_nan() && self.calls > 0.0 && !self.inclusive.is_nan() {
                self.inclusive / self.calls
            } else {
                UNDEFINED
            };
    }

    /// Scale all measurement fields by `1/n` (total → mean summary).
    pub fn scale(&mut self, factor: f64) {
        if !self.inclusive.is_nan() {
            self.inclusive *= factor;
        }
        if !self.exclusive.is_nan() {
            self.exclusive *= factor;
        }
        if !self.calls.is_nan() {
            self.calls *= factor;
        }
        if !self.subroutines.is_nan() {
            self.subroutines *= factor;
        }
        // per-call is scale-invariant (incl/calls); leave as-is.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_derives_per_call() {
        let d = IntervalData::new(100.0, 60.0, 4.0, 2.0);
        assert_eq!(d.inclusive(), Some(100.0));
        assert_eq!(d.inclusive_per_call(), Some(25.0));
        assert_eq!(d.inclusive_percent(), None);
        let z = IntervalData::new(10.0, 10.0, 0.0, 0.0);
        assert_eq!(z.inclusive_per_call(), None);
    }

    #[test]
    fn undefined_fields_read_as_none() {
        let d = IntervalData::default();
        assert_eq!(d.inclusive(), None);
        assert_eq!(d.calls(), None);
    }

    #[test]
    fn accumulate_handles_undefined() {
        let mut a = IntervalData::new(10.0, 5.0, 1.0, 0.0);
        let undef = IntervalData {
            exclusive: 3.0,
            ..Default::default()
        };
        a.accumulate(&undef);
        assert_eq!(a.inclusive(), Some(10.0));
        assert_eq!(a.exclusive(), Some(8.0));
        assert_eq!(a.calls(), Some(1.0));
    }

    #[test]
    fn accumulate_recomputes_per_call() {
        let mut a = IntervalData::new(10.0, 10.0, 2.0, 0.0);
        let b = IntervalData::new(30.0, 30.0, 2.0, 0.0);
        a.accumulate(&b);
        assert_eq!(a.inclusive(), Some(40.0));
        assert_eq!(a.calls(), Some(4.0));
        assert_eq!(a.inclusive_per_call(), Some(10.0));
    }

    #[test]
    fn scale_for_mean() {
        let mut a = IntervalData::new(40.0, 20.0, 4.0, 8.0);
        a.scale(0.25);
        assert_eq!(a.inclusive(), Some(10.0));
        assert_eq!(a.exclusive(), Some(5.0));
        assert_eq!(a.calls(), Some(1.0));
        assert_eq!(a.subroutines(), Some(2.0));
    }
}
