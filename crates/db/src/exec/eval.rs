//! Expression evaluation against a row environment.
//!
//! SQL three-valued logic is represented by `Value::Null` flowing through
//! comparisons and boolean operators: a NULL condition is treated as *not
//! satisfied* by WHERE/HAVING/ON, matching standard SQL.

use crate::error::{DbError, Result};
use crate::sql::ast::{BinaryOp, Expr, UnaryOp};
use crate::value::Value;

/// Column layout of the row stream an expression is evaluated against.
///
/// Each *binding* is a table (or alias) with its column names; the flattened
/// row contains the bindings' columns concatenated in order.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    bindings: Vec<(String, Vec<String>)>,
    /// Flat (binding, column) pairs, offset = position.
    flat: Vec<(String, String)>,
}

impl Layout {
    /// Build a layout from `(binding_name, column_names)` pairs.
    pub fn new(bindings: Vec<(String, Vec<String>)>) -> Self {
        let mut flat = Vec::new();
        for (b, cols) in &bindings {
            for c in cols {
                flat.push((b.clone(), c.clone()));
            }
        }
        Layout { bindings, flat }
    }

    /// Single-binding layout.
    pub fn single(name: impl Into<String>, columns: Vec<String>) -> Self {
        Layout::new(vec![(name.into(), columns)])
    }

    /// Total number of columns in the flattened row.
    pub fn width(&self) -> usize {
        self.flat.len()
    }

    /// Bindings (table name/alias → column list).
    pub fn bindings(&self) -> &[(String, Vec<String>)] {
        &self.bindings
    }

    /// Flattened `(binding, column)` pairs in offset order.
    pub fn flat(&self) -> &[(String, String)] {
        &self.flat
    }

    /// Offsets covered by one binding, as `(start, len)`.
    pub fn binding_span(&self, name: &str) -> Option<(usize, usize)> {
        let mut start = 0;
        for (b, cols) in &self.bindings {
            if b.eq_ignore_ascii_case(name) {
                return Some((start, cols.len()));
            }
            start += cols.len();
        }
        None
    }

    /// Resolve a column reference to a flat offset.
    pub fn resolve(&self, table: Option<&str>, column: &str) -> Result<usize> {
        match table {
            Some(t) => {
                let (start, len) = self
                    .binding_span(t)
                    .ok_or_else(|| DbError::NoSuchTable(t.to_string()))?;
                for i in 0..len {
                    if self.flat[start + i].1.eq_ignore_ascii_case(column) {
                        return Ok(start + i);
                    }
                }
                Err(DbError::NoSuchColumn {
                    table: t.to_string(),
                    column: column.to_string(),
                })
            }
            None => {
                let mut found = None;
                for (i, (_, c)) in self.flat.iter().enumerate() {
                    if c.eq_ignore_ascii_case(column) {
                        if found.is_some() {
                            return Err(DbError::AmbiguousColumn(column.to_string()));
                        }
                        found = Some(i);
                    }
                }
                found.ok_or_else(|| DbError::NoSuchColumn {
                    table: self
                        .bindings
                        .first()
                        .map(|(b, _)| b.clone())
                        .unwrap_or_default(),
                    column: column.to_string(),
                })
            }
        }
    }
}

/// Evaluation context: the current flattened row and bound parameters.
#[derive(Debug, Clone, Copy)]
pub struct Env<'a> {
    /// Layout describing `row`.
    pub layout: &'a Layout,
    /// Current row values.
    pub row: &'a [Value],
    /// Bound `?` parameters.
    pub params: &'a [Value],
}

impl<'a> Env<'a> {
    /// Construct an environment.
    pub fn new(layout: &'a Layout, row: &'a [Value], params: &'a [Value]) -> Self {
        Env {
            layout,
            row,
            params,
        }
    }
}

/// Evaluate an expression. Aggregate nodes are an error here — the grouped
/// executor substitutes them with literals before calling this.
pub fn eval(expr: &Expr, env: &Env<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Param(i) => env
            .params
            .get(*i)
            .cloned()
            .ok_or(DbError::MissingParameter(*i)),
        Expr::Column { table, column } => {
            let off = env.layout.resolve(table.as_deref(), column)?;
            Ok(env.row[off].clone())
        }
        Expr::Unary { op, operand } => {
            let v = eval(operand, env)?;
            match op {
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(DbError::Eval(format!("cannot negate {other}"))),
                },
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    other => match other.as_bool() {
                        Some(b) => Ok(Value::Bool(!b)),
                        None => Err(DbError::Eval(format!("NOT of non-boolean {other}"))),
                    },
                },
            }
        }
        Expr::Binary { op, left, right } => eval_binary(*op, left, right, env),
        Expr::IsNull { operand, negated } => {
            let v = eval(operand, env)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            operand,
            list,
            negated,
        } => {
            let v = eval(operand, env)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, env)?;
                match v.sql_eq(&w) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between {
            operand,
            low,
            high,
            negated,
        } => {
            let v = eval(operand, env)?;
            let lo = eval(low, env)?;
            let hi = eval(high, env)?;
            match (v.sql_cmp(&lo), v.sql_cmp(&hi)) {
                (Some(a), Some(b)) => {
                    let inside = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Bool(inside != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        Expr::Aggregate { func, .. } => Err(DbError::Eval(format!(
            "aggregate {} used outside of an aggregating query",
            func.name()
        ))),
        Expr::InSubquery { .. } | Expr::ScalarSubquery(_) | Expr::Exists { .. } => Err(
            DbError::Eval("subquery was not resolved before evaluation".into()),
        ),
        Expr::Function { name, args } => eval_function(name, args, env),
        Expr::Case {
            branches,
            else_branch,
        } => {
            for (cond, value) in branches {
                if eval(cond, env)?.as_bool() == Some(true) {
                    return eval(value, env);
                }
            }
            match else_branch {
                Some(e) => eval(e, env),
                None => Ok(Value::Null),
            }
        }
    }
}

/// Evaluate a condition for WHERE/HAVING/ON: NULL counts as false.
pub fn eval_condition(expr: &Expr, env: &Env<'_>) -> Result<bool> {
    Ok(eval(expr, env)?.as_bool() == Some(true))
}

fn eval_binary(op: BinaryOp, left: &Expr, right: &Expr, env: &Env<'_>) -> Result<Value> {
    // Short-circuiting three-valued AND/OR.
    match op {
        BinaryOp::And => {
            let l = eval(left, env)?;
            if l.as_bool() == Some(false) {
                return Ok(Value::Bool(false));
            }
            let r = eval(right, env)?;
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(true), Some(true)) => Value::Bool(true),
                (_, Some(false)) => Value::Bool(false),
                _ => Value::Null,
            });
        }
        BinaryOp::Or => {
            let l = eval(left, env)?;
            if l.as_bool() == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = eval(right, env)?;
            return Ok(match (l.as_bool(), r.as_bool()) {
                (Some(false), Some(false)) => Value::Bool(false),
                (_, Some(true)) => Value::Bool(true),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    let l = eval(left, env)?;
    let r = eval(right, env)?;
    match op {
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            arithmetic(op, &l, &r)
        }
        BinaryOp::Eq => Ok(tri(l.sql_eq(&r))),
        BinaryOp::NotEq => Ok(tri(l.sql_eq(&r).map(|b| !b))),
        BinaryOp::Lt => Ok(tri(l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Less))),
        BinaryOp::LtEq => Ok(tri(l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Greater))),
        BinaryOp::Gt => Ok(tri(l.sql_cmp(&r).map(|o| o == std::cmp::Ordering::Greater))),
        BinaryOp::GtEq => Ok(tri(l.sql_cmp(&r).map(|o| o != std::cmp::Ordering::Less))),
        BinaryOp::Like => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let text = l
                .as_text()
                .ok_or_else(|| DbError::Eval("LIKE requires text operands".into()))?;
            let pat = r
                .as_text()
                .ok_or_else(|| DbError::Eval("LIKE requires text pattern".into()))?;
            Ok(Value::Bool(like_match(text, pat)))
        }
        BinaryOp::Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Text(format!("{l}{r}").into()))
        }
        BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
    }
}

fn tri(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

fn arithmetic(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic when both are ints (except division, which is
    // float like most analytics engines expect for AVG-style math).
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        match op {
            BinaryOp::Add => return Ok(Value::Int(a.wrapping_add(*b))),
            BinaryOp::Sub => return Ok(Value::Int(a.wrapping_sub(*b))),
            BinaryOp::Mul => return Ok(Value::Int(a.wrapping_mul(*b))),
            BinaryOp::Mod => {
                if *b == 0 {
                    return Err(DbError::Eval("modulo by zero".into()));
                }
                return Ok(Value::Int(a % b));
            }
            _ => {}
        }
    }
    let a = l
        .as_float()
        .ok_or_else(|| DbError::Eval(format!("non-numeric operand {l}")))?;
    let b = r
        .as_float()
        .ok_or_else(|| DbError::Eval(format!("non-numeric operand {r}")))?;
    let out = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(DbError::Eval("division by zero".into()));
            }
            a / b
        }
        BinaryOp::Mod => {
            if b == 0.0 {
                return Err(DbError::Eval("modulo by zero".into()));
            }
            a % b
        }
        _ => unreachable!(),
    };
    Ok(Value::Float(out))
}

/// SQL LIKE with `%` (any run) and `_` (any single char). Case-sensitive.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|k| rec(&t[k..], rest)),
            Some(('_', rest)) => match t.split_first() {
                Some((_, t_rest)) => rec(t_rest, rest),
                None => false,
            },
            Some((c, rest)) => match t.split_first() {
                Some((tc, t_rest)) if tc == c => rec(t_rest, rest),
                _ => false,
            },
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

fn eval_function(name: &str, args: &[Expr], env: &Env<'_>) -> Result<Value> {
    let vals: Vec<Value> = args.iter().map(|a| eval(a, env)).collect::<Result<_>>()?;
    let need = |n: usize| -> Result<()> {
        if vals.len() == n {
            Ok(())
        } else {
            Err(DbError::Arity {
                expected: n,
                got: vals.len(),
            })
        }
    };
    let numeric1 = |f: fn(f64) -> f64| -> Result<Value> {
        need(1)?;
        if vals[0].is_null() {
            return Ok(Value::Null);
        }
        vals[0]
            .as_float()
            .map(|x| Value::Float(f(x)))
            .ok_or_else(|| DbError::Eval(format!("{name} of non-numeric {}", vals[0])))
    };
    match name {
        "abs" => {
            need(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::Float(f.abs())),
                other => Err(DbError::Eval(format!("abs of non-numeric {other}"))),
            }
        }
        "sqrt" => numeric1(f64::sqrt),
        "ln" => numeric1(f64::ln),
        "log" | "log10" => numeric1(f64::log10),
        "log2" => numeric1(f64::log2),
        "exp" => numeric1(f64::exp),
        "floor" => numeric1(f64::floor),
        "ceil" | "ceiling" => numeric1(f64::ceil),
        "round" => {
            if vals.len() == 2 {
                let x = vals[0]
                    .as_float()
                    .ok_or_else(|| DbError::Eval("round of non-numeric".into()))?;
                let d = vals[1]
                    .as_int()
                    .ok_or_else(|| DbError::Eval("round digits must be integer".into()))?;
                let m = 10f64.powi(d as i32);
                Ok(Value::Float((x * m).round() / m))
            } else {
                numeric1(f64::round)
            }
        }
        "power" | "pow" => {
            need(2)?;
            if vals[0].is_null() || vals[1].is_null() {
                return Ok(Value::Null);
            }
            let a = vals[0]
                .as_float()
                .ok_or_else(|| DbError::Eval("power of non-numeric".into()))?;
            let b = vals[1]
                .as_float()
                .ok_or_else(|| DbError::Eval("power of non-numeric".into()))?;
            Ok(Value::Float(a.powf(b)))
        }
        "lower" => {
            need(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Text(v.to_string().to_lowercase().into())),
            }
        }
        "upper" => {
            need(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Text(v.to_string().to_uppercase().into())),
            }
        }
        "length" => {
            need(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                v => Ok(Value::Int(v.to_string().chars().count() as i64)),
            }
        }
        "trim" => {
            need(1)?;
            match &vals[0] {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Text(v.to_string().trim().to_string().into())),
            }
        }
        "substr" | "substring" => {
            if vals.len() < 2 || vals.len() > 3 {
                return Err(DbError::Arity {
                    expected: 2,
                    got: vals.len(),
                });
            }
            if vals[0].is_null() {
                return Ok(Value::Null);
            }
            let s = vals[0].to_string();
            let chars: Vec<char> = s.chars().collect();
            // SQL substr is 1-based.
            let start = vals[1]
                .as_int()
                .ok_or_else(|| DbError::Eval("substr start must be integer".into()))?;
            let start = (start.max(1) - 1) as usize;
            let len = match vals.get(2) {
                Some(v) => v
                    .as_int()
                    .ok_or_else(|| DbError::Eval("substr length must be integer".into()))?
                    .max(0) as usize,
                None => chars.len().saturating_sub(start),
            };
            let out: String = chars.iter().skip(start).take(len).collect();
            Ok(Value::Text(out.into()))
        }
        "coalesce" => {
            for v in &vals {
                if !v.is_null() {
                    return Ok(v.clone());
                }
            }
            Ok(Value::Null)
        }
        "nullif" => {
            need(2)?;
            if vals[0].sql_eq(&vals[1]) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(vals[0].clone())
            }
        }
        "cast_integer" | "cast_int" | "cast_bigint" => {
            need(1)?;
            vals[0]
                .coerce(crate::value::DataType::Integer)
                .ok_or_else(|| DbError::Eval(format!("cannot cast {} to INTEGER", vals[0])))
        }
        "cast_double" | "cast_float" | "cast_real" => {
            need(1)?;
            vals[0]
                .coerce(crate::value::DataType::Double)
                .ok_or_else(|| DbError::Eval(format!("cannot cast {} to DOUBLE", vals[0])))
        }
        "cast_text" | "cast_varchar" | "cast_string" => {
            need(1)?;
            vals[0]
                .coerce(crate::value::DataType::Text)
                .ok_or_else(|| DbError::Eval(format!("cannot cast {} to TEXT", vals[0])))
        }
        "cast_boolean" | "cast_bool" => {
            need(1)?;
            vals[0]
                .coerce(crate::value::DataType::Boolean)
                .ok_or_else(|| DbError::Eval(format!("cannot cast {} to BOOLEAN", vals[0])))
        }
        other => Err(DbError::Unsupported(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::{Projection, Statement};
    use crate::sql::parser::parse_statement;

    /// Evaluate a scalar SQL expression with no row context.
    fn eval_sql(expr_sql: &str) -> Result<Value> {
        let stmt = parse_statement(&format!("SELECT {expr_sql}")).unwrap();
        let expr = match stmt {
            Statement::Select(sel) => match sel.projections.into_iter().next().unwrap() {
                Projection::Expr { expr, .. } => expr,
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        let layout = Layout::default();
        let env = Env::new(&layout, &[], &[]);
        eval(&expr, &env)
    }

    #[test]
    fn arithmetic_rules() {
        assert_eq!(eval_sql("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_sql("7 / 2").unwrap(), Value::Float(3.5));
        assert_eq!(eval_sql("7 % 3").unwrap(), Value::Int(1));
        assert_eq!(eval_sql("-(3 - 5)").unwrap(), Value::Int(2));
        assert_eq!(eval_sql("1.5 + 1").unwrap(), Value::Float(2.5));
        assert!(eval_sql("1 / 0").is_err());
        assert!(eval_sql("1 % 0").is_err());
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval_sql("NULL + 1").unwrap(), Value::Null);
        assert_eq!(eval_sql("NULL = NULL").unwrap(), Value::Null);
        assert_eq!(eval_sql("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("1 IS NOT NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("NOT NULL").unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_sql("FALSE AND NULL").unwrap(), Value::Bool(false));
        assert_eq!(eval_sql("TRUE AND NULL").unwrap(), Value::Null);
        assert_eq!(eval_sql("TRUE OR NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("FALSE OR NULL").unwrap(), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_sql("1 < 2").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("2 <= 2").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("'abc' < 'abd'").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("2 <> 3").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("2.0 = 2").unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_and_between() {
        assert_eq!(eval_sql("2 IN (1, 2, 3)").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("5 IN (1, 2)").unwrap(), Value::Bool(false));
        assert_eq!(eval_sql("5 NOT IN (1, 2)").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("5 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_sql("2 BETWEEN 1 AND 3").unwrap(), Value::Bool(true));
        assert_eq!(
            eval_sql("0 NOT BETWEEN 1 AND 3").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_sql("NULL BETWEEN 1 AND 3").unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("MPI_Send()", "MPI%"));
        assert!(like_match("MPI_Send()", "%Send%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("x", ""));
        assert!(like_match("a%b", "a%b"));
        assert_eq!(eval_sql("'main' LIKE 'm%'").unwrap(), Value::Bool(true));
        assert_eq!(eval_sql("'main' NOT LIKE 'z%'").unwrap(), Value::Bool(true));
    }

    #[test]
    fn concat_and_strings() {
        assert_eq!(
            eval_sql("'a' || 'b' || 1").unwrap(),
            Value::Text("ab1".into())
        );
        assert_eq!(eval_sql("LOWER('MPI')").unwrap(), Value::Text("mpi".into()));
        assert_eq!(eval_sql("UPPER('mpi')").unwrap(), Value::Text("MPI".into()));
        assert_eq!(eval_sql("LENGTH('hello')").unwrap(), Value::Int(5));
        assert_eq!(eval_sql("TRIM('  x ')").unwrap(), Value::Text("x".into()));
        assert_eq!(
            eval_sql("SUBSTR('abcdef', 2, 3)").unwrap(),
            Value::Text("bcd".into())
        );
        assert_eq!(
            eval_sql("SUBSTR('abcdef', 3)").unwrap(),
            Value::Text("cdef".into())
        );
    }

    #[test]
    fn math_functions() {
        assert_eq!(eval_sql("ABS(-3)").unwrap(), Value::Int(3));
        assert_eq!(eval_sql("SQRT(9)").unwrap(), Value::Float(3.0));
        assert_eq!(eval_sql("FLOOR(2.7)").unwrap(), Value::Float(2.0));
        assert_eq!(eval_sql("CEIL(2.1)").unwrap(), Value::Float(3.0));
        assert_eq!(eval_sql("ROUND(2.567, 2)").unwrap(), Value::Float(2.57));
        assert_eq!(eval_sql("POWER(2, 10)").unwrap(), Value::Float(1024.0));
    }

    #[test]
    fn coalesce_nullif_case_cast() {
        assert_eq!(eval_sql("COALESCE(NULL, NULL, 7)").unwrap(), Value::Int(7));
        assert_eq!(eval_sql("COALESCE(NULL)").unwrap(), Value::Null);
        assert_eq!(eval_sql("NULLIF(1, 1)").unwrap(), Value::Null);
        assert_eq!(eval_sql("NULLIF(1, 2)").unwrap(), Value::Int(1));
        assert_eq!(
            eval_sql("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END").unwrap(),
            Value::Text("b".into())
        );
        assert_eq!(eval_sql("CASE WHEN FALSE THEN 1 END").unwrap(), Value::Null);
        assert_eq!(eval_sql("CAST('42' AS INTEGER)").unwrap(), Value::Int(42));
        assert_eq!(
            eval_sql("CAST(42 AS TEXT)").unwrap(),
            Value::Text("42".into())
        );
    }

    #[test]
    fn column_resolution() {
        let layout = Layout::new(vec![
            ("t".into(), vec!["id".into(), "name".into()]),
            ("e".into(), vec!["id".into(), "kind".into()]),
        ]);
        assert_eq!(layout.resolve(Some("e"), "kind").unwrap(), 3);
        assert_eq!(layout.resolve(None, "name").unwrap(), 1);
        assert!(matches!(
            layout.resolve(None, "id"),
            Err(DbError::AmbiguousColumn(_))
        ));
        assert!(layout.resolve(Some("x"), "id").is_err());
        assert!(layout.resolve(Some("t"), "zzz").is_err());
        assert_eq!(layout.binding_span("e"), Some((2, 2)));
        assert_eq!(layout.width(), 4);
    }

    #[test]
    fn params() {
        let layout = Layout::default();
        let params = vec![Value::Int(5)];
        let env = Env::new(&layout, &[], &params);
        assert_eq!(eval(&Expr::Param(0), &env).unwrap(), Value::Int(5));
        assert!(matches!(
            eval(&Expr::Param(1), &env),
            Err(DbError::MissingParameter(1))
        ));
    }

    #[test]
    fn aggregate_outside_grouping_is_error() {
        assert!(eval_sql("SUM(1)").is_err());
    }
}
