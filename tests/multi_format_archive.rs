//! Experiment E2 (paper §5.1, Figure 2): trials from three different
//! profiling tools — HPMtoolkit, mpiP, and TAU — stored in one database
//! archive and browsed back through the session API.

use perfdmf::core::DatabaseSession;
use perfdmf::db::{Connection, Value};
use perfdmf::import::{load_path, mpip, ProfileFormat};
use perfdmf::profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED};
use perfdmf::workload::{mpip_report_text, write_hpm_files, write_tau_directory, Evh1Model};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pdmf_arch_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn three_tool_archive_like_figure_2() {
    let tmp = tmpdir("fig2");

    // --- tool outputs for the same logical application ---
    let tau_run = Evh1Model::default_mix(99).generate(4);
    let tau_dir = tmp.join("tau");
    write_tau_directory(&tau_run, &tau_dir).unwrap();

    let mut hpm = Profile::new("hpm");
    let wall = hpm.add_metric(Metric::measured("HPM_WALL_CLOCK"));
    let sect = hpm.add_event(IntervalEvent::new("solver", "HPM"));
    hpm.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
    for &t in hpm.threads().to_vec().iter() {
        hpm.set_interval(sect, t, wall, IntervalData::new(42.0, 42.0, 7.0, 0.0));
    }
    let hpm_dir = tmp.join("hpm");
    write_hpm_files(&hpm, &hpm_dir).unwrap();

    let mut mp = Profile::new("mpip");
    let mt = mp.add_metric(Metric::measured("MPIP_TIME"));
    let app = mp.add_event(IntervalEvent::new("Application", "MPIP_APP"));
    let send = mp.add_event(IntervalEvent::new("MPI_Send() site 1", "MPI"));
    mp.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
    for &t in mp.threads().to_vec().iter() {
        mp.set_interval(
            app,
            t,
            mt,
            IntervalData::new(50.0, UNDEFINED, 1.0, UNDEFINED),
        );
        mp.set_interval(send, t, mt, IntervalData::new(4.0, 4.0, 64.0, 0.0));
    }
    let mpip_file = tmp.join("run.mpip");
    std::fs::write(&mpip_file, mpip_report_text(&mp, mt)).unwrap();

    // --- import and archive ---
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    let t_tau = session
        .store_profile("evh1", "tools", &load_path(&tau_dir).unwrap())
        .unwrap();
    let t_hpm = session
        .store_profile(
            "evh1",
            "tools",
            &ProfileFormat::HpmToolkit.load(&hpm_dir).unwrap(),
        )
        .unwrap();
    let t_mpip = session
        .store_profile("evh1", "tools", &mpip::load_mpip_file(&mpip_file).unwrap())
        .unwrap();

    // --- browse the tree: one application, one experiment, 3 trials ---
    session.reset();
    let apps = session.application_list().unwrap();
    assert_eq!(apps.len(), 1);
    session.set_application(apps[0].id.unwrap());
    let exps = session.experiment_list().unwrap();
    assert_eq!(exps.len(), 1);
    session.set_experiment(exps[0].id.unwrap());
    let trials = session.trial_list().unwrap();
    assert_eq!(trials.len(), 3);
    let formats: Vec<String> = trials
        .iter()
        .map(|t| {
            t.field("source_format")
                .and_then(|v| v.as_text().map(str::to_string))
                .unwrap_or_default()
        })
        .collect();
    assert!(formats.contains(&"tau".to_string()));
    assert!(formats.contains(&"hpmtoolkit".to_string()));
    assert!(formats.contains(&"mpip".to_string()));

    // --- each trial loads back with its own metrics intact ---
    session.set_trial(t_tau);
    assert!(session
        .metric_list()
        .unwrap()
        .contains(&"GET_TIME_OF_DAY".to_string()));
    session.set_trial(t_hpm);
    assert_eq!(session.metric_list().unwrap(), vec!["HPM_WALL_CLOCK"]);
    let hpm_back = session.load_profile().unwrap();
    let m = hpm_back.find_metric("HPM_WALL_CLOCK").unwrap();
    let e = hpm_back.find_event("solver").unwrap();
    assert_eq!(
        hpm_back
            .interval(e, ThreadId::new(2, 0, 0), m)
            .unwrap()
            .inclusive(),
        Some(42.0)
    );
    session.set_trial(t_mpip);
    let mpip_back = session.load_profile().unwrap();
    assert!(mpip_back.find_event("MPI_Send() site 1").is_some());

    // --- cross-trial SQL over the whole archive ---
    let rs = conn
        .query(
            "SELECT t.name, COUNT(*) AS events
             FROM trial t JOIN interval_event e ON e.trial = t.id
             GROUP BY t.name ORDER BY t.name",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 3);
    let total: i64 = rs.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(
        total,
        (tau_run.events().len() + 1 /*hpm solver*/ + 2/*mpip app+send*/) as i64
    );

    std::fs::remove_dir_all(&tmp).unwrap();
}

#[test]
fn archive_supports_metadata_policies() {
    // The paper: "it would be a simple matter to implement access
    // authorization" — the flexible schema carries such policy columns.
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    let p = Evh1Model::default_mix(5).generate(2);
    let trial = session.store_profile("evh1", "secure", &p).unwrap();
    conn.execute(
        "ALTER TABLE trial ADD COLUMN owner TEXT DEFAULT 'perf-team'",
        &[],
    )
    .unwrap();
    conn.execute(
        "ALTER TABLE trial ADD COLUMN visibility TEXT DEFAULT 'private'",
        &[],
    )
    .unwrap();
    conn.update(
        "UPDATE trial SET visibility = 'shared' WHERE id = ?",
        &[Value::Int(trial)],
    )
    .unwrap();
    let rs = conn
        .query(
            "SELECT name FROM trial WHERE visibility = 'shared' AND owner = 'perf-team'",
            &[],
        )
        .unwrap();
    assert_eq!(rs.rows.len(), 1);
}
