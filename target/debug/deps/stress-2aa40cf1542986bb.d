/root/repo/target/debug/deps/stress-2aa40cf1542986bb.d: crates/db/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-2aa40cf1542986bb.rmeta: crates/db/tests/stress.rs Cargo.toml

crates/db/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
