//! mpiP importer.
//!
//! mpiP (Vetter & Chambreau) writes a single text report per run with `@`
//! section markers. This importer reads:
//!
//! * `@--- MPI Time (seconds)` — per-task application and MPI time, which
//!   become the `Application` and aggregate `MPI` events per rank;
//! * `@--- Callsite Time statistics` — per-rank, per-callsite operation
//!   statistics, which become one event per `<op> site <n>` with
//!   exclusive time = count × mean and call count = count.
//!
//! Times in the statistics section are milliseconds (as mpiP reports);
//! they are converted to seconds to match the MPI Time section.

use crate::error::{ImportError, Result};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED};

const FORMAT: &str = "mpip";

/// Parse an mpiP report into a profile (one thread per MPI task).
pub fn parse_mpip_text(text: &str, profile: &mut Profile) -> Result<()> {
    let metric = profile.add_metric(Metric::measured("MPIP_TIME"));
    let app_event = profile.add_event(IntervalEvent::new("Application", "MPIP_APP"));

    #[derive(PartialEq)]
    enum Section {
        None,
        MpiTime,
        CallsiteStats,
    }
    let mut section = Section::None;
    let mut header_skipped = false;
    let mut saw_task_times = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with("@---") {
            // Pure separator rules ("@------...") delimit sections without
            // naming one; they must not reset the current section.
            if line.chars().all(|c| c == '@' || c == '-') {
                continue;
            }
            section = if line.contains("MPI Time") {
                Section::MpiTime
            } else if line.contains("Callsite Time statistics") {
                Section::CallsiteStats
            } else {
                Section::None
            };
            header_skipped = false;
            continue;
        }
        if line.starts_with('@') || line.is_empty() {
            continue;
        }
        match section {
            Section::None => {}
            Section::MpiTime => {
                if !header_skipped {
                    // "Task    AppTime    MPITime     MPI%"
                    if line.starts_with("Task") {
                        header_skipped = true;
                    }
                    continue;
                }
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.len() < 3 {
                    continue;
                }
                if fields[0] == "*" {
                    continue; // aggregate row
                }
                let task: u32 = fields[0]
                    .parse()
                    .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad task number"))?;
                let app_time: f64 = fields[1]
                    .parse()
                    .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad AppTime"))?;
                let thread = ThreadId::new(task, 0, 0);
                profile.add_thread(thread);
                profile.set_interval(
                    app_event,
                    thread,
                    metric,
                    IntervalData::new(app_time, UNDEFINED, 1.0, UNDEFINED),
                );
                saw_task_times = true;
            }
            Section::CallsiteStats => {
                if !header_skipped {
                    if line.starts_with("Name") {
                        header_skipped = true;
                    }
                    continue;
                }
                // "Send  1  0  20  0.435  0.267  0.119  28.9  92.2"
                let fields: Vec<&str> = line.split_whitespace().collect();
                if fields.len() < 7 {
                    continue;
                }
                let name = fields[0];
                let site = fields[1];
                if fields[2] == "*" {
                    continue; // cross-rank aggregate row
                }
                let rank: u32 = match fields[2].parse() {
                    Ok(r) => r,
                    Err(_) => continue,
                };
                let count: f64 = fields[3]
                    .parse()
                    .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad callsite count"))?;
                let mean_ms: f64 = fields[5]
                    .parse()
                    .map_err(|_| ImportError::format(FORMAT, lineno + 1, "bad callsite mean"))?;
                let thread = ThreadId::new(rank, 0, 0);
                profile.add_thread(thread);
                let ev = profile.add_event(IntervalEvent::new(
                    format!("MPI_{name}() site {site}"),
                    "MPI",
                ));
                let total_s = count * mean_ms / 1000.0;
                profile.set_interval(
                    ev,
                    thread,
                    metric,
                    IntervalData::new(total_s, total_s, count, 0.0),
                );
            }
        }
    }

    if !saw_task_times {
        return Err(ImportError::format(
            FORMAT,
            0,
            "no '@--- MPI Time' section found",
        ));
    }
    profile.recompute_derived_fields(metric);
    Ok(())
}

/// Load an mpiP report file.
pub fn load_mpip_file(path: &std::path::Path) -> Result<Profile> {
    let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
    let mut profile = Profile::new(
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    profile.source_format = "mpip".into();
    parse_mpip_text(&text, &mut profile)?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
@ mpiP
@ Command : ./sppm
@ Version : 3.4.1
@--------------------------------------------------------------
@--- MPI Time (seconds) ---------------------------------------
@--------------------------------------------------------------
Task    AppTime    MPITime     MPI%
   0       10.0        3.0    30.00
   1       10.2        3.4    33.33
   *       20.2        6.4    31.68
@--------------------------------------------------------------
@--- Callsite Time statistics (all, milliseconds): 4 ----------
@--------------------------------------------------------------
Name              Site Rank  Count      Max     Mean      Min   App%   MPI%
Send                 1    0     20     40.0    100.0     10.0   20.0   66.7
Send                 1    1     22     50.0    100.0     11.0   21.6   64.7
Barrier              2    0      5    100.0    200.0     90.0   10.0   33.3
Send                 1    *     42     50.0    100.0     10.0   20.8   65.6
";

    #[test]
    fn parses_tasks_and_callsites() {
        let mut p = Profile::new("t");
        parse_mpip_text(SAMPLE, &mut p).unwrap();
        assert_eq!(p.threads().len(), 2);
        let m = p.find_metric("MPIP_TIME").unwrap();
        let app = p.find_event("Application").unwrap();
        let d = p.interval(app, ThreadId::new(1, 0, 0), m).unwrap();
        assert_eq!(d.inclusive(), Some(10.2));
        let send = p.find_event("MPI_Send() site 1").unwrap();
        let d = p.interval(send, ThreadId::new(0, 0, 0), m).unwrap();
        assert_eq!(d.exclusive(), Some(2.0)); // 20 * 100ms
        assert_eq!(d.calls(), Some(20.0));
        let bar = p.find_event("MPI_Barrier() site 2").unwrap();
        assert!(p.interval(bar, ThreadId::new(1, 0, 0), m).is_none());
        assert_eq!(p.event(send).group, "MPI");
    }

    #[test]
    fn aggregate_rows_skipped() {
        let mut p = Profile::new("t");
        parse_mpip_text(SAMPLE, &mut p).unwrap();
        // '*' rows must not create a thread
        assert!(p.threads().iter().all(|t| t.node < 2));
    }

    #[test]
    fn missing_sections_rejected() {
        let mut p = Profile::new("t");
        assert!(parse_mpip_text("@ mpiP\n@ Command: x\n", &mut p).is_err());
    }

    #[test]
    fn malformed_inputs_error_without_panicking() {
        // Corrupt callsite statistics produce structured errors.
        let bad_count = "\
@--- MPI Time (seconds) ---
Task    AppTime    MPITime     MPI%
   0       10.0        3.0    30.00
@--- Callsite Time statistics (all, milliseconds): 1 ----------
Name              Site Rank  Count      Max     Mean      Min   App%   MPI%
Send                 1    0    ???     40.0    100.0     10.0   20.0   66.7
";
        let mut p = Profile::new("t");
        let err = parse_mpip_text(bad_count, &mut p).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");

        // Truncating a valid report at every byte must yield Ok or a
        // structured error — never a panic.
        for i in 0..SAMPLE.len() {
            let mut p = Profile::new("t");
            let _ = parse_mpip_text(&SAMPLE[..i], &mut p);
        }
    }

    #[test]
    fn malformed_task_line_rejected() {
        let text = "\
@--- MPI Time (seconds) ---
Task    AppTime    MPITime     MPI%
   0        bad        3.0    30.00
";
        let mut p = Profile::new("t");
        assert!(parse_mpip_text(text, &mut p).is_err());
    }
}
