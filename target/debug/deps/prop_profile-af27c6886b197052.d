/root/repo/target/debug/deps/prop_profile-af27c6886b197052.d: crates/profile/tests/prop_profile.rs

/root/repo/target/debug/deps/prop_profile-af27c6886b197052: crates/profile/tests/prop_profile.rs

crates/profile/tests/prop_profile.rs:
