/root/repo/target/release/examples/_verify_probe-39b6e026d428c82c.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-39b6e026d428c82c: examples/_verify_probe.rs

examples/_verify_probe.rs:
