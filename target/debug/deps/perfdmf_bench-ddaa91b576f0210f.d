/root/repo/target/debug/deps/perfdmf_bench-ddaa91b576f0210f.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_bench-ddaa91b576f0210f.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
