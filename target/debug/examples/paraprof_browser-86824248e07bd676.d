/root/repo/target/debug/examples/paraprof_browser-86824248e07bd676.d: examples/paraprof_browser.rs

/root/repo/target/debug/examples/paraprof_browser-86824248e07bd676: examples/paraprof_browser.rs

examples/paraprof_browser.rs:
