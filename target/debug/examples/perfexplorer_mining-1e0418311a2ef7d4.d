/root/repo/target/debug/examples/perfexplorer_mining-1e0418311a2ef7d4.d: examples/perfexplorer_mining.rs

/root/repo/target/debug/examples/perfexplorer_mining-1e0418311a2ef7d4: examples/perfexplorer_mining.rs

examples/perfexplorer_mining.rs:
