//! The `DataSession` query/management API (paper §4).
//!
//! "Once the session has been initialized, a call to
//! `getApplicationList()` will return a list of Application objects, from
//! which the desired application is selected and set as a filter for
//! subsequent queries. The code is similar for listing and selecting
//! Experiment, Trial, IntervalEvent and AtomicEvent objects. Once an
//! object is selected, all further query operations are filtered based on
//! that particular context."
//!
//! Two access methods exist, as in the paper: [`DatabaseSession`] (the
//! `PerfDMFSession` equivalent — query/store against the database without
//! loading whole trials) and [`FileSession`] (parse profile files directly,
//! no database required). They share the same profile objects, and neither
//! precludes the other.

use crate::objects::FlexRow;
use crate::schema::create_schema;
use crate::upload::{load_trial_filtered, save_profile, LoadFilter};
use perfdmf_db::{Connection, DbError, Result, ResultSet, Value};
use perfdmf_profile::Profile;
use perfdmf_telemetry as telemetry;

/// A row of the INTERVAL_EVENT table.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalEventRow {
    /// Database id.
    pub id: i64,
    /// Event name.
    pub name: String,
    /// Event group.
    pub group: String,
}

/// A row of the ATOMIC_EVENT table.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicEventRow {
    /// Database id.
    pub id: i64,
    /// Event name.
    pub name: String,
    /// Event group.
    pub group: String,
}

/// Cross-thread aggregate of one event+metric (paper §5.2: "standard SQL
/// aggregate operations such as minimum, maximum, mean, standard deviation
/// and others").
#[derive(Debug, Clone, PartialEq)]
pub struct EventAggregate {
    /// Interval event database id.
    pub event_id: i64,
    /// Event name.
    pub event_name: String,
    /// Threads contributing.
    pub count: i64,
    /// MIN(exclusive).
    pub min_exclusive: Option<f64>,
    /// MAX(exclusive).
    pub max_exclusive: Option<f64>,
    /// AVG(exclusive).
    pub mean_exclusive: Option<f64>,
    /// STDDEV(exclusive).
    pub stddev_exclusive: Option<f64>,
    /// AVG(inclusive).
    pub mean_inclusive: Option<f64>,
}

/// Database-backed session with hierarchical selection filters.
#[derive(Debug, Clone)]
pub struct DatabaseSession {
    conn: Connection,
    application: Option<i64>,
    experiment: Option<i64>,
    trial: Option<i64>,
    metric: Option<String>,
    node: Option<u32>,
    context: Option<u32>,
    thread: Option<u32>,
}

impl DatabaseSession {
    /// Open a session over an existing connection, creating the PerfDMF
    /// schema if it is not present.
    pub fn new(conn: Connection) -> Result<Self> {
        create_schema(&conn)?;
        Ok(DatabaseSession {
            conn,
            application: None,
            experiment: None,
            trial: None,
            metric: None,
            node: None,
            context: None,
            thread: None,
        })
    }

    /// The underlying connection (for direct SQL, as the paper allows).
    pub fn connection(&self) -> &Connection {
        &self.conn
    }

    // ---------------- selection ----------------

    /// Select an application; clears narrower selections.
    pub fn set_application(&mut self, id: i64) {
        self.application = Some(id);
        self.experiment = None;
        self.trial = None;
    }

    /// Select an experiment; clears narrower selections.
    pub fn set_experiment(&mut self, id: i64) {
        self.experiment = Some(id);
        self.trial = None;
    }

    /// Select a trial.
    pub fn set_trial(&mut self, id: i64) {
        self.trial = Some(id);
    }

    /// Select a metric by name (filters profile loads and aggregates).
    pub fn set_metric(&mut self, name: impl Into<String>) {
        self.metric = Some(name.into());
    }

    /// Select a node (None clears).
    pub fn set_node(&mut self, node: Option<u32>) {
        self.node = node;
    }

    /// Select a context.
    pub fn set_context(&mut self, context: Option<u32>) {
        self.context = context;
    }

    /// Select a thread.
    pub fn set_thread(&mut self, thread: Option<u32>) {
        self.thread = thread;
    }

    /// Clear every selection.
    pub fn reset(&mut self) {
        *self = DatabaseSession {
            conn: self.conn.clone(),
            application: None,
            experiment: None,
            trial: None,
            metric: None,
            node: None,
            context: None,
            thread: None,
        };
    }

    /// Currently selected trial id.
    pub fn selected_trial(&self) -> Option<i64> {
        self.trial
    }

    // ---------------- listing (the getXxxList() family) ----------------

    /// All applications (`getApplicationList()`).
    pub fn application_list(&self) -> Result<Vec<FlexRow>> {
        let rs = self
            .conn
            .query("SELECT * FROM application ORDER BY id", &[])?;
        Ok(materialize(&rs))
    }

    /// Experiments, filtered by the selected application.
    pub fn experiment_list(&self) -> Result<Vec<FlexRow>> {
        let rs = match self.application {
            Some(app) => self.conn.query(
                "SELECT * FROM experiment WHERE application = ? ORDER BY id",
                &[Value::Int(app)],
            )?,
            None => self
                .conn
                .query("SELECT * FROM experiment ORDER BY id", &[])?,
        };
        Ok(materialize(&rs))
    }

    /// Trials, filtered by the selected experiment (or application).
    pub fn trial_list(&self) -> Result<Vec<FlexRow>> {
        let rs = match (self.experiment, self.application) {
            (Some(exp), _) => self.conn.query(
                "SELECT * FROM trial WHERE experiment = ? ORDER BY id",
                &[Value::Int(exp)],
            )?,
            (None, Some(app)) => self.conn.query(
                "SELECT t.* FROM trial t JOIN experiment e ON t.experiment = e.id
                 WHERE e.application = ? ORDER BY t.id",
                &[Value::Int(app)],
            )?,
            (None, None) => self.conn.query("SELECT * FROM trial ORDER BY id", &[])?,
        };
        Ok(materialize(&rs))
    }

    /// Metric names of the selected trial.
    pub fn metric_list(&self) -> Result<Vec<String>> {
        let trial = self.require_trial()?;
        let rs = self.conn.query(
            "SELECT name FROM metric WHERE trial = ? ORDER BY id",
            &[Value::Int(trial)],
        )?;
        Ok(rs
            .rows
            .iter()
            .map(|r| r[0].as_text().unwrap_or("").to_string())
            .collect())
    }

    /// Interval events of the selected trial.
    pub fn interval_event_list(&self) -> Result<Vec<IntervalEventRow>> {
        let trial = self.require_trial()?;
        let rs = self.conn.query(
            "SELECT id, name, group_name FROM interval_event WHERE trial = ? ORDER BY id",
            &[Value::Int(trial)],
        )?;
        Ok(rs
            .rows
            .iter()
            .map(|r| IntervalEventRow {
                id: r[0].as_int().expect("pk"),
                name: r[1].as_text().unwrap_or("").to_string(),
                group: r[2].as_text().unwrap_or("").to_string(),
            })
            .collect())
    }

    /// Atomic events of the selected trial.
    pub fn atomic_event_list(&self) -> Result<Vec<AtomicEventRow>> {
        let trial = self.require_trial()?;
        let rs = self.conn.query(
            "SELECT id, name, group_name FROM atomic_event WHERE trial = ? ORDER BY id",
            &[Value::Int(trial)],
        )?;
        Ok(rs
            .rows
            .iter()
            .map(|r| AtomicEventRow {
                id: r[0].as_int().expect("pk"),
                name: r[1].as_text().unwrap_or("").to_string(),
                group: r[2].as_text().unwrap_or("").to_string(),
            })
            .collect())
    }

    fn require_trial(&self) -> Result<i64> {
        self.trial
            .ok_or_else(|| DbError::Unsupported("no trial selected (call set_trial first)".into()))
    }

    // ---------------- storage ----------------

    /// Create (or reuse) the application/experiment hierarchy and store a
    /// trial with its profile. Returns the trial id.
    ///
    /// The `session.store_profile` span encloses every statement issued
    /// here; with causal tracing on, the whole store — including any
    /// partitioned bulk-insert work on pool threads — lands in the
    /// flight recorder as one span tree.
    pub fn store_profile(
        &mut self,
        application: &str,
        experiment: &str,
        profile: &Profile,
    ) -> Result<i64> {
        let _span = telemetry::span("session.store_profile");
        let app_id = match self
            .conn
            .query(
                "SELECT id FROM application WHERE name = ?",
                &[Value::Text(application.into())],
            )?
            .scalar()
            .and_then(Value::as_int)
        {
            Some(id) => id,
            None => {
                let mut app = FlexRow::new(application);
                app.save(&self.conn, "application")?
            }
        };
        let exp_id = match self
            .conn
            .query(
                "SELECT id FROM experiment WHERE name = ? AND application = ?",
                &[Value::Text(experiment.into()), Value::Int(app_id)],
            )?
            .scalar()
            .and_then(Value::as_int)
        {
            Some(id) => id,
            None => {
                let mut exp = FlexRow::new(experiment).with_field("application", app_id);
                exp.save(&self.conn, "experiment")?
            }
        };
        let nodes: i64 = profile
            .threads()
            .iter()
            .map(|t| t.node)
            .max()
            .map(|m| m as i64 + 1)
            .unwrap_or(0);
        let contexts: i64 = profile
            .threads()
            .iter()
            .map(|t| t.context)
            .max()
            .map(|m| m as i64 + 1)
            .unwrap_or(0);
        let threads: i64 = profile
            .threads()
            .iter()
            .map(|t| t.thread)
            .max()
            .map(|m| m as i64 + 1)
            .unwrap_or(0);
        let mut trial = FlexRow::new(&profile.name)
            .with_field("experiment", exp_id)
            .with_field("node_count", nodes)
            .with_field("contexts_per_node", contexts)
            .with_field("threads_per_context", threads)
            .with_field("source_format", profile.source_format.as_str());
        let trial_id = trial.save(&self.conn, "trial")?;
        let rows = save_profile(&self.conn, trial_id, profile)?;
        telemetry::add("session.profiles_stored", 1);
        telemetry::add("session.rows_stored", rows as u64);
        self.application = Some(app_id);
        self.experiment = Some(exp_id);
        self.trial = Some(trial_id);
        Ok(trial_id)
    }

    /// Load the selected trial's profile, honoring the metric and
    /// node/context/thread selections.
    pub fn load_profile(&self) -> Result<Profile> {
        let _span = telemetry::span("session.load_profile");
        let trial = self.require_trial()?;
        let filter = LoadFilter {
            node: self.node,
            context: self.context,
            thread: self.thread,
            metric: self.metric.clone(),
        };
        let profile = load_trial_filtered(&self.conn, trial, &filter)?;
        telemetry::add("session.profiles_loaded", 1);
        Ok(profile)
    }

    // ---------------- aggregates ----------------

    /// Per-event cross-thread aggregates of the selected trial, computed
    /// by the DBMS (MIN/MAX/AVG/STDDEV pushed into SQL).
    pub fn event_aggregates(&self, metric_name: &str) -> Result<Vec<EventAggregate>> {
        let trial = self.require_trial()?;
        let rs = self.conn.query(
            "SELECT e.id, e.name, COUNT(*) AS n,
                    MIN(p.exclusive) AS mn, MAX(p.exclusive) AS mx,
                    AVG(p.exclusive) AS avg_excl, STDDEV(p.exclusive) AS sd,
                    AVG(p.inclusive) AS avg_incl
             FROM interval_location_profile p
             JOIN interval_event e ON p.interval_event = e.id
             JOIN metric m ON p.metric = m.id
             WHERE e.trial = ? AND m.name = ?
             GROUP BY e.id, e.name
             ORDER BY e.id",
            &[Value::Int(trial), Value::Text(metric_name.into())],
        )?;
        Ok(rs
            .rows
            .iter()
            .map(|r| EventAggregate {
                event_id: r[0].as_int().expect("pk"),
                event_name: r[1].as_text().unwrap_or("").to_string(),
                count: r[2].as_int().unwrap_or(0),
                min_exclusive: r[3].as_float(),
                max_exclusive: r[4].as_float(),
                mean_exclusive: r[5].as_float(),
                stddev_exclusive: r[6].as_float(),
                mean_inclusive: r[7].as_float(),
            })
            .collect())
    }
}

fn materialize(rs: &ResultSet) -> Vec<FlexRow> {
    rs.rows
        .iter()
        .map(|r| FlexRow::from_result_row(&rs.columns, r))
        .collect()
}

/// File-based session: parse profiles straight from tool output, no
/// database involved (the paper's first access method).
#[derive(Debug, Default)]
pub struct FileSession {
    profiles: Vec<Profile>,
}

impl FileSession {
    /// Empty session.
    pub fn new() -> Self {
        FileSession::default()
    }

    /// Load a path (autodetected format) into the session.
    pub fn load(&mut self, path: &std::path::Path) -> perfdmf_import::Result<&Profile> {
        let p = perfdmf_import::load_path(path)?;
        self.profiles.push(p);
        Ok(self.profiles.last().expect("just pushed"))
    }

    /// Add an already-parsed profile.
    pub fn add(&mut self, profile: Profile) {
        self.profiles.push(profile);
    }

    /// Loaded profiles.
    pub fn profiles(&self) -> &[Profile] {
        &self.profiles
    }

    /// Store every loaded profile into a database session under one
    /// application/experiment. Returns trial ids. (Bridges the two access
    /// methods — "the two are not mutually exclusive", §4.)
    pub fn store_all(
        &self,
        session: &mut DatabaseSession,
        application: &str,
        experiment: &str,
    ) -> Result<Vec<i64>> {
        let mut ids = Vec::with_capacity(self.profiles.len());
        for p in &self.profiles {
            ids.push(session.store_profile(application, experiment, p)?);
        }
        Ok(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric, ThreadId};

    fn tiny_profile(name: &str, scale: f64) -> Profile {
        let mut p = Profile::new(name);
        p.source_format = "tau".into();
        let m = p.add_metric(Metric::measured("TIME"));
        let main = p.add_event(IntervalEvent::new("main", "TAU_USER"));
        let send = p.add_event(IntervalEvent::new("MPI_Send()", "MPI"));
        p.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            p.set_interval(
                main,
                t,
                m,
                IntervalData::new(scale * 100.0, scale * (50.0 + i as f64), 1.0, 1.0),
            );
            p.set_interval(
                send,
                t,
                m,
                IntervalData::new(
                    scale * (30.0 + i as f64),
                    scale * (30.0 + i as f64),
                    5.0,
                    0.0,
                ),
            );
        }
        p
    }

    fn session() -> DatabaseSession {
        DatabaseSession::new(Connection::open_in_memory()).unwrap()
    }

    #[test]
    fn hierarchical_listing_and_selection() {
        let mut s = session();
        s.store_profile("evh1", "scaling", &tiny_profile("p4", 1.0))
            .unwrap();
        s.store_profile("evh1", "scaling", &tiny_profile("p8", 0.6))
            .unwrap();
        s.store_profile("evh1", "tuning", &tiny_profile("t1", 1.0))
            .unwrap();
        s.store_profile("sppm", "counters", &tiny_profile("c1", 1.0))
            .unwrap();

        s.reset();
        let apps = s.application_list().unwrap();
        assert_eq!(apps.len(), 2);
        let evh1 = apps.iter().find(|a| a.name == "evh1").unwrap();
        s.set_application(evh1.id.unwrap());
        let exps = s.experiment_list().unwrap();
        assert_eq!(exps.len(), 2);
        let scaling = exps.iter().find(|e| e.name == "scaling").unwrap();
        s.set_experiment(scaling.id.unwrap());
        let trials = s.trial_list().unwrap();
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].name, "p4");
        // selecting application alone also filters trials via join
        s.set_application(evh1.id.unwrap());
        assert_eq!(s.trial_list().unwrap().len(), 3);
    }

    #[test]
    fn trial_contents_listing() {
        let mut s = session();
        let trial = s.store_profile("a", "e", &tiny_profile("t", 1.0)).unwrap();
        s.set_trial(trial);
        assert_eq!(s.metric_list().unwrap(), vec!["TIME"]);
        let events = s.interval_event_list().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].group, "MPI");
        assert!(s.atomic_event_list().unwrap().is_empty());
    }

    #[test]
    fn selection_required_for_trial_queries() {
        let s = session();
        assert!(s.metric_list().is_err());
        assert!(s.load_profile().is_err());
    }

    #[test]
    fn filtered_profile_load() {
        let mut s = session();
        let trial = s.store_profile("a", "e", &tiny_profile("t", 1.0)).unwrap();
        s.set_trial(trial);
        s.set_node(Some(2));
        let p = s.load_profile().unwrap();
        assert_eq!(p.threads().len(), 1);
        assert_eq!(p.threads()[0], ThreadId::new(2, 0, 0));
        s.set_node(None);
        let p = s.load_profile().unwrap();
        assert_eq!(p.threads().len(), 4);
    }

    #[test]
    fn aggregates_match_profile_stats() {
        let mut s = session();
        let prof = tiny_profile("t", 1.0);
        let trial = s.store_profile("a", "e", &prof).unwrap();
        s.set_trial(trial);
        let aggs = s.event_aggregates("TIME").unwrap();
        assert_eq!(aggs.len(), 2);
        let send = aggs.iter().find(|a| a.event_name == "MPI_Send()").unwrap();
        assert_eq!(send.count, 4);
        assert_eq!(send.min_exclusive, Some(30.0));
        assert_eq!(send.max_exclusive, Some(33.0));
        assert_eq!(send.mean_exclusive, Some(31.5));
        // cross-check stddev against the profile-side computation
        let m = prof.find_metric("TIME").unwrap();
        let e = prof.find_event("MPI_Send()").unwrap();
        let stats = prof
            .event_stats(e, m, perfdmf_profile::IntervalField::Exclusive)
            .unwrap();
        assert!((send.stddev_exclusive.unwrap() - stats.stddev).abs() < 1e-9);
    }

    #[test]
    fn store_reuses_existing_hierarchy() {
        let mut s = session();
        s.store_profile("a", "e", &tiny_profile("t1", 1.0)).unwrap();
        s.store_profile("a", "e", &tiny_profile("t2", 1.0)).unwrap();
        assert_eq!(s.connection().row_count("application").unwrap(), 1);
        assert_eq!(s.connection().row_count("experiment").unwrap(), 1);
        assert_eq!(s.connection().row_count("trial").unwrap(), 2);
    }

    #[test]
    fn trial_row_captures_dimensions() {
        let mut s = session();
        let trial = s.store_profile("a", "e", &tiny_profile("t", 1.0)).unwrap();
        let row = FlexRow::load(s.connection(), "trial", trial).unwrap();
        assert_eq!(row.field("node_count"), Some(&Value::Int(4)));
        assert_eq!(row.field("contexts_per_node"), Some(&Value::Int(1)));
        assert_eq!(row.field("threads_per_context"), Some(&Value::Int(1)));
        assert_eq!(row.field("source_format"), Some(&Value::from("tau")));
    }
}
