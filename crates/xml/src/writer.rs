//! Streaming XML writer.

use crate::error::{Error, Result};
use crate::escape::{escape_attr, escape_text};

/// State of the element the writer is currently inside.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TagState {
    /// `<name` written, attributes may still be added.
    Open,
    /// The `>` has been written; content may follow.
    HasContent,
    /// Element has child elements (affects pretty-printing of the end tag).
    HasChildElements,
}

/// A streaming writer producing well-formed XML into any `fmt::Write` sink.
///
/// The writer enforces correct usage at runtime: attributes may only be
/// added immediately after [`Writer::begin`], every `begin` must be matched
/// by [`Writer::end`], and [`Writer::finish`] verifies the document is
/// complete.
///
/// Pretty-printing (two-space indent) is on by default; use
/// [`Writer::compact`] for single-line output.
pub struct Writer<'a> {
    out: &'a mut dyn std::fmt::Write,
    stack: Vec<(String, TagState)>,
    pretty: bool,
    wrote_root: bool,
    wrote_decl: bool,
}

impl<'a> Writer<'a> {
    /// Create a pretty-printing writer.
    pub fn new(out: &'a mut dyn std::fmt::Write) -> Self {
        Writer {
            out,
            stack: Vec::new(),
            pretty: true,
            wrote_root: false,
            wrote_decl: false,
        }
    }

    /// Create a writer that emits no insignificant whitespace.
    pub fn compact(out: &'a mut dyn std::fmt::Write) -> Self {
        let mut w = Self::new(out);
        w.pretty = false;
        w
    }

    /// Write the `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    ///
    /// Must be called before any element is begun.
    pub fn declaration(&mut self) -> Result<()> {
        if self.wrote_root || !self.stack.is_empty() {
            return Err(Error::WriterMisuse(
                "declaration must precede the root element",
            ));
        }
        if self.wrote_decl {
            return Err(Error::WriterMisuse("declaration written twice"));
        }
        self.wrote_decl = true;
        self.out
            .write_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>")?;
        if self.pretty {
            self.out.write_char('\n')?;
        }
        Ok(())
    }

    fn close_pending(&mut self, child_is_element: bool) -> Result<()> {
        if let Some((_, state)) = self.stack.last_mut() {
            if *state == TagState::Open {
                self.out.write_char('>')?;
                *state = TagState::HasContent;
            }
            if child_is_element {
                *state = TagState::HasChildElements;
            }
        }
        Ok(())
    }

    fn newline_indent(&mut self) -> Result<()> {
        if self.pretty {
            self.out.write_char('\n')?;
            for _ in 0..self.stack.len() {
                self.out.write_str("  ")?;
            }
        }
        Ok(())
    }

    /// Open an element. Attributes may be added until content is written.
    pub fn begin(&mut self, name: &str) -> Result<()> {
        if self.stack.is_empty() && self.wrote_root {
            return Err(Error::WriterMisuse(
                "document may have only one root element",
            ));
        }
        self.close_pending(true)?;
        if !self.stack.is_empty() {
            self.newline_indent()?;
        }
        write!(self.out, "<{name}")?;
        self.stack.push((name.to_string(), TagState::Open));
        self.wrote_root = true;
        Ok(())
    }

    /// Add an attribute to the most recently begun element.
    pub fn attr(&mut self, name: &str, value: &str) -> Result<()> {
        match self.stack.last() {
            Some((_, TagState::Open)) => {
                write!(self.out, " {name}=\"{}\"", escape_attr(value))?;
                Ok(())
            }
            _ => Err(Error::WriterMisuse(
                "attr() must immediately follow begin() on the same element",
            )),
        }
    }

    /// Add an attribute with a `Display` value (numbers, etc.).
    pub fn attr_fmt(&mut self, name: &str, value: impl std::fmt::Display) -> Result<()> {
        self.attr(name, &value.to_string())
    }

    /// Write escaped character data inside the current element.
    pub fn text(&mut self, text: &str) -> Result<()> {
        if self.stack.is_empty() {
            return Err(Error::WriterMisuse("text outside of any element"));
        }
        self.close_pending(false)?;
        write!(self.out, "{}", escape_text(text))?;
        Ok(())
    }

    /// Write a CDATA section. `]]>` inside the payload is split safely.
    pub fn cdata(&mut self, text: &str) -> Result<()> {
        if self.stack.is_empty() {
            return Err(Error::WriterMisuse("CDATA outside of any element"));
        }
        self.close_pending(false)?;
        // A literal "]]>" cannot appear inside CDATA; split it across sections.
        let escaped = text.replace("]]>", "]]]]><![CDATA[>");
        write!(self.out, "<![CDATA[{escaped}]]>")?;
        Ok(())
    }

    /// Write a comment. `--` in the payload is rewritten to `- -`.
    pub fn comment(&mut self, text: &str) -> Result<()> {
        self.close_pending(true)?;
        if !self.stack.is_empty() {
            self.newline_indent()?;
        }
        let safe = text.replace("--", "- -");
        write!(self.out, "<!--{safe}-->")?;
        Ok(())
    }

    /// Close the most recently opened element.
    pub fn end(&mut self) -> Result<()> {
        let (name, state) = self
            .stack
            .pop()
            .ok_or(Error::WriterMisuse("end() with no open element"))?;
        match state {
            TagState::Open => {
                self.out.write_str("/>")?;
            }
            TagState::HasContent => {
                write!(self.out, "</{name}>")?;
            }
            TagState::HasChildElements => {
                self.newline_indent()?;
                write!(self.out, "</{name}>")?;
            }
        }
        Ok(())
    }

    /// Convenience: `<name>text</name>`.
    pub fn text_element(&mut self, name: &str, text: &str) -> Result<()> {
        self.begin(name)?;
        self.text(text)?;
        self.end()
    }

    /// Convenience: `<name>value</name>` with a `Display` value.
    pub fn value_element(&mut self, name: &str, value: impl std::fmt::Display) -> Result<()> {
        self.text_element(name, &value.to_string())
    }

    /// Verify the document is complete (all elements closed, root written).
    pub fn finish(&mut self) -> Result<()> {
        if !self.stack.is_empty() {
            return Err(Error::WriterMisuse("finish() with unclosed elements"));
        }
        if !self.wrote_root {
            return Err(Error::WriterMisuse("finish() before any root element"));
        }
        if self.pretty {
            self.out.write_char('\n')?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::{Event, Reader};

    fn write_sample(pretty: bool) -> String {
        let mut s = String::new();
        let mut w = if pretty {
            Writer::new(&mut s)
        } else {
            Writer::compact(&mut s)
        };
        w.declaration().unwrap();
        w.begin("trial").unwrap();
        w.attr("name", "run<1>").unwrap();
        w.attr_fmt("nodes", 16).unwrap();
        w.begin("event").unwrap();
        w.attr("group", "MPI").unwrap();
        w.text("MPI_Send()").unwrap();
        w.end().unwrap();
        w.begin("empty").unwrap();
        w.end().unwrap();
        w.end().unwrap();
        w.finish().unwrap();
        s
    }

    #[test]
    fn compact_output_exact() {
        assert_eq!(
            write_sample(false),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><trial name=\"run&lt;1&gt;\" nodes=\"16\"><event group=\"MPI\">MPI_Send()</event><empty/></trial>"
        );
    }

    #[test]
    fn pretty_output_parses_back() {
        let s = write_sample(true);
        assert!(s.contains("\n  <event"));
        let mut r = Reader::new(&s);
        let mut names = Vec::new();
        loop {
            match r.next_event().unwrap() {
                Event::Start { name, .. } | Event::Empty { name, .. } => names.push(name),
                Event::Eof => break,
                _ => {}
            }
        }
        assert_eq!(names, ["trial", "event", "empty"]);
    }

    #[test]
    fn attr_after_content_rejected() {
        let mut s = String::new();
        let mut w = Writer::new(&mut s);
        w.begin("a").unwrap();
        w.text("x").unwrap();
        assert!(w.attr("late", "no").is_err());
    }

    #[test]
    fn unbalanced_end_rejected() {
        let mut s = String::new();
        let mut w = Writer::new(&mut s);
        assert!(w.end().is_err());
    }

    #[test]
    fn finish_with_open_element_rejected() {
        let mut s = String::new();
        let mut w = Writer::new(&mut s);
        w.begin("a").unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn two_roots_rejected() {
        let mut s = String::new();
        let mut w = Writer::new(&mut s);
        w.begin("a").unwrap();
        w.end().unwrap();
        assert!(w.begin("b").is_err());
    }

    #[test]
    fn cdata_splitting() {
        let mut s = String::new();
        let mut w = Writer::compact(&mut s);
        w.begin("a").unwrap();
        w.cdata("x ]]> y").unwrap();
        w.end().unwrap();
        // Parse back and reassemble the CDATA pieces.
        let mut r = Reader::new(&s);
        let mut text = String::new();
        loop {
            match r.next_event().unwrap() {
                Event::CData(c) => text.push_str(&c),
                Event::Eof => break,
                _ => {}
            }
        }
        assert_eq!(text, "x ]]> y");
    }

    #[test]
    fn declaration_must_be_first() {
        let mut s = String::new();
        let mut w = Writer::new(&mut s);
        w.begin("a").unwrap();
        w.end().unwrap();
        assert!(w.declaration().is_err());
    }
}
