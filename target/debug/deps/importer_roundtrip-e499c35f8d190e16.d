/root/repo/target/debug/deps/importer_roundtrip-e499c35f8d190e16.d: tests/importer_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libimporter_roundtrip-e499c35f8d190e16.rmeta: tests/importer_roundtrip.rs Cargo.toml

tests/importer_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
