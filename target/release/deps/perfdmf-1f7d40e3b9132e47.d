/root/repo/target/release/deps/perfdmf-1f7d40e3b9132e47.d: src/bin/perfdmf.rs

/root/repo/target/release/deps/perfdmf-1f7d40e3b9132e47: src/bin/perfdmf.rs

src/bin/perfdmf.rs:
