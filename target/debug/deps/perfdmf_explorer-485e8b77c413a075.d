/root/repo/target/debug/deps/perfdmf_explorer-485e8b77c413a075.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/debug/deps/perfdmf_explorer-485e8b77c413a075: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
