//! Thread addressing: the node / context / thread triple.
//!
//! PerfDMF organizes all profile data "by node, context, thread, metric and
//! event" (paper §3.1). A [`ThreadId`] is the first three coordinates;
//! ordering is lexicographic, which matches how TAU numbers `profile.n.c.t`
//! files.

use std::fmt;

/// Location of one thread of execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId {
    /// Node (MPI rank / host).
    pub node: u32,
    /// Context within the node (process).
    pub context: u32,
    /// Thread within the context.
    pub thread: u32,
}

impl ThreadId {
    /// Construct a thread id.
    pub const fn new(node: u32, context: u32, thread: u32) -> Self {
        ThreadId {
            node,
            context,
            thread,
        }
    }

    /// The first thread of node 0 — where serial profiles live.
    pub const ZERO: ThreadId = ThreadId::new(0, 0, 0);
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.node, self.context, self.thread)
    }
}

impl From<(u32, u32, u32)> for ThreadId {
    fn from((node, context, thread): (u32, u32, u32)) -> Self {
        ThreadId::new(node, context, thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![
            ThreadId::new(1, 0, 0),
            ThreadId::new(0, 1, 0),
            ThreadId::new(0, 0, 2),
            ThreadId::new(0, 0, 0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                ThreadId::new(0, 0, 0),
                ThreadId::new(0, 0, 2),
                ThreadId::new(0, 1, 0),
                ThreadId::new(1, 0, 0),
            ]
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(ThreadId::new(3, 1, 2).to_string(), "3:1:2");
        assert_eq!(ThreadId::ZERO.to_string(), "0:0:0");
    }
}
