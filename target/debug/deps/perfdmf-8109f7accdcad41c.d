/root/repo/target/debug/deps/perfdmf-8109f7accdcad41c.d: src/bin/perfdmf.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf-8109f7accdcad41c.rmeta: src/bin/perfdmf.rs Cargo.toml

src/bin/perfdmf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
