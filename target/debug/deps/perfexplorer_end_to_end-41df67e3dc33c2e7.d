/root/repo/target/debug/deps/perfexplorer_end_to_end-41df67e3dc33c2e7.d: tests/perfexplorer_end_to_end.rs

/root/repo/target/debug/deps/perfexplorer_end_to_end-41df67e3dc33c2e7: tests/perfexplorer_end_to_end.rs

tests/perfexplorer_end_to_end.rs:
