/root/repo/target/release/deps/perfdmf_telemetry-728a018b5f10cd70.d: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libperfdmf_telemetry-728a018b5f10cd70.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

/root/repo/target/release/deps/libperfdmf_telemetry-728a018b5f10cd70.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/event.rs crates/telemetry/src/registry.rs crates/telemetry/src/snapshot.rs crates/telemetry/src/span.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/snapshot.rs:
crates/telemetry/src/span.rs:
