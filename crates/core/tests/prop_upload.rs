//! Property test: arbitrary profiles survive the database round trip
//! (save_profile → load_trial) with all coordinates and values intact.

use perfdmf_core::{load_trial, DatabaseSession};
use perfdmf_db::Connection;
use perfdmf_profile::{
    AtomicData, AtomicEvent, IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Spec {
    metrics: usize,
    events: usize,
    threads: usize,
    values: Vec<f64>,
    /// Bitmask-ish selector for which combinations exist / have undefined
    /// fields.
    pattern: Vec<u8>,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        1usize..3,
        1usize..5,
        1usize..4,
        proptest::collection::vec(0.0f64..1e6, 40),
        proptest::collection::vec(0u8..8, 40),
    )
        .prop_map(|(metrics, events, threads, values, pattern)| Spec {
            metrics,
            events,
            threads,
            values,
            pattern,
        })
}

fn build(spec: &Spec) -> Profile {
    let mut p = Profile::new("prop");
    p.source_format = "prop".into();
    let ms: Vec<_> = (0..spec.metrics)
        .map(|i| p.add_metric(Metric::measured(format!("M{i}"))))
        .collect();
    let es: Vec<_> = (0..spec.events)
        .map(|i| p.add_event(IntervalEvent::new(format!("e{i}"), format!("G{}", i % 2))))
        .collect();
    p.add_threads((0..spec.threads as u32).map(|n| ThreadId::new(n, n % 2, 0)));
    let mut k = 0usize;
    for &m in &ms {
        for &e in &es {
            for &t in p.threads().to_vec().iter() {
                let sel = spec.pattern[k % spec.pattern.len()];
                let v = spec.values[k % spec.values.len()];
                k += 1;
                if sel == 0 {
                    continue; // combination absent
                }
                let incl = if sel & 1 != 0 { v * 2.0 } else { UNDEFINED };
                let excl = if sel & 2 != 0 { v } else { UNDEFINED };
                let calls = if sel & 4 != 0 {
                    (k % 13 + 1) as f64
                } else {
                    UNDEFINED
                };
                let d = IntervalData::new(incl, excl, calls, UNDEFINED);
                p.set_interval(e, t, m, d);
            }
        }
    }
    // one atomic event sometimes
    if spec.pattern.first().copied().unwrap_or(0) & 1 != 0 {
        let ae = p.add_atomic_event(AtomicEvent::new("samples", "TAU_EVENT"));
        let mut d = AtomicData::new();
        for &v in spec.values.iter().take(5) {
            d.record(v);
        }
        p.set_atomic(ae, p.threads()[0], d);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_identity(spec in arb_spec()) {
        let truth = build(&spec);
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        let trial = session.store_profile("a", "e", &truth).unwrap();
        let back = load_trial(&conn, trial).unwrap();
        prop_assert_eq!(back.metrics(), truth.metrics());
        prop_assert_eq!(back.events(), truth.events());
        prop_assert_eq!(back.data_point_count(), truth.data_point_count());
        for (mi, _) in truth.metrics().iter().enumerate() {
            let m = perfdmf_profile::MetricId(mi);
            let bm = back.find_metric(&truth.metrics()[mi].name).unwrap();
            for (e, t, d) in truth.iter_metric(m) {
                let be = back.find_event(&truth.events()[e.0].name).unwrap();
                let got = back.interval(be, t, bm);
                prop_assert!(got.is_some(), "missing {e:?} {t}");
                let got = got.unwrap();
                prop_assert_eq!(got.inclusive(), d.inclusive());
                prop_assert_eq!(got.exclusive(), d.exclusive());
                prop_assert_eq!(got.calls(), d.calls());
            }
        }
        for (ae, t, d) in truth.iter_atomic() {
            let bae = back
                .find_atomic_event(&truth.atomic_events()[ae.0].name)
                .unwrap();
            let got = back.atomic(bae, t).unwrap();
            prop_assert_eq!(got.count, d.count);
            prop_assert_eq!(got.min, d.min);
            prop_assert_eq!(got.max, d.max);
            prop_assert!((got.mean - d.mean).abs() < 1e-9 * (1.0 + d.mean.abs()));
        }
    }

    #[test]
    fn xml_and_db_paths_agree(spec in arb_spec()) {
        // storing via the DB and via the XML exchange format yield the
        // same profile
        let truth = build(&spec);
        let conn = Connection::open_in_memory();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        let trial = session.store_profile("a", "e", &truth).unwrap();
        let via_db = load_trial(&conn, trial).unwrap();
        let via_xml =
            perfdmf_import::import_xml(&perfdmf_import::export_xml(&truth)).unwrap();
        prop_assert_eq!(via_db.data_point_count(), via_xml.data_point_count());
        for (mi, metric) in truth.metrics().iter().enumerate() {
            let m = perfdmf_profile::MetricId(mi);
            let dm = via_db.find_metric(&metric.name).unwrap();
            let xm = via_xml.find_metric(&metric.name).unwrap();
            for (e, t, _) in truth.iter_metric(m) {
                let name = &truth.events()[e.0].name;
                let de = via_db.find_event(name).unwrap();
                let xe = via_xml.find_event(name).unwrap();
                let a = via_db.interval(de, t, dm).unwrap();
                let b = via_xml.interval(xe, t, xm).unwrap();
                prop_assert_eq!(a.exclusive(), b.exclusive());
                prop_assert_eq!(a.inclusive(), b.inclusive());
            }
        }
    }
}
