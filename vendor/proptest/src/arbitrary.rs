//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy over the whole domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Full-domain strategy for `T`, as `any::<i32>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($int:ty),* $(,)?) => {$(
        impl Arbitrary for $int {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $int
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite values only; keeps properties comparing arithmetic sane.
        let v = rng.unit_f64();
        (v - 0.5) * 2.0 * 1e12
    }
}
