//! Causal tracing: trace/span ids, cross-thread context propagation, a
//! lock-free flight recorder, and Chrome-trace export.
//!
//! This rides on the same [`crate::span`] guards that feed the latency
//! histograms. When tracing is on ([`set_tracing`]`(true)`, default
//! **off**), each guard additionally allocates a `SpanId`, links it to
//! the enclosing span (or to a context adopted from another thread via
//! [`adopt_context`]), and on drop publishes a [`SpanRecord`] into the
//! global [`FlightRecorder`] — a fixed-capacity ring of seqlock slots
//! that writers never block on and readers can snapshot at any time,
//! including from a panic hook.
//!
//! Propagation rules:
//! * a span opened while another span is live on the same thread becomes
//!   its child and inherits the trace id;
//! * a span opened on a thread holding an adopted remote context (pool
//!   workers, explorer request handlers) becomes a child of the remote
//!   span — this is how one trace crosses thread boundaries;
//! * otherwise the span starts a fresh trace as its root.
//!
//! Dump triggers: [`FlightRecorder::dump`] on demand, the panic hook
//! installed by [`install_panic_dump`], and [`fault_dump`] which the db
//! layer calls whenever a durability fault counter fires (fsync error,
//! torn WAL tail, poisoned WAL). Fault dumps also capture the calling
//! thread's still-*open* spans, so the span that observed the fault is
//! present even though it has not finished.

use parking_lot::RwLock;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Once, OnceLock};
use std::time::Instant;

/// Default flight-recorder capacity (spans); override with the
/// `PERFDMF_TRACE_CAPACITY` environment variable.
pub const DEFAULT_RECORDER_CAPACITY: usize = 16 * 1024;

/// Identifies one causal trace (a request and everything it triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Fixed-width lowercase hex, the form used in log lines and JSON.
    pub fn as_hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl SpanId {
    pub fn as_hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

/// The (trace, span) pair to hand to another thread so its spans join
/// this trace. Obtain with [`current_context`], adopt with
/// [`adopt_context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanContext {
    pub trace: TraceId,
    pub span: SpanId,
}

static TRACING: AtomicBool = AtomicBool::new(false);

/// Is causal tracing currently collecting? Independent of the telemetry
/// enabled flag so the overhead can be priced separately; note spans are
/// only opened at all while `crate::enabled()`.
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turn causal tracing on or off globally (default off). Off, each span
/// costs one extra relaxed atomic load.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// 0 = not yet initialized (read `PERFDMF_TRACE_SAMPLE` on first use).
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
static SAMPLE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The request-trace sampling period: `NetClient` attaches trace
/// context to (and opens a `client.request` span for) one request in
/// every `trace_sample_every()`. Initialized from `PERFDMF_TRACE_SAMPLE`
/// (default 1 — every request while tracing is on).
pub fn trace_sample_every() -> u64 {
    let current = SAMPLE_EVERY.load(Ordering::Relaxed);
    if current != 0 {
        return current;
    }
    let every = std::env::var("PERFDMF_TRACE_SAMPLE")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1);
    SAMPLE_EVERY.store(every, Ordering::Relaxed);
    every
}

/// Override the sampling period process-wide (values below 1 clamp
/// to 1, i.e. sample everything).
pub fn set_trace_sample(every: u64) {
    SAMPLE_EVERY.store(every.max(1), Ordering::Relaxed);
}

/// Draw from the process-wide sampling sequence: true for one request
/// in every [`trace_sample_every`]. Always true at the default period.
pub fn sample_request() -> bool {
    let every = trace_sample_every();
    if every <= 1 {
        return true;
    }
    SAMPLE_COUNTER
        .fetch_add(1, Ordering::Relaxed)
        .is_multiple_of(every)
}

/// Unique non-zero id: splitmix64 of a global sequence counter — well
/// distributed, allocation-free, and deterministic given call order.
fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let mut z = NEXT
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1
}

/// Monotonic process epoch all span timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Small per-thread label for trace output (1, 2, 3, … in first-use
/// order) — stabler across runs than OS thread ids.
fn thread_label() -> u64 {
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LABEL: Cell<u64> = const { Cell::new(0) };
    }
    LABEL.with(|l| {
        if l.get() == 0 {
            l.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        l.get()
    })
}

struct Frame {
    name: &'static str,
    trace: u64,
    span: u64,
    parent: u64,
    start_ns: u64,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static REMOTE: Cell<Option<(u64, u64)>> = const { Cell::new(None) };
}

/// Called by [`crate::span`] on entry. Returns the new span id, or 0
/// when tracing is off (the guard then skips [`exit_span`]).
pub(crate) fn enter_span(name: &'static str) -> u64 {
    if !tracing_enabled() {
        return 0;
    }
    let span = next_id();
    FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        let (trace, parent) = match f.last() {
            Some(top) => (top.trace, top.span),
            None => match REMOTE.with(Cell::get) {
                Some((t, s)) => (t, s),
                None => (next_id(), 0),
            },
        };
        f.push(Frame {
            name,
            trace,
            span,
            parent,
            start_ns: now_ns(),
        });
    });
    span
}

/// Called by the span guard's drop: closes the frame and publishes its
/// record to the flight recorder. Tolerates out-of-order guard drops.
pub(crate) fn exit_span(span: u64) {
    if span == 0 {
        return;
    }
    let frame = FRAMES.with(|f| {
        let mut f = f.borrow_mut();
        match f.last() {
            Some(top) if top.span == span => f.pop(),
            _ => f
                .iter()
                .rposition(|fr| fr.span == span)
                .map(|i| f.remove(i)),
        }
    });
    if let Some(fr) = frame {
        let end = now_ns();
        recorder().record(SpanRecord {
            trace: fr.trace,
            span: fr.span,
            parent: fr.parent,
            name: fr.name,
            thread: thread_label(),
            start_ns: fr.start_ns,
            dur_ns: end.saturating_sub(fr.start_ns),
            open: false,
        });
    }
}

/// Context of the innermost span live on this thread (falling back to an
/// adopted remote context), or `None` when tracing is off or nothing is
/// open. Capture this before handing work to another thread.
pub fn current_context() -> Option<SpanContext> {
    if !tracing_enabled() {
        return None;
    }
    FRAMES
        .with(|f| {
            f.borrow().last().map(|fr| SpanContext {
                trace: TraceId(fr.trace),
                span: SpanId(fr.span),
            })
        })
        .or_else(|| {
            REMOTE.with(Cell::get).map(|(t, s)| SpanContext {
                trace: TraceId(t),
                span: SpanId(s),
            })
        })
}

/// Trace id of the active context, if any — what log lines carry.
pub fn current_trace_id() -> Option<TraceId> {
    current_context().map(|c| c.trace)
}

/// Restores the previously adopted context when dropped.
pub struct ContextGuard {
    prev: Option<(u64, u64)>,
}

/// Adopt `ctx` as this thread's parent context: until the guard drops,
/// spans opened with no local parent become children of `ctx.span` in
/// `ctx.trace`. Used on pool workers and explorer request threads.
pub fn adopt_context(ctx: SpanContext) -> ContextGuard {
    let prev = REMOTE.with(|r| r.replace(Some((ctx.trace.0, ctx.span.0))));
    ContextGuard { prev }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        REMOTE.with(|r| r.set(prev));
    }
}

/// One finished (or, in fault dumps, still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub trace: u64,
    pub span: u64,
    /// 0 for trace roots.
    pub parent: u64,
    pub name: &'static str,
    /// Small per-thread label (see module docs), not an OS thread id.
    pub thread: u64,
    /// Nanoseconds since the process trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// True only in fault dumps: the span had not finished when the dump
    /// was taken; `dur_ns` is its elapsed time so far.
    pub open: bool,
}

impl SpanRecord {
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// Span names interned to small indexes so recorder slots stay
/// all-atomic (no pointers round-tripped through u64). Duplicate entries
/// for the same text (one per distinct `&'static str` address) are fine.
fn names() -> &'static RwLock<Vec<&'static str>> {
    static NAMES: OnceLock<RwLock<Vec<&'static str>>> = OnceLock::new();
    NAMES.get_or_init(|| RwLock::new(Vec::new()))
}

fn name_index(name: &'static str) -> u64 {
    {
        let names = names().read();
        if let Some(i) = names.iter().position(|n| std::ptr::eq(*n, name)) {
            return i as u64 + 1;
        }
    }
    let mut names = names().write();
    if let Some(i) = names.iter().position(|n| std::ptr::eq(*n, name)) {
        return i as u64 + 1;
    }
    names.push(name);
    names.len() as u64
}

fn name_at(idx: u64) -> Option<&'static str> {
    if idx == 0 {
        return None;
    }
    names().read().get(idx as usize - 1).copied()
}

/// One seqlock slot. `seq` is 0 while never written, odd while a write
/// is in flight, even once published; each wrap strictly increases it
/// (ticket t writes 2t+1 then 2t+2, and tickets for a given slot differ
/// by the ring capacity), so a torn read can never look stable.
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    name: AtomicU64,
    thread: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            name: AtomicU64::new(0),
            thread: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// Fixed-capacity lock-free ring of the most recent finished spans.
/// Writers claim a ticket with one `fetch_add` and never wait; an
/// in-progress [`dump`](Self::dump) skips (only) slots being rewritten
/// concurrently.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans recorded over the recorder's lifetime (not capped).
    pub fn recorded_total(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        (self.recorded_total() as usize).min(self.slots.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publish one record, overwriting the oldest slot once full.
    pub fn record(&self, rec: SpanRecord) {
        let ticket = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        slot.seq.store(ticket * 2 + 1, Ordering::Release);
        slot.trace.store(rec.trace, Ordering::Relaxed);
        slot.span.store(rec.span, Ordering::Relaxed);
        slot.parent.store(rec.parent, Ordering::Relaxed);
        slot.name.store(name_index(rec.name), Ordering::Relaxed);
        slot.thread.store(rec.thread, Ordering::Relaxed);
        slot.start_ns.store(rec.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(rec.dur_ns, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.seq.store(ticket * 2 + 2, Ordering::Release);
    }

    /// Snapshot the buffered spans, ordered by start time. Slots being
    /// rewritten while the snapshot runs are skipped, never torn.
    pub fn dump(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.len());
        for slot in self.slots.iter() {
            for _attempt in 0..4 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 % 2 == 1 {
                    break;
                }
                let trace = slot.trace.load(Ordering::Relaxed);
                let span = slot.span.load(Ordering::Relaxed);
                let parent = slot.parent.load(Ordering::Relaxed);
                let name_idx = slot.name.load(Ordering::Relaxed);
                let thread = slot.thread.load(Ordering::Relaxed);
                let start_ns = slot.start_ns.load(Ordering::Relaxed);
                let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
                std::sync::atomic::fence(Ordering::Acquire);
                if slot.seq.load(Ordering::Relaxed) != s1 {
                    continue;
                }
                if let Some(name) = name_at(name_idx) {
                    out.push(SpanRecord {
                        trace,
                        span,
                        parent,
                        name,
                        thread,
                        start_ns,
                        dur_ns,
                        open: false,
                    });
                }
                break;
            }
        }
        out.sort_by_key(|r| (r.start_ns, r.span));
        out
    }

    /// Discard all buffered spans. Not safe against concurrent writers
    /// (a mid-flight record may survive); quiesce first in tests.
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            slot.seq.store(0, Ordering::Release);
        }
        self.cursor.store(0, Ordering::Release);
    }
}

/// The process-global flight recorder; capacity comes from
/// `PERFDMF_TRACE_CAPACITY` (default [`DEFAULT_RECORDER_CAPACITY`]).
pub fn recorder() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let cap = std::env::var("PERFDMF_TRACE_CAPACITY")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 16)
            .unwrap_or(DEFAULT_RECORDER_CAPACITY);
        FlightRecorder::with_capacity(cap)
    })
}

/// Records for the calling thread's currently-open spans (marked
/// `open: true`, duration = elapsed so far). Fault dumps append these so
/// the span inside which the fault fired is visible.
pub fn open_spans() -> Vec<SpanRecord> {
    let end = now_ns();
    let thread = thread_label();
    FRAMES.with(|f| {
        f.borrow()
            .iter()
            .map(|fr| SpanRecord {
                trace: fr.trace,
                span: fr.span,
                parent: fr.parent,
                name: fr.name,
                thread,
                start_ns: fr.start_ns,
                dur_ns: end.saturating_sub(fr.start_ns),
                open: true,
            })
            .collect()
    })
}

fn fault_dump_path() -> &'static RwLock<Option<PathBuf>> {
    static PATH: OnceLock<RwLock<Option<PathBuf>>> = OnceLock::new();
    PATH.get_or_init(|| RwLock::new(None))
}

/// Configure where [`fault_dump`] (and the panic hook) writes its
/// Chrome-trace JSON; `None` disables fault dumps.
pub fn set_fault_dump_path(path: Option<PathBuf>) {
    *fault_dump_path().write() = path;
}

/// Dump the flight recorder (plus this thread's open spans) as
/// Chrome-trace JSON to the configured fault-dump path. Called by the db
/// layer when a durability fault counter fires; a no-op returning `None`
/// when tracing is off or no path is configured.
pub fn fault_dump(reason: &str) -> Option<PathBuf> {
    if !tracing_enabled() {
        return None;
    }
    let path = fault_dump_path().read().clone()?;
    let mut records = recorder().dump();
    records.extend(open_spans());
    let json = export_chrome_trace(&records);
    if std::fs::write(&path, json).is_err() {
        return None;
    }
    crate::add("trace.fault_dumps", 1);
    crate::event::emit(
        crate::event::Event::new(crate::event::Severity::Warn, "trace_fault_dump")
            .field("reason", reason)
            .field("path", path.display().to_string())
            .field("spans", records.len() as u64),
    );
    Some(path)
}

/// Install a process panic hook (once; chains any existing hook) that
/// writes a fault dump with reason `"panic"` before unwinding continues.
pub fn install_panic_dump() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let _ = fault_dump("panic");
            prev(info);
        }));
    });
}

/// One process's worth of spans for [`export_chrome_trace_merged`]:
/// its Chrome-trace `pid`, a display name, and its records.
#[derive(Debug, Clone, Copy)]
pub struct TraceProcess<'a> {
    /// Chrome-trace process id (must be distinct per group).
    pub pid: u64,
    /// Display name emitted as `process_name` metadata.
    pub name: &'a str,
    /// The process's span records.
    pub records: &'a [SpanRecord],
}

/// Render spans as Chrome-trace / Perfetto JSON (load via
/// `chrome://tracing` or <https://ui.perfetto.dev>). Each span becomes a
/// complete (`"X"`) event; when a span's parent ran on a *different*
/// thread, a flow arrow (`"s"`/`"f"` pair) is added from the parent's
/// slice to the child's, making cross-thread causality visible.
pub fn export_chrome_trace(records: &[SpanRecord]) -> String {
    export_chrome_trace_merged(&[TraceProcess {
        pid: 1,
        name: "perfdmf",
        records,
    }])
}

/// Render spans from several processes as one merged Chrome-trace
/// timeline: each group gets its own `pid` (with a `process_name`
/// metadata event), and parent links are resolved *across* groups, so a
/// child whose parent span lives in another process gets a
/// cross-process flow arrow — this is how a client-side `client.request`
/// slice visibly dispatches into the server's `server.request` slice in
/// Perfetto.
pub fn export_chrome_trace_merged(processes: &[TraceProcess<'_>]) -> String {
    // Parent lookup spans every process: (pid, record).
    let by_span: HashMap<u64, (u64, &SpanRecord)> = processes
        .iter()
        .flat_map(|p| p.records.iter().map(move |r| (r.span, (p.pid, r))))
        .collect();
    let mut events = Vec::new();
    for proc in processes {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            proc.pid,
            crate::event::json_escape(proc.name)
        ));
    }
    for proc in processes {
        for r in proc.records {
            let ts = r.start_ns as f64 / 1000.0;
            let dur = r.dur_ns as f64 / 1000.0;
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"perfdmf\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\
                 \"parent\":\"{:016x}\",\"open\":{}}}}}",
                crate::event::json_escape(r.name),
                proc.pid,
                r.thread,
                r.trace,
                r.span,
                r.parent,
                r.open
            ));
            if r.parent != 0 {
                if let Some(&(parent_pid, p)) = by_span.get(&r.parent) {
                    if parent_pid != proc.pid || p.thread != r.thread {
                        // Flow endpoints must lie inside their slices for the
                        // viewer to bind them; clamp into the parent interval.
                        let s_ts = (r.start_ns.clamp(p.start_ns, p.end_ns()) as f64) / 1000.0;
                        events.push(format!(
                            "{{\"name\":\"dispatch\",\"cat\":\"perfdmf\",\"ph\":\"s\",\
                             \"id\":\"{:x}\",\"ts\":{s_ts:.3},\"pid\":{},\"tid\":{}}}",
                            r.span, parent_pid, p.thread
                        ));
                        events.push(format!(
                            "{{\"name\":\"dispatch\",\"cat\":\"perfdmf\",\"ph\":\"f\",\"bp\":\"e\",\
                             \"id\":\"{:x}\",\"ts\":{ts:.3},\"pid\":{},\"tid\":{}}}",
                            r.span, proc.pid, r.thread
                        ));
                    }
                }
            }
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global tracing flag (they also
    /// need telemetry enabled, so take the enabled-flag write lock too).
    fn tracing_test_lock() -> parking_lot::RwLockWriteGuard<'static, ()> {
        crate::enabled_flag_lock().write()
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn spans_link_parent_child_and_record() {
        let _g = tracing_test_lock();
        crate::set_enabled(true);
        set_tracing(true);
        let (root_ctx, child_ctx) = {
            let _root = crate::span("trace.test.root");
            let root_ctx = current_context().unwrap();
            let _child = crate::span("trace.test.child");
            let child_ctx = current_context().unwrap();
            (root_ctx, child_ctx)
        };
        set_tracing(false);
        assert_eq!(root_ctx.trace, child_ctx.trace);
        assert_ne!(root_ctx.span, child_ctx.span);
        let recs = recorder().dump();
        let child = recs
            .iter()
            .find(|r| r.span == child_ctx.span.0)
            .expect("child recorded");
        assert_eq!(child.parent, root_ctx.span.0);
        assert_eq!(child.trace, root_ctx.trace.0);
        let root = recs.iter().find(|r| r.span == root_ctx.span.0).unwrap();
        assert_eq!(root.parent, 0);
        assert!(root.end_ns() >= child.end_ns());
    }

    #[test]
    fn adopted_context_crosses_threads() {
        let _g = tracing_test_lock();
        crate::set_enabled(true);
        set_tracing(true);
        let (ctx, remote_span) = {
            let _root = crate::span("trace.test.xthread.root");
            let ctx = current_context().unwrap();
            let remote_span = std::thread::scope(|s| {
                s.spawn(|| {
                    let _adopt = adopt_context(ctx);
                    let _w = crate::span("trace.test.xthread.worker");
                    current_context().unwrap()
                })
                .join()
                .unwrap()
            });
            (ctx, remote_span)
        };
        set_tracing(false);
        assert_eq!(remote_span.trace, ctx.trace);
        let recs = recorder().dump();
        let worker = recs.iter().find(|r| r.span == remote_span.span.0).unwrap();
        assert_eq!(worker.parent, ctx.span.0);
        let root = recs.iter().find(|r| r.span == ctx.span.0).unwrap();
        assert_ne!(worker.thread, root.thread);
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let ring = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            ring.record(SpanRecord {
                trace: 1,
                span: i + 1,
                parent: 0,
                name: "trace.test.wrap",
                thread: 1,
                start_ns: i * 100,
                dur_ns: 10,
                open: false,
            });
        }
        assert_eq!(ring.recorded_total(), 10);
        assert_eq!(ring.len(), 4);
        let spans: Vec<u64> = ring.dump().iter().map(|r| r.span).collect();
        assert_eq!(spans, vec![7, 8, 9, 10]);
    }

    #[test]
    fn chrome_export_emits_slices_and_cross_thread_flows() {
        let recs = vec![
            SpanRecord {
                trace: 7,
                span: 1,
                parent: 0,
                name: "root \"q\"",
                thread: 1,
                start_ns: 1_000,
                dur_ns: 9_000,
                open: false,
            },
            SpanRecord {
                trace: 7,
                span: 2,
                parent: 1,
                name: "worker",
                thread: 2,
                start_ns: 2_000,
                dur_ns: 3_000,
                open: false,
            },
        ];
        let json = export_chrome_trace(&recs);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("root \\\"q\\\""));
        // Same-thread child produces no flow.
        let same_thread = vec![
            recs[0].clone(),
            SpanRecord {
                thread: 1,
                ..recs[1].clone()
            },
        ];
        assert!(!export_chrome_trace(&same_thread).contains("\"ph\":\"s\""));
    }

    #[test]
    fn open_spans_capture_unfinished_frames() {
        let _g = tracing_test_lock();
        crate::set_enabled(true);
        set_tracing(true);
        let _root = crate::span("trace.test.open");
        let open = open_spans();
        set_tracing(false);
        assert!(open.iter().any(|r| r.name == "trace.test.open" && r.open));
    }

    #[test]
    fn merged_export_links_parents_across_processes() {
        let client = vec![SpanRecord {
            trace: 9,
            span: 1,
            parent: 0,
            name: "client.request",
            thread: 1,
            start_ns: 1_000,
            dur_ns: 9_000,
            open: false,
        }];
        let server = vec![SpanRecord {
            trace: 9,
            span: 2,
            parent: 1,
            name: "server.request",
            thread: 1, // same thread label, different process
            start_ns: 2_000,
            dur_ns: 3_000,
            open: false,
        }];
        let json = export_chrome_trace_merged(&[
            TraceProcess {
                pid: 1,
                name: "client",
                records: &client,
            },
            TraceProcess {
                pid: 2,
                name: "server",
                records: &server,
            },
        ]);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"pid\":2"));
        // The server span's parent lives in the client process: the
        // same thread label must still produce a flow pair.
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
    }

    #[test]
    fn sampling_period_is_configurable() {
        let before = trace_sample_every();
        set_trace_sample(1);
        assert!(sample_request());
        assert!(sample_request());
        set_trace_sample(3);
        let hits = (0..30).filter(|_| sample_request()).count();
        assert_eq!(hits, 10, "1-in-3 sampling must hit exactly a third");
        set_trace_sample(before);
    }

    #[test]
    fn tracing_off_is_inert() {
        let _g = tracing_test_lock();
        crate::set_enabled(true);
        set_tracing(false);
        let _s = crate::span("trace.test.off");
        assert!(current_context().is_none());
        assert!(current_trace_id().is_none());
    }
}
