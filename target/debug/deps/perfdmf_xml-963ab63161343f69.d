/root/repo/target/debug/deps/perfdmf_xml-963ab63161343f69.d: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/perfdmf_xml-963ab63161343f69: crates/xml/src/lib.rs crates/xml/src/dom.rs crates/xml/src/error.rs crates/xml/src/escape.rs crates/xml/src/reader.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/dom.rs:
crates/xml/src/error.rs:
crates/xml/src/escape.rs:
crates/xml/src/reader.rs:
crates/xml/src/writer.rs:
