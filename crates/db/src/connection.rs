//! Thread-safe connection facade — the JDBC-equivalent surface of the
//! engine (paper §3.1: "Access to the SQL interface is provided using the
//! JDBC API ... the tool programmer does not need to worry about
//! vendor-specific SQL syntax").
//!
//! A [`Connection`] is a cheap cloneable handle to a shared database.
//! SELECTs take a read lock (many readers run concurrently); mutating
//! statements take the write lock. Multi-statement transactions that must
//! exclude other writers should use [`Connection::transaction`], which
//! holds the write lock for the closure's duration.

use crate::database::Database;
use crate::error::{DbError, Result};
use crate::exec::{execute, Outcome, ResultSet};
use crate::observe;
use crate::schema::ColumnDef;
use crate::sql::ast::Statement;
use crate::sql::parser::parse_statement_with_params;
use crate::value::Value;
use parking_lot::{Mutex, RwLock};
use perfdmf_telemetry as telemetry;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Entries retained by the per-connection parse cache.
const PARSE_CACHE_CAP: usize = 256;

/// LRU cache of parsed statements, keyed by SQL text. Statements are
/// pure ASTs (no schema binding happens at parse time), so entries never
/// need invalidation on DDL. Shared by all clones of a [`Connection`].
///
/// Telemetry: `db.sql.parse_cache_hits` / `db.sql.parse_cache_misses`.
#[derive(Default)]
struct ParseCache {
    inner: Mutex<ParseCacheInner>,
}

#[derive(Default)]
struct ParseCacheInner {
    /// SQL text → (parsed statement, `?` count, last-use tick).
    map: HashMap<String, (Arc<Statement>, usize, u64)>,
    /// Monotonic use counter backing the LRU ordering.
    tick: u64,
}

impl ParseCache {
    fn get(&self, sql: &str) -> Option<(Arc<Statement>, usize)> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(sql) {
            Some((statement, param_count, last_used)) => {
                *last_used = tick;
                telemetry::add("db.sql.parse_cache_hits", 1);
                Some((Arc::clone(statement), *param_count))
            }
            None => {
                telemetry::add("db.sql.parse_cache_misses", 1);
                None
            }
        }
    }

    fn put(&self, sql: &str, statement: Arc<Statement>, param_count: usize) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= PARSE_CACHE_CAP && !inner.map.contains_key(sql) {
            // Evict the least-recently-used entry. A linear scan over a
            // capped map is cheaper than keeping an order list coherent.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, _, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner
            .map
            .insert(sql.to_string(), (statement, param_count, tick));
    }

    fn len(&self) -> usize {
        self.inner.lock().map.len()
    }
}

/// A handle to a shared database.
#[derive(Clone)]
pub struct Connection {
    db: Arc<RwLock<Database>>,
    parse_cache: Arc<ParseCache>,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection").finish_non_exhaustive()
    }
}

/// A parsed, reusable statement with a known parameter count.
#[derive(Debug, Clone)]
pub struct Prepared {
    statement: Arc<Statement>,
    param_count: usize,
    /// Original SQL text, kept for the slow-query log.
    sql: String,
}

impl Prepared {
    /// Number of `?` placeholders.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.statement
    }

    /// The SQL text this statement was parsed from.
    pub fn sql(&self) -> &str {
        &self.sql
    }
}

impl Connection {
    /// Open an in-memory database.
    pub fn open_in_memory() -> Connection {
        Connection {
            db: Arc::new(RwLock::new(Database::new())),
            parse_cache: Arc::new(ParseCache::default()),
        }
    }

    /// Open (or create) a persistent database in `dir`.
    pub fn open(dir: impl AsRef<Path>) -> Result<Connection> {
        Ok(Connection {
            db: Arc::new(RwLock::new(Database::open(dir.as_ref())?)),
            parse_cache: Arc::new(ParseCache::default()),
        })
    }

    /// Open (or create) a persistent database with file I/O routed through
    /// `vfs` — the entry point for fault-injection testing.
    pub fn open_with_vfs(
        dir: impl AsRef<Path>,
        vfs: Arc<dyn crate::vfs::Vfs>,
    ) -> Result<Connection> {
        Ok(Connection {
            db: Arc::new(RwLock::new(Database::open_with_vfs(dir.as_ref(), vfs)?)),
            parse_cache: Arc::new(ParseCache::default()),
        })
    }

    /// Parse a statement for repeated execution. Repeated SQL text hits
    /// the connection's LRU parse cache and skips the parser entirely.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        if let Some((statement, param_count)) = self.parse_cache.get(sql) {
            return Ok(Prepared {
                statement,
                param_count,
                sql: sql.to_string(),
            });
        }
        let _span = telemetry::span("db.parse");
        let (statement, param_count) = parse_statement_with_params(sql)?;
        let statement = Arc::new(statement);
        self.parse_cache
            .put(sql, Arc::clone(&statement), param_count);
        Ok(Prepared {
            statement,
            param_count,
            sql: sql.to_string(),
        })
    }

    /// Number of statements currently retained by the parse cache.
    pub fn parse_cache_len(&self) -> usize {
        self.parse_cache.len()
    }

    fn check_params(prepared: &Prepared, params: &[Value]) -> Result<()> {
        if params.len() < prepared.param_count {
            return Err(DbError::MissingParameter(params.len()));
        }
        Ok(())
    }

    /// Execute a prepared statement.
    pub fn execute_prepared(&self, prepared: &Prepared, params: &[Value]) -> Result<Outcome> {
        Self::check_params(prepared, params)?;
        let _span = telemetry::span("db.exec");
        let started = telemetry::enabled().then(Instant::now);
        let outcome = (|| match prepared.statement.as_ref() {
            // SELECT and EXPLAIN SELECT never mutate; run them under the
            // read lock so they share with other readers.
            Statement::Select(sel) => {
                let db = self.db.read();
                Ok(Outcome::Rows(crate::exec::select::execute_select(
                    &db, sel, params,
                )?))
            }
            Statement::Explain { statement, analyze } => {
                if let Statement::Select(sel) = statement.as_ref() {
                    let db = self.db.read();
                    let lines = if *analyze {
                        crate::exec::select::explain_analyze_select(&db, sel, params)?
                    } else {
                        crate::exec::select::explain_select(&db, sel, params)?
                    };
                    return Ok(Outcome::Rows(crate::exec::ResultSet {
                        columns: vec!["plan".to_string()],
                        rows: lines
                            .into_iter()
                            .map(|l| vec![Value::Text(l.into())])
                            .collect(),
                        ..Default::default()
                    }));
                }
                // EXPLAIN ANALYZE of DML executes the statement, so it
                // takes the write lock like any other mutation.
                let mut db = self.db.write();
                execute(&mut db, &prepared.statement, params)
            }
            _ => {
                let mut db = self.db.write();
                execute(&mut db, &prepared.statement, params)
            }
        })();
        if let Some(started) = started {
            observe::record_statement(&prepared.sql, &outcome, started.elapsed());
        }
        outcome
    }

    /// Parse and execute a statement.
    pub fn execute(&self, sql: &str, params: &[Value]) -> Result<Outcome> {
        let prepared = self.prepare(sql)?;
        self.execute_prepared(&prepared, params)
    }

    /// Execute a SELECT and return its rows.
    pub fn query(&self, sql: &str, params: &[Value]) -> Result<ResultSet> {
        match self.execute(sql, params)? {
            Outcome::Rows(rs) => Ok(rs),
            _ => Err(DbError::Unsupported(
                "query() requires a SELECT statement".into(),
            )),
        }
    }

    /// Execute a scalar SELECT (first column of first row).
    pub fn query_scalar(&self, sql: &str, params: &[Value]) -> Result<Value> {
        let rs = self.query(sql, params)?;
        Ok(rs.scalar().cloned().unwrap_or(Value::Null))
    }

    /// Execute DML and return the affected-row count.
    pub fn update(&self, sql: &str, params: &[Value]) -> Result<usize> {
        match self.execute(sql, params)? {
            Outcome::Affected { count, .. } => Ok(count),
            Outcome::Done => Ok(0),
            Outcome::Rows(_) => Err(DbError::Unsupported(
                "update() cannot run a SELECT statement".into(),
            )),
        }
    }

    /// Execute an INSERT and return the generated AUTO_INCREMENT id, if any.
    pub fn insert(&self, sql: &str, params: &[Value]) -> Result<Option<i64>> {
        match self.execute(sql, params)? {
            Outcome::Affected { last_insert_id, .. } => Ok(last_insert_id),
            _ => Err(DbError::Unsupported(
                "insert() requires an INSERT statement".into(),
            )),
        }
    }

    /// Bulk-insert pre-evaluated value tuples as one group-committed batch:
    /// the write lock is taken once, every row is validated and applied,
    /// and a single WAL append (one fsync under
    /// [`crate::storage::Durability::Fsync`]) covers the whole batch. On
    /// any row failure the entire batch rolls back.
    pub fn bulk_insert(
        &self,
        table: &str,
        columns: &[&str],
        rows: Vec<crate::table::Row>,
    ) -> Result<(usize, Option<i64>)> {
        let _span = telemetry::span("db.bulk_insert");
        let mut db = self.db.write();
        let mark = db.stmt_begin();
        match db.bulk_insert(table, columns, rows) {
            Ok(res) => {
                db.stmt_finish()?;
                Ok(res)
            }
            Err(e) => {
                db.stmt_abort(mark);
                Err(e)
            }
        }
    }

    /// Set when WAL commit batches must reach stable storage.
    pub fn set_durability(&self, durability: crate::storage::Durability) {
        self.db.write().set_durability(durability);
    }

    /// Run `f` with exclusive access inside a transaction. Commits on `Ok`,
    /// rolls back on `Err`.
    pub fn transaction<T>(
        &self,
        f: impl FnOnce(&mut TransactionHandle<'_>) -> Result<T>,
    ) -> Result<T> {
        let mut db = self.db.write();
        db.begin()?;
        let mut handle = TransactionHandle { db: &mut db };
        match f(&mut handle) {
            Ok(v) => {
                db.commit()?;
                Ok(v)
            }
            Err(e) => {
                let _ = db.rollback();
                Err(e)
            }
        }
    }

    /// Names of all tables (the catalog half of `getMetaData()`).
    pub fn table_names(&self) -> Vec<String> {
        self.db.read().table_names()
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.db.read().has_table(name)
    }

    /// Column metadata for a table — PerfDMF's runtime schema discovery
    /// (the JDBC `getMetaData()` equivalent that makes the flexible
    /// APPLICATION/EXPERIMENT/TRIAL schema possible).
    pub fn table_meta(&self, table: &str) -> Result<Vec<ColumnDef>> {
        let db = self.db.read();
        Ok(db.table(table)?.schema.columns.clone())
    }

    /// Number of live rows in a table.
    pub fn row_count(&self, table: &str) -> Result<usize> {
        let db = self.db.read();
        Ok(db.table(table)?.len())
    }

    /// Write a snapshot and truncate the WAL (persistent databases only).
    pub fn checkpoint(&self) -> Result<()> {
        self.db.write().checkpoint()
    }
}

/// Exclusive access to the database within [`Connection::transaction`].
pub struct TransactionHandle<'a> {
    db: &'a mut Database,
}

impl TransactionHandle<'_> {
    /// Execute a statement inside the transaction.
    pub fn execute(&mut self, sql: &str, params: &[Value]) -> Result<Outcome> {
        let statement = {
            let _span = telemetry::span("db.parse");
            let (statement, param_count) = parse_statement_with_params(sql)?;
            if params.len() < param_count {
                return Err(DbError::MissingParameter(params.len()));
            }
            statement
        };
        if matches!(
            statement,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) {
            return Err(DbError::Transaction(
                "transaction control statements are managed by transaction()".into(),
            ));
        }
        let _span = telemetry::span("db.exec");
        let started = telemetry::enabled().then(Instant::now);
        let outcome = execute(self.db, &statement, params);
        if let Some(started) = started {
            observe::record_statement(sql, &outcome, started.elapsed());
        }
        outcome
    }

    /// Execute a pre-parsed statement inside the transaction (parse once,
    /// run many — the bulk-load fast path).
    pub fn execute_prepared(&mut self, prepared: &Prepared, params: &[Value]) -> Result<Outcome> {
        if params.len() < prepared.param_count {
            return Err(DbError::MissingParameter(params.len()));
        }
        if matches!(
            *prepared.statement,
            Statement::Begin | Statement::Commit | Statement::Rollback
        ) {
            return Err(DbError::Transaction(
                "transaction control statements are managed by transaction()".into(),
            ));
        }
        let _span = telemetry::span("db.exec");
        let started = telemetry::enabled().then(Instant::now);
        let outcome = execute(self.db, &prepared.statement, params);
        if let Some(started) = started {
            observe::record_statement(&prepared.sql, &outcome, started.elapsed());
        }
        outcome
    }

    /// Execute a pre-parsed INSERT and return the generated id.
    pub fn insert_prepared(
        &mut self,
        prepared: &Prepared,
        params: &[Value],
    ) -> Result<Option<i64>> {
        match self.execute_prepared(prepared, params)? {
            Outcome::Affected { last_insert_id, .. } => Ok(last_insert_id),
            _ => Err(DbError::Unsupported(
                "insert_prepared() requires an INSERT statement".into(),
            )),
        }
    }

    /// Bulk-insert pre-evaluated value tuples inside the transaction with
    /// statement-level atomicity: a failing row undoes the batch but leaves
    /// the surrounding transaction open. The rows commit with the
    /// transaction's single WAL batch.
    pub fn bulk_insert(
        &mut self,
        table: &str,
        columns: &[&str],
        rows: Vec<crate::table::Row>,
    ) -> Result<(usize, Option<i64>)> {
        let _span = telemetry::span("db.bulk_insert");
        let mark = self.db.stmt_begin();
        match self.db.bulk_insert(table, columns, rows) {
            Ok(res) => {
                self.db.stmt_finish()?;
                Ok(res)
            }
            Err(e) => {
                self.db.stmt_abort(mark);
                Err(e)
            }
        }
    }

    /// Query inside the transaction.
    pub fn query(&mut self, sql: &str, params: &[Value]) -> Result<ResultSet> {
        match self.execute(sql, params)? {
            Outcome::Rows(rs) => Ok(rs),
            _ => Err(DbError::Unsupported(
                "query() requires a SELECT statement".into(),
            )),
        }
    }

    /// INSERT returning the generated id.
    pub fn insert(&mut self, sql: &str, params: &[Value]) -> Result<Option<i64>> {
        match self.execute(sql, params)? {
            Outcome::Affected { last_insert_id, .. } => Ok(last_insert_id),
            _ => Err(DbError::Unsupported(
                "insert() requires an INSERT statement".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_counters() -> (u64, u64) {
        (
            telemetry::counter("db.sql.parse_cache_hits").value(),
            telemetry::counter("db.sql.parse_cache_misses").value(),
        )
    }

    #[test]
    fn repeated_sql_parses_once() {
        let conn = Connection::open_in_memory();
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)", &[])
            .unwrap();
        let sql = "SELECT v FROM t WHERE id = ?";
        let (h0, m0) = cache_counters();
        conn.query(sql, &[Value::Int(1)]).unwrap();
        let (h1, m1) = cache_counters();
        assert_eq!(h1 - h0, 0, "first use must miss");
        assert!(m1 - m0 >= 1, "first use must miss");
        for i in 0..5 {
            conn.query(sql, &[Value::Int(i)]).unwrap();
        }
        let (h2, m2) = cache_counters();
        assert_eq!(h2 - h1, 5, "every repeat must hit the parse cache");
        assert_eq!(m2 - m1, 0, "repeats must not re-parse");
    }

    #[test]
    fn parse_cache_evicts_least_recently_used() {
        let conn = Connection::open_in_memory();
        // Fill past capacity with distinct statements.
        for i in 0..PARSE_CACHE_CAP + 10 {
            conn.prepare(&format!("SELECT {i}")).unwrap();
        }
        assert_eq!(conn.parse_cache_len(), PARSE_CACHE_CAP);
        // The oldest entries are gone; the newest survive.
        let (h0, _) = cache_counters();
        conn.prepare(&format!("SELECT {}", PARSE_CACHE_CAP + 9))
            .unwrap();
        let (h1, _) = cache_counters();
        assert_eq!(h1 - h0, 1, "most recent entry must still be cached");
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let conn = Connection::open_in_memory();
        assert!(conn.prepare("SELEC nonsense").is_err());
        assert!(conn.prepare("SELEC nonsense").is_err());
        assert_eq!(conn.parse_cache_len(), 0);
    }

    #[test]
    fn clones_share_the_parse_cache() {
        let conn = Connection::open_in_memory();
        conn.prepare("SELECT 1").unwrap();
        let clone = conn.clone();
        let (h0, _) = cache_counters();
        clone.prepare("SELECT 1").unwrap();
        let (h1, _) = cache_counters();
        assert_eq!(h1 - h0, 1);
    }
}
