/root/repo/target/debug/deps/prop_db-ed4662d670b2a951.d: crates/db/tests/prop_db.rs

/root/repo/target/debug/deps/prop_db-ed4662d670b2a951: crates/db/tests/prop_db.rs

crates/db/tests/prop_db.rs:
