//! Chaos harness: seeded multi-client workloads through randomized
//! network-fault schedules.
//!
//! Each scenario starts a real [`PerfdmfServer`] on a loopback port and
//! drives it with several concurrent [`NetClient`]s whose connections
//! are wrapped in [`FaultStream`]s — partial reads/writes, injected
//! latency, mid-frame disconnects, and (for read-only clients)
//! corrupted bytes — all derived from a single scenario seed, so a
//! failing run replays exactly.
//!
//! The invariants, in the order the paper's operators would care:
//!
//! 1. **No panics.** Client threads all join; the server's
//!    session-panic counter stays at zero.
//! 2. **No hung connections.** Every request resolves (an answer or a
//!    clean failure) within its deadline plus the retry budget — the
//!    harness itself would deadlock otherwise, and a per-request wall
//!    clock is asserted too.
//! 3. **No acknowledged write lost.** Every `Clustering` ack carries a
//!    `settings_id`; after the storm a fault-free client re-queries
//!    each one and must get the stored result back.
//! 4. **At-most-once writes.** Replaying a storm client's idempotency
//!    key from a clean client returns the recorded response — same
//!    `settings_id`, no second row.
//!
//! Seeds: three fixed ones (committed regression surface) plus
//! `RUST_SEED` when set (CI passes its run id, so every CI run explores
//! a fresh schedule without giving up replayability — the seed is in
//! the log).

use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_explorer::{ClusterMethod, FeatureSpace, Request, Response, RetryPolicy};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_server::{ExecutorMode, NetClient, NetFaultPlan, PerfdmfServer, ServerConfig};
use std::time::{Duration, Instant};

/// Fixed chaos seeds every run must survive.
const FIXED_SEEDS: [u64; 3] = [11, 23, 47];

/// Storm clients per scenario.
const CLIENTS: usize = 6;

/// Requests each storm client issues.
const ROUNDS: usize = 8;

/// Per-request deadline: generous against injected delays, small
/// enough that a hung request fails the suite quickly.
const STORM_DEADLINE: Duration = Duration::from_secs(5);

/// Upper bound on any single request's wall time — deadline, retry
/// budget (3 retries, ≤500ms backoff each), and scheduling slack.
const REQUEST_WALL_BOUND: Duration = Duration::from_secs(30);

/// Serializes tests that assert on process-global telemetry counters:
/// the storms require `server.session_panics` to stay flat while they
/// run, and the panic-injection test below deliberately bumps it.
fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(std::sync::Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn counter(name: &str) -> u64 {
    perfdmf_telemetry::snapshot()
        .counter(name)
        .map(|c| c.value)
        .unwrap_or(0)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trial with two obvious thread-behaviour groups (mirrors the
/// explorer's own fixture) so clustering requests do real work.
fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("chaos");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..32).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 16 { (100.0, 5.0) } else { (10.0, 80.0) };
        let j = (i % 4) as f64 * 0.1;
        p.set_interval(a, t, m, IntervalData::new(ca + j, ca + j, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb - j, cb - j, 10.0, 0.0));
    }
    let trial = session
        .store_profile("chaos-app", "chaos-exp", &p)
        .expect("store");
    (conn, trial)
}

fn cluster_request(trial_id: i64) -> Request {
    Request::ClusterTrial {
        trial_id,
        features: FeatureSpace::EventsOfMetric("TIME".into()),
        k: None,
        max_k: 4,
        pca_components: 0,
        method: ClusterMethod::KMeans,
    }
}

/// A client-side fault plan derived from (scenario seed, client index).
/// Every client gets tears, fragmentation, disconnects, *and* bit-flip
/// corruption: the frame checksum turns a corrupted `Call` into a
/// rejected frame and a retry under the same idempotency key, so even
/// writers keep their accounting sound under corruption.
fn client_plan(seed: u64, client: usize) -> NetFaultPlan {
    let d = splitmix64(seed ^ (client as u64).wrapping_mul(0xA076_1D64_78BD_642F));
    NetFaultPlan::seeded(d)
        .partial_io(1 + (d % 13) as usize)
        .delays(d >> 8 & 0x3)
        .disconnect_after(300 + (d >> 16) % 4000)
        .corrupt_one_in(48 + (d >> 32) % 64)
}

/// What one storm client observed.
struct ClientReport {
    /// (idempotency key, settings_id) for every acknowledged clustering.
    acked_writes: Vec<(u64, i64)>,
    /// Longest single request wall time.
    slowest: Duration,
    /// Requests that resolved as clean failures (still "answered").
    failures: usize,
    /// Requests answered successfully.
    successes: usize,
}

fn storm_client(addr: std::net::SocketAddr, seed: u64, client: usize, trial: i64) -> ClientReport {
    let mut net = NetClient::new(addr, format!("chaos-{seed}-{client}"))
        .with_deadline(STORM_DEADLINE)
        .with_policy(RetryPolicy::default())
        .with_key_space(seed.wrapping_mul(131).wrapping_add(client as u64 + 1) & 0xFFFF_FFFF)
        .with_fault_plan(client_plan(seed, client));
    let mut report = ClientReport {
        acked_writes: Vec::new(),
        slowest: Duration::ZERO,
        failures: 0,
        successes: 0,
    };
    for round in 0..ROUNDS {
        let d = splitmix64(seed ^ ((client * 1000 + round) as u64));
        let request = match d % 4 {
            0 => Request::Ping,
            1 => cluster_request(trial),
            2 => match report.acked_writes.last() {
                Some(&(_, settings_id)) => Request::FetchResult { settings_id },
                None => Request::Ping,
            },
            _ => Request::CorrelateMetrics {
                trial_id: trial,
                event: "compute".into(),
            },
        };
        let is_cluster = matches!(request, Request::ClusterTrial { .. });
        let key = (seed.wrapping_mul(131).wrapping_add(client as u64 + 1) & 0xFFFF_FFFF) << 32
            | (round as u64 + 1);
        let started = Instant::now();
        let response = net.request_keyed(request, key);
        let elapsed = started.elapsed();
        report.slowest = report.slowest.max(elapsed);
        assert!(
            elapsed < REQUEST_WALL_BOUND,
            "seed {seed} client {client} round {round}: request took {elapsed:?}"
        );
        match response {
            Response::Clustering { settings_id, .. } => {
                report.successes += 1;
                if is_cluster {
                    report.acked_writes.push((key, settings_id));
                }
            }
            Response::Pong
            | Response::Stored { .. }
            | Response::Correlation { .. }
            | Response::Speedup { .. }
            | Response::Regressions { .. }
            | Response::Watchdog { .. } => report.successes += 1,
            Response::Error(_)
            | Response::Overloaded
            | Response::Failed { .. }
            | Response::ShuttingDown => report.failures += 1,
        }
    }
    net.close();
    report
}

/// Run one full storm for `seed` on `executor` and check every
/// invariant. The same seeds run on both executors (the chaos matrix):
/// any invariant the threaded executor upholds under a fault schedule,
/// the event loop must uphold under the identical schedule.
fn run_storm(seed: u64, executor: ExecutorMode) {
    let (conn, trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn.clone(),
        ServerConfig {
            workers: 3,
            queue_capacity: 16,
            executor,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.addr();

    let panics_before = perfdmf_telemetry::snapshot()
        .counter("server.session_panics")
        .map(|c| c.value)
        .unwrap_or(0);

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| std::thread::spawn(move || storm_client(addr, seed, client, trial)))
        .collect();
    let reports: Vec<ClientReport> = handles
        .into_iter()
        .map(|h| h.join().expect("storm client must not panic"))
        .collect();

    // Invariant 1: no session-loop panics server-side.
    let panics_after = perfdmf_telemetry::snapshot()
        .counter("server.session_panics")
        .map(|c| c.value)
        .unwrap_or(0);
    assert_eq!(
        panics_after, panics_before,
        "seed {seed}: server session loops must not panic"
    );

    // Invariant 2 is structural (every join returned, every request
    // bounded); report the shape for the log.
    let total_acked: usize = reports.iter().map(|r| r.acked_writes.len()).sum();
    let total_failures: usize = reports.iter().map(|r| r.failures).sum();
    let slowest = reports.iter().map(|r| r.slowest).max().unwrap_or_default();
    eprintln!(
        "chaos seed {seed} ({executor:?}): {} acked writes, {} clean failures, \
         slowest request {slowest:?}",
        total_acked, total_failures
    );

    // Invariants 3 and 4 need a fault-free client.
    let mut clean =
        NetClient::new(addr, format!("chaos-{seed}-verify")).with_deadline(Duration::from_secs(10));
    for report in &reports {
        for &(key, settings_id) in &report.acked_writes {
            // 3: the acknowledged write is still there.
            match clean.request(Request::FetchResult { settings_id }) {
                Response::Stored { rows, .. } => {
                    assert!(
                        !rows.is_empty(),
                        "seed {seed}: acked settings_id {settings_id} came back empty"
                    )
                }
                other => panic!(
                    "seed {seed}: acked settings_id {settings_id} lost after storm: {other:?}"
                ),
            }
            // 4: replaying the storm client's key must not write again —
            // the replay cache answers with the original settings_id.
            match clean.request_keyed(cluster_request(trial), key) {
                Response::Clustering {
                    settings_id: replayed,
                    ..
                } => assert_eq!(
                    replayed, settings_id,
                    "seed {seed}: key {key:#x} re-executed instead of replaying"
                ),
                other => panic!("seed {seed}: replay of key {key:#x} failed: {other:?}"),
            }
        }
    }
    clean.close();

    // The drain itself is part of the contract: it must complete with
    // storm wreckage (half-open sockets, torn frames) behind it.
    server.shutdown();
}

#[test]
fn storms_across_fixed_seeds_hold_every_invariant() {
    let _g = telemetry_lock();
    for seed in FIXED_SEEDS {
        run_storm(seed, ExecutorMode::EventLoop);
    }
}

#[test]
fn storms_across_fixed_seeds_hold_every_invariant_on_threads() {
    let _g = telemetry_lock();
    for seed in FIXED_SEEDS {
        run_storm(seed, ExecutorMode::Threads);
    }
}

#[test]
fn storm_for_env_seed_holds_every_invariant() {
    // CI passes RUST_SEED=${{ github.run_id }} so every run explores a
    // fresh schedule; locally the test is a no-op unless the var is set.
    // The fresh schedule runs on both executors — a differential check
    // with an identical fault plan.
    if let Ok(seed) = std::env::var("RUST_SEED") {
        let seed: u64 = seed.parse().expect("RUST_SEED must be a u64");
        let _g = telemetry_lock();
        run_storm(seed, ExecutorMode::EventLoop);
        run_storm(seed, ExecutorMode::Threads);
    }
}

/// A request that panics mid-session must stay a *session* problem:
/// the server survives, the panic is counted, the half-finished
/// request lands in the accounting ring with status `"panic"`, and the
/// flight recorder dumps the span tree that was open when it died.
#[test]
fn injected_session_panic_is_observable_and_contained() {
    let _g = telemetry_lock();
    let dump = std::env::temp_dir().join(format!(
        "perfdmf-chaos-fault-dump-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&dump);
    perfdmf_telemetry::set_tracing(true);
    perfdmf_telemetry::trace::set_fault_dump_path(Some(dump.clone()));

    let (conn, _trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 2,
            allow_fault_injection: true,
            ..ServerConfig::default()
        },
    )
    .expect("server start");

    let session_panics_before = counter("server.session_panics");
    let request_panics_before = counter("server.request_panics");

    // The victim's session thread dies mid-request, so the client sees
    // a transport failure, not a reply.
    let mut victim = NetClient::new(server.addr(), "panic-victim").with_policy(RetryPolicy::none());
    let response = victim.request(Request::InjectPanic("session:chaos".into()));
    assert!(
        matches!(response, Response::Failed { .. }),
        "a panicking session must surface as a clean failure, got {response:?}"
    );
    victim.close();

    // Containment: the accept loop caught the unwind and keeps serving.
    let mut probe = NetClient::new(server.addr(), "panic-probe");
    assert!(probe.ping(), "server must survive a session panic");
    probe.close();

    assert!(
        counter("server.session_panics") > session_panics_before,
        "session panic must be counted"
    );
    assert!(
        counter("server.request_panics") > request_panics_before,
        "request panic must be counted"
    );

    // The accounting ring kept the half-finished request.
    let log = perfdmf_telemetry::requests::log();
    let rec = log
        .iter()
        .rev()
        .find(|r| r.status == "panic")
        .expect("panicking request must land in the accounting ring");
    assert_eq!(rec.kind, "inject_panic");
    assert_eq!(rec.tenant, "panic-victim");

    // And the flight recorder dumped the open span tree to disk.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !std::fs::metadata(&dump)
        .map(|m| m.len() > 0)
        .unwrap_or(false)
    {
        assert!(Instant::now() < deadline, "fault dump never written");
        std::thread::sleep(Duration::from_millis(20));
    }
    let json = std::fs::read_to_string(&dump).expect("dump readable");
    assert!(
        json.contains("server.request"),
        "dump must contain the panicking request's span"
    );

    perfdmf_telemetry::trace::set_fault_dump_path(None);
    perfdmf_telemetry::set_tracing(false);
    let _ = std::fs::remove_file(&dump);
    server.shutdown();
}

#[test]
fn same_idempotency_key_twice_applies_once() {
    let (conn, trial) = seeded_database();
    let server = PerfdmfServer::start(conn.clone()).expect("server start");
    let mut client = NetClient::new(server.addr(), "idempotent");
    let key = 0xDEAD_0001;
    let first = match client.request_keyed(cluster_request(trial), key) {
        Response::Clustering { settings_id, .. } => settings_id,
        other => panic!("clustering failed: {other:?}"),
    };
    let second = match client.request_keyed(cluster_request(trial), key) {
        Response::Clustering { settings_id, .. } => settings_id,
        other => panic!("replay failed: {other:?}"),
    };
    assert_eq!(first, second, "same key must not write twice");
    // Distinct key → a genuinely new analysis run.
    let third = match client.request_keyed(cluster_request(trial), key + 1) {
        Response::Clustering { settings_id, .. } => settings_id,
        other => panic!("fresh key failed: {other:?}"),
    };
    assert_ne!(first, third, "a fresh key must execute");
    client.close();
    server.shutdown();
}

#[test]
fn sessions_surface_in_the_registry_with_close_reasons() {
    let (conn, _trial) = seeded_database();
    let server = PerfdmfServer::start(conn).expect("server start");
    let mut client = NetClient::new(server.addr(), "registry-probe");
    assert!(client.ping());
    let session = client.session();
    client.close();
    // The close is asynchronous from the server's point of view; poll
    // briefly for the record to settle.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let log = perfdmf_telemetry::sessions::log();
        if let Some(record) = log.iter().find(|r| r.id == session) {
            assert_eq!(record.tenant, "registry-probe");
            if record.state == perfdmf_telemetry::sessions::SessionState::Closed {
                assert_eq!(record.close_reason.as_deref(), Some("client goodbye"));
                assert!(record.requests >= 1);
                break;
            }
        }
        assert!(Instant::now() < deadline, "session record never closed");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn deadline_propagates_into_execution() {
    let (conn, _trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 1,
            queue_capacity: 4,
            // The staller below drives Request::Stall over the wire,
            // which production servers reject.
            allow_fault_injection: true,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    // Saturate the single worker, then send a short-deadline request:
    // it must come back as a clean failure (shed at dequeue or expired
    // in queue), not hang for the stall's duration.
    let addr = server.addr();
    let stall = std::thread::spawn(move || {
        let mut c = NetClient::new(addr, "staller").with_policy(RetryPolicy::none());
        c.request(Request::Stall { millis: 1500 });
        c.close();
    });
    std::thread::sleep(Duration::from_millis(100));
    let mut client = NetClient::new(addr, "deadliner")
        .with_policy(RetryPolicy::none())
        .with_deadline(Duration::from_millis(200));
    let started = Instant::now();
    let response = client.request(Request::Ping);
    let elapsed = started.elapsed();
    assert!(
        matches!(response, Response::Failed { .. } | Response::Overloaded),
        "short-deadline request behind a stalled worker must fail cleanly, got {response:?}"
    );
    assert!(
        elapsed < Duration::from_secs(1),
        "deadline must bound the wait, took {elapsed:?}"
    );
    client.close();
    stall.join().unwrap();
    server.shutdown();
}
