//! Secondary indexes.
//!
//! Indexes are ordered (`BTreeMap`) so they serve equality lookups, range
//! scans (`BETWEEN`, `<`, `>`), and ordered iteration for `ORDER BY`
//! pushdown. Values use [`Value`]'s total order, which keeps NaN and NULL
//! handling consistent with the executor.

use crate::table::RowId;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Bound;

/// An ordered secondary index over one column.
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name.
    pub name: String,
    /// Column offset within the table schema.
    pub column: usize,
    /// Enforce uniqueness of non-NULL keys.
    pub unique: bool,
    /// Key → row ids (sorted vec; typically tiny for unique indexes).
    map: BTreeMap<Value, Vec<RowId>>,
    /// Number of (key, row) entries.
    entries: usize,
}

impl Index {
    /// Create an empty index.
    pub fn new(name: impl Into<String>, column: usize, unique: bool) -> Self {
        Index {
            name: name.into(),
            column,
            unique,
            map: BTreeMap::new(),
            entries: 0,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Number of distinct non-NULL keys (O(1); feeds scan selection).
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Smallest indexed key, if any.
    pub fn min_key(&self) -> Option<&Value> {
        self.map.keys().next()
    }

    /// Largest indexed key, if any.
    pub fn max_key(&self) -> Option<&Value> {
        self.map.keys().next_back()
    }

    /// Add an entry. NULL keys are not indexed (SQL semantics: NULL never
    /// matches an equality or range predicate).
    pub fn insert(&mut self, key: &Value, id: RowId) {
        if key.is_null() {
            return;
        }
        let ids = self.map.entry(key.clone()).or_default();
        match ids.binary_search(&id) {
            Ok(_) => {}
            Err(pos) => {
                ids.insert(pos, id);
                self.entries += 1;
            }
        }
    }

    /// Remove an entry.
    pub fn remove(&mut self, key: &Value, id: RowId) {
        if key.is_null() {
            return;
        }
        if let Some(ids) = self.map.get_mut(key) {
            if let Ok(pos) = ids.binary_search(&id) {
                ids.remove(pos);
                self.entries -= 1;
            }
            if ids.is_empty() {
                self.map.remove(key);
            }
        }
    }

    /// Row ids with exactly this key.
    pub fn get(&self, key: &Value) -> Vec<RowId> {
        self.map.get(key).cloned().unwrap_or_default()
    }

    /// Row ids with keys in the given (inclusive/exclusive) bounds, in key
    /// order.
    pub fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        let mut out = Vec::new();
        for (_, ids) in self.map.range::<Value, _>((low, high)) {
            out.extend_from_slice(ids);
        }
        out
    }

    /// All row ids in ascending key order.
    pub fn scan_asc(&self) -> Vec<RowId> {
        let mut out = Vec::with_capacity(self.entries);
        for ids in self.map.values() {
            out.extend_from_slice(ids);
        }
        out
    }

    /// Distinct keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &Value> {
        self.map.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut ix = Index::new("ix", 0, false);
        ix.insert(&Value::Int(5), 1);
        ix.insert(&Value::Int(5), 2);
        ix.insert(&Value::Int(7), 3);
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.get(&Value::Int(5)), vec![1, 2]);
        ix.remove(&Value::Int(5), 1);
        assert_eq!(ix.get(&Value::Int(5)), vec![2]);
        ix.remove(&Value::Int(5), 2);
        assert!(ix.get(&Value::Int(5)).is_empty());
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut ix = Index::new("ix", 0, false);
        ix.insert(&Value::Int(1), 9);
        ix.insert(&Value::Int(1), 9);
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn null_keys_not_indexed() {
        let mut ix = Index::new("ix", 0, false);
        ix.insert(&Value::Null, 1);
        assert!(ix.is_empty());
        ix.remove(&Value::Null, 1); // no-op, no panic
    }

    #[test]
    fn range_queries() {
        let mut ix = Index::new("ix", 0, false);
        for i in 0..10 {
            ix.insert(&Value::Int(i), i as RowId);
        }
        let got = ix.range(
            Bound::Included(&Value::Int(3)),
            Bound::Excluded(&Value::Int(7)),
        );
        assert_eq!(got, vec![3, 4, 5, 6]);
        let all = ix.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 10);
    }

    #[test]
    fn cross_type_numeric_keys() {
        let mut ix = Index::new("ix", 0, false);
        ix.insert(&Value::Int(2), 1);
        // 2.0 == 2 under total order → lands in the same bucket.
        ix.insert(&Value::Float(2.0), 2);
        assert_eq!(ix.get(&Value::Int(2)), vec![1, 2]);
        assert_eq!(ix.get(&Value::Float(2.0)), vec![1, 2]);
    }

    #[test]
    fn scan_order() {
        let mut ix = Index::new("ix", 0, false);
        ix.insert(&Value::Text("b".into()), 1);
        ix.insert(&Value::Text("a".into()), 2);
        ix.insert(&Value::Text("c".into()), 0);
        assert_eq!(ix.scan_asc(), vec![2, 1, 0]);
        let keys: Vec<_> = ix.keys().cloned().collect();
        assert_eq!(
            keys,
            vec![
                Value::Text("a".into()),
                Value::Text("b".into()),
                Value::Text("c".into())
            ]
        );
    }
}
