//! End-to-end distributed-tracing acceptance: one `ClusterTrial` sent
//! through [`NetClient`] over real TCP must produce a *single* causal
//! trace spanning both sides of the wire — the client's
//! `client.request` span parents the server's `server.request` span,
//! which parents the explorer/db work — and the merged Chrome-trace
//! export must render the two sides as distinct processes joined by
//! flow arrows. The same request must also land in the
//! `perfdmf_requests` system table with its resource bill and the same
//! trace id.

use perfdmf_core::DatabaseSession;
use perfdmf_db::{Connection, Value};
use perfdmf_explorer::{ClusterMethod, FeatureSpace, Request, Response};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_server::{NetClient, PerfdmfServer, ServerConfig};
use perfdmf_telemetry as telemetry;
use telemetry::trace::{export_chrome_trace_merged, TraceProcess};
use telemetry::SpanRecord;

/// A profile with two obvious thread-behaviour groups, so clustering
/// does real work (mirrors the chaos harness fixture).
fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("trace-e2e");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..16).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 8 { (100.0, 5.0) } else { (10.0, 80.0) };
        let j = (i % 4) as f64 * 0.1;
        p.set_interval(a, t, m, IntervalData::new(ca + j, ca + j, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb - j, cb - j, 10.0, 0.0));
    }
    let trial = session
        .store_profile("trace-e2e-app", "trace-e2e-exp", &p)
        .expect("store profile");
    (conn, trial)
}

fn find<'a>(records: &'a [SpanRecord], name: &str) -> Option<&'a SpanRecord> {
    records.iter().find(|r| r.name == name)
}

#[test]
fn cluster_trial_over_tcp_yields_one_cross_process_trace() {
    telemetry::set_tracing(true);
    telemetry::trace::recorder().clear();
    telemetry::requests::clear();

    let (conn, trial) = seeded_database();
    let server = PerfdmfServer::start_with_config(
        conn.clone(),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server start");

    let mut client = NetClient::new(server.addr(), "trace-e2e");
    let response = client.request(Request::ClusterTrial {
        trial_id: trial,
        features: FeatureSpace::EventsOfMetric("TIME".into()),
        k: None,
        max_k: 4,
        pca_components: 0,
        method: ClusterMethod::KMeans,
    });
    assert!(
        matches!(response, Response::Clustering { .. }),
        "clustering must succeed, got {response:?}"
    );

    // The reply carried the server-side resource bill.
    let usage = client
        .last_usage()
        .expect("v3 reply must carry resource usage");
    assert!(usage.execute_ns > 0, "execution must be metered: {usage:?}");
    assert!(
        usage.rows_scanned > 0,
        "loading the trial must scan rows: {usage:?}"
    );
    client.close();
    server.shutdown();
    telemetry::set_tracing(false);

    let records = telemetry::trace::recorder().dump();
    let client_span = find(&records, "client.request").expect("client span recorded");
    let server_span = find(&records, "server.request").expect("server span recorded");

    // One causal tree across the wire: same trace id, parent link from
    // the server's slice back to the client's.
    assert_eq!(
        server_span.trace, client_span.trace,
        "both sides must share one trace id"
    );
    assert_eq!(
        server_span.parent, client_span.span,
        "server.request must be parented by client.request"
    );
    // …and the tree keeps growing on the server side: the explorer
    // worker ran inside the server span, on the same trace.
    let explorer_span = find(&records, "explorer.request").expect("explorer span recorded");
    assert_eq!(explorer_span.trace, client_span.trace);
    assert_eq!(explorer_span.parent, server_span.span);

    // Merged export: the client-side spans as one Chrome-trace process,
    // everything server-side as another.
    let (client_records, server_records): (Vec<SpanRecord>, Vec<SpanRecord>) = records
        .iter()
        .filter(|r| r.trace == client_span.trace)
        .cloned()
        .partition(|r| r.name.starts_with("client."));
    assert!(
        server_records.len() >= 2,
        "server side must contribute several spans, got {}",
        server_records.len()
    );
    let json = export_chrome_trace_merged(&[
        TraceProcess {
            pid: 1,
            name: "perfdmf-client",
            records: &client_records,
        },
        TraceProcess {
            pid: 2,
            name: "perfdmf-server",
            records: &server_records,
        },
    ]);
    assert!(json.contains("\"perfdmf-client\""), "client process named");
    assert!(json.contains("\"perfdmf-server\""), "server process named");
    // The server.request slice (pid 2) is bound to the client.request
    // slice (pid 1) by a flow-start / flow-finish pair.
    assert!(
        json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
        "merged export must emit cross-process flow arrows"
    );

    // The accounting ring surfaces the same request — same trace id,
    // same bill — through plain SQL.
    let hex_trace = format!("{:016x}", client_span.trace);
    let rows = conn
        .query(
            "SELECT trace, kind, status, rows_scanned, execute_ns \
             FROM perfdmf_requests WHERE kind = 'cluster_trial'",
            &[],
        )
        .expect("perfdmf_requests must be queryable");
    let row = rows
        .rows
        .iter()
        .find(|r| r[0] == Value::Text(hex_trace.clone().into()))
        .unwrap_or_else(|| panic!("no perfdmf_requests row with trace {hex_trace}: {rows:?}"));
    assert_eq!(row[1], Value::Text("cluster_trial".into()));
    assert_eq!(row[2], Value::Text("ok".into()));
    assert_eq!(row[3], Value::Int(usage.rows_scanned as i64));
    assert_eq!(row[4], Value::Int(usage.execute_ns as i64));

    // And the per-kind rollup aggregates it.
    let summary = conn
        .query(
            "SELECT count, mean_latency_ns FROM perfdmf_request_summary \
             WHERE kind = 'cluster_trial'",
            &[],
        )
        .expect("perfdmf_request_summary must be queryable");
    assert_eq!(summary.rows.len(), 1);
    assert!(matches!(summary.rows[0][0], Value::Int(n) if n >= 1));
    assert!(matches!(summary.rows[0][1], Value::Float(m) if m > 0.0));
}
