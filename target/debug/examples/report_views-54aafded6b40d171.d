/root/repo/target/debug/examples/report_views-54aafded6b40d171.d: examples/report_views.rs Cargo.toml

/root/repo/target/debug/examples/libreport_views-54aafded6b40d171.rmeta: examples/report_views.rs Cargo.toml

examples/report_views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
