//! TAU profile importer.
//!
//! TAU writes one `profile.<node>.<context>.<thread>` file per thread of
//! execution. Single-metric runs put them straight in the run directory;
//! multi-metric runs (`TAU_MULTIPLE_COUNTERS`) create one
//! `MULTI__<METRIC>` directory per metric, each with its own
//! `profile.n.c.t` set. This importer handles both layouts.
//!
//! File grammar (as produced by TAU 2.x):
//!
//! ```text
//! <n> templated_functions_MULTI_<METRIC>
//! # Name Calls Subrs Excl Incl ProfileCalls #
//! "main()" 1 5 60.5 100.25 0 GROUP="TAU_USER"
//! ...
//! <n> aggregates
//! <n> userevents
//! # eventname numevents max min mean sumsqr
//! "Message size" 12 1024 8 512 3.2e+06
//! ```

use crate::error::{ImportError, Result};
use perfdmf_profile::{
    AtomicData, AtomicEvent, IntervalData, IntervalEvent, Metric, MetricId, Profile, ThreadId,
};
use std::path::Path;

const FORMAT: &str = "tau";

/// Parse the `node.context.thread` suffix of a `profile.n.c.t` filename.
pub fn parse_profile_filename(name: &str) -> Option<ThreadId> {
    let rest = name.strip_prefix("profile.")?;
    let mut parts = rest.split('.');
    let node = parts.next()?.parse().ok()?;
    let context = parts.next()?.parse().ok()?;
    let thread = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(ThreadId::new(node, context, thread))
}

/// One parsed `profile.n.c.t` file, not yet applied to a [`Profile`].
///
/// Parsing into a shard is a pure function of the file text, so shards can
/// be produced on worker threads; applying them (which mutates the shared
/// profile's registries) stays serial and cheap.
#[derive(Debug, Clone)]
pub struct TauShard {
    /// Metric named in the file header.
    pub metric_name: String,
    /// `(event name, group, data)` per function line, in file order.
    pub functions: Vec<(String, String, IntervalData)>,
    /// `(event name, data)` per userevent line, in file order.
    pub userevents: Vec<(String, AtomicData)>,
}

/// Parse one TAU profile file's text into `profile` for `thread`.
///
/// The metric named in the header is registered (or looked up) in the
/// profile; returns that metric's id.
pub fn parse_tau_text(text: &str, thread: ThreadId, profile: &mut Profile) -> Result<MetricId> {
    let shard = parse_tau_shard(text)?;
    Ok(apply_tau_shard(&shard, thread, profile))
}

/// Register a parsed shard's metric, events, and data under `thread`.
/// Registration order follows file order, so applying shards in sorted
/// thread order reproduces the serial importer's event/metric numbering.
pub fn apply_tau_shard(shard: &TauShard, thread: ThreadId, profile: &mut Profile) -> MetricId {
    let metric = profile.add_metric(Metric::measured(shard.metric_name.clone()));
    profile.add_thread(thread);
    for (name, group, data) in &shard.functions {
        let event = profile.add_event(IntervalEvent::new(name, group));
        profile.set_interval(event, thread, metric, *data);
    }
    for (name, data) in &shard.userevents {
        let ae = profile.add_atomic_event(AtomicEvent::new(name, "TAU_EVENT"));
        profile.set_atomic(ae, thread, *data);
    }
    metric
}

/// Parse one TAU profile file's text into a standalone [`TauShard`].
pub fn parse_tau_shard(text: &str) -> Result<TauShard> {
    let mut lines = text.lines().enumerate();

    // Header: "<n> templated_functions[_MULTI_<METRIC>]"
    let (_, header) = lines
        .next()
        .ok_or_else(|| ImportError::format(FORMAT, 1, "empty file"))?;
    let mut hp = header.splitn(2, ' ');
    let n_funcs: usize = hp
        .next()
        .unwrap_or("")
        .trim()
        .parse()
        .map_err(|_| ImportError::format(FORMAT, 1, "bad function count in header"))?;
    let tail = hp.next().unwrap_or("").trim();
    if !tail.starts_with("templated_functions") {
        return Err(ImportError::format(
            FORMAT,
            1,
            format!("unexpected header {header:?}"),
        ));
    }
    let metric_name = tail
        .strip_prefix("templated_functions_MULTI_")
        .unwrap_or("GET_TIME_OF_DAY")
        .to_string();
    let mut shard = TauShard {
        metric_name,
        functions: Vec::new(),
        userevents: Vec::new(),
    };

    // Column-header comment line.
    let (_, columns) = lines
        .next()
        .ok_or_else(|| ImportError::format(FORMAT, 2, "missing column header"))?;
    if !columns.trim_start().starts_with('#') {
        return Err(ImportError::format(
            FORMAT,
            2,
            "expected '# Name Calls Subrs Excl Incl ...' comment",
        ));
    }

    // Function lines.
    let mut parsed_funcs = 0usize;
    let mut rest_line = None;
    for (lineno, line) in lines.by_ref() {
        if parsed_funcs == n_funcs {
            rest_line = Some((lineno, line));
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (name, tail) = parse_quoted(line)
            .ok_or_else(|| ImportError::format(FORMAT, lineno + 1, "expected quoted event name"))?;
        let mut fields = tail.split_whitespace();
        let calls: f64 = next_num(&mut fields, FORMAT, lineno, "calls")?;
        let subrs: f64 = next_num(&mut fields, FORMAT, lineno, "subrs")?;
        let excl: f64 = next_num(&mut fields, FORMAT, lineno, "exclusive")?;
        let incl: f64 = next_num(&mut fields, FORMAT, lineno, "inclusive")?;
        let _profile_calls: f64 = next_num(&mut fields, FORMAT, lineno, "profile calls")?;
        let group = tail
            .split_once("GROUP=\"")
            .and_then(|(_, g)| g.split('"').next())
            .unwrap_or("TAU_DEFAULT")
            .to_string();
        shard.functions.push((
            name.to_string(),
            group,
            IntervalData::new(incl, excl, calls, subrs),
        ));
        parsed_funcs += 1;
    }
    if parsed_funcs != n_funcs {
        return Err(ImportError::format(
            FORMAT,
            0,
            format!("header promised {n_funcs} functions, found {parsed_funcs}"),
        ));
    }

    // Aggregates section: "<n> aggregates" (we skip aggregate lines).
    let mut lines: Box<dyn Iterator<Item = (usize, &str)>> = match rest_line {
        Some(first) => Box::new(std::iter::once(first).chain(lines)),
        None => Box::new(lines),
    };
    let Some((lineno, agg_header)) = lines.next() else {
        return Ok(shard); // aggregates/userevents sections are optional
    };
    let n_aggregates = section_count(agg_header, "aggregates")
        .ok_or_else(|| ImportError::format(FORMAT, lineno + 1, "expected '<n> aggregates'"))?;
    // Bound the skip by the remaining input, not the header's count: a
    // corrupt count (or a truncated file) must fail fast, not spin for
    // up to `usize::MAX` iterations on an exhausted iterator.
    for found in 0..n_aggregates {
        if lines.next().is_none() {
            return Err(ImportError::format(
                FORMAT,
                0,
                format!("header promised {n_aggregates} aggregates, found {found}"),
            ));
        }
    }

    // User events: "<n> userevents" + comment + lines.
    let Some((lineno, ue_header)) = lines.next() else {
        return Ok(shard);
    };
    let n_userevents = section_count(ue_header, "userevents")
        .ok_or_else(|| ImportError::format(FORMAT, lineno + 1, "expected '<n> userevents'"))?;
    if n_userevents > 0 {
        let (lineno, comment) = lines
            .next()
            .ok_or_else(|| ImportError::format(FORMAT, lineno + 2, "missing userevent header"))?;
        if !comment.trim_start().starts_with('#') {
            return Err(ImportError::format(
                FORMAT,
                lineno + 1,
                "expected '# eventname numevents max min mean sumsqr'",
            ));
        }
        let mut parsed = 0usize;
        for (lineno, line) in lines.by_ref() {
            if parsed == n_userevents {
                break;
            }
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (name, tail) = parse_quoted(line).ok_or_else(|| {
                ImportError::format(FORMAT, lineno + 1, "expected quoted userevent name")
            })?;
            let mut fields = tail.split_whitespace();
            let count: f64 = next_num(&mut fields, FORMAT, lineno, "numevents")?;
            let max: f64 = next_num(&mut fields, FORMAT, lineno, "max")?;
            let min: f64 = next_num(&mut fields, FORMAT, lineno, "min")?;
            let mean: f64 = next_num(&mut fields, FORMAT, lineno, "mean")?;
            let sumsqr: f64 = next_num(&mut fields, FORMAT, lineno, "sumsqr")?;
            // TAU stores sum of squares; sample stddev from moments.
            let n = count;
            let stddev = if n > 1.0 {
                let var = ((sumsqr - n * mean * mean) / (n - 1.0)).max(0.0);
                var.sqrt()
            } else {
                0.0
            };
            shard.userevents.push((
                name.to_string(),
                AtomicData::from_summary(count as u64, min, max, mean, stddev),
            ));
            parsed += 1;
        }
        if parsed != n_userevents {
            return Err(ImportError::format(
                FORMAT,
                0,
                format!("header promised {n_userevents} userevents, found {parsed}"),
            ));
        }
    }
    Ok(shard)
}

fn section_count(line: &str, keyword: &str) -> Option<usize> {
    let mut parts = line.trim().splitn(2, ' ');
    let n = parts.next()?.parse().ok()?;
    if parts.next()?.trim().starts_with(keyword) {
        Some(n)
    } else {
        None
    }
}

/// Split a leading `"quoted name"` off a line; returns (name, rest).
fn parse_quoted(line: &str) -> Option<(&str, &str)> {
    let rest = line.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some((&rest[..end], &rest[end + 1..]))
}

fn next_num<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    format: &'static str,
    lineno: usize,
    what: &str,
) -> Result<f64> {
    it.next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ImportError::format(format, lineno + 1, format!("bad or missing {what}")))
}

/// Load a TAU run directory (flat `profile.n.c.t` files or `MULTI__<M>`
/// subdirectories) into a single multi-metric [`Profile`].
pub fn load_tau_directory(dir: &Path) -> Result<Profile> {
    let mut profile = Profile::new(
        dir.file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| dir.display().to_string()),
    );
    profile.source_format = "tau".into();
    let entries: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| ImportError::io(dir, e))?
        .filter_map(|e| e.ok())
        .collect();
    let multi_dirs: Vec<_> = entries
        .iter()
        .filter(|e| e.file_name().to_string_lossy().starts_with("MULTI__") && e.path().is_dir())
        .collect();
    let mut loaded = 0usize;
    if !multi_dirs.is_empty() {
        for d in multi_dirs {
            loaded += load_flat_dir(&d.path(), &mut profile)?;
        }
    } else {
        loaded = load_flat_dir(dir, &mut profile)?;
    }
    if loaded == 0 {
        return Err(ImportError::NoProfiles(dir.to_path_buf()));
    }
    for m in 0..profile.metrics().len() {
        profile.recompute_derived_fields(perfdmf_profile::MetricId(m));
    }
    Ok(profile)
}

fn load_flat_dir(dir: &Path, profile: &mut Profile) -> Result<usize> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| ImportError::io(dir, e))?
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            parse_profile_filename(&name).map(|t| (t, e.path()))
        })
        .collect();
    files.sort_by_key(|(t, _)| *t);
    // Register all threads first: bulk registration avoids per-thread
    // re-striding of the dense storage.
    profile.add_threads(files.iter().map(|(t, _)| *t));
    // Read + parse each node-context-thread shard on the worker pool (pure
    // per-file work), then apply in sorted thread order so event and
    // metric registration matches the serial importer exactly.
    perfdmf_telemetry::add("import.tau.shards", files.len() as u64);
    let shards = perfdmf_pool::try_map(&files, |(_, path)| {
        let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
        parse_tau_shard(&text)
    })?;
    let count = shards.len();
    for ((thread, _), shard) in files.iter().zip(&shards) {
        apply_tau_shard(shard, *thread, profile);
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::IntervalField;

    const SAMPLE: &str = r#"3 templated_functions_MULTI_GET_TIME_OF_DAY
# Name Calls Subrs Excl Incl ProfileCalls #
"main()" 1 2 60.5 100.25 0 GROUP="TAU_USER"
"MPI_Send()" 10 0 25.75 25.75 0 GROUP="MPI"
"compute" 5 0 14 14 0 GROUP="TAU_USER"
0 aggregates
1 userevents
# eventname numevents max min mean sumsqr
"Message size" 4 1024 8 512 1310720
"#;

    #[test]
    fn parses_functions_and_userevents() {
        let mut p = Profile::new("t");
        let m = parse_tau_text(SAMPLE, ThreadId::ZERO, &mut p).unwrap();
        assert_eq!(p.metric(m).name, "GET_TIME_OF_DAY");
        assert_eq!(p.events().len(), 3);
        let main = p.find_event("main()").unwrap();
        let d = p.interval(main, ThreadId::ZERO, m).unwrap();
        assert_eq!(d.inclusive(), Some(100.25));
        assert_eq!(d.exclusive(), Some(60.5));
        assert_eq!(d.calls(), Some(1.0));
        assert_eq!(d.subroutines(), Some(2.0));
        assert_eq!(p.event(p.find_event("MPI_Send()").unwrap()).group, "MPI");
        let ae = p.find_atomic_event("Message size").unwrap();
        let a = p.atomic(ae, ThreadId::ZERO).unwrap();
        assert_eq!(a.count, 4);
        assert_eq!(a.max, 1024.0);
        assert_eq!(a.mean, 512.0);
    }

    #[test]
    fn header_without_multi_defaults_to_time() {
        let text = "1 templated_functions\n# hdr\n\"f\" 1 0 1 1 0 GROUP=\"X\"\n";
        let mut p = Profile::new("t");
        let m = parse_tau_text(text, ThreadId::ZERO, &mut p).unwrap();
        assert_eq!(p.metric(m).name, "GET_TIME_OF_DAY");
    }

    #[test]
    fn sections_optional() {
        let text = "1 templated_functions_MULTI_TIME\n# hdr\n\"f\" 1 0 2.5 2.5 0\n";
        let mut p = Profile::new("t");
        parse_tau_text(text, ThreadId::ZERO, &mut p).unwrap();
        assert_eq!(p.data_point_count(), 1);
    }

    #[test]
    fn bad_inputs_rejected() {
        let mut p = Profile::new("t");
        assert!(parse_tau_text("", ThreadId::ZERO, &mut p).is_err());
        assert!(parse_tau_text("x templated_functions\n", ThreadId::ZERO, &mut p).is_err());
        assert!(parse_tau_text(
            "1 wrong_header\n# h\n\"f\" 1 0 1 1 0\n",
            ThreadId::ZERO,
            &mut p
        )
        .is_err());
        assert!(parse_tau_text(
            "2 templated_functions\n# h\n\"f\" 1 0 1 1 0\n0 aggregates\n0 userevents\n",
            ThreadId::ZERO,
            &mut p
        )
        .is_err());
        assert!(parse_tau_text(
            "1 templated_functions\n# h\nf 1 0 1 1 0\n",
            ThreadId::ZERO,
            &mut p
        )
        .is_err());
    }

    #[test]
    fn malformed_inputs_error_without_panicking_or_hanging() {
        // A corrupt section count must fail fast, not iterate to the
        // promised (possibly astronomical) count.
        let huge_aggregates =
            "1 templated_functions\n# h\n\"f\" 1 0 1 1 0\n99999999999999 aggregates\n";
        let mut p = Profile::new("t");
        let err = parse_tau_text(huge_aggregates, ThreadId::ZERO, &mut p).unwrap_err();
        assert!(err.to_string().contains("aggregates"), "{err}");

        let huge_userevents =
            "1 templated_functions\n# h\n\"f\" 1 0 1 1 0\n0 aggregates\n500 userevents\n# h\n";
        let mut p = Profile::new("t");
        let err = parse_tau_text(huge_userevents, ThreadId::ZERO, &mut p).unwrap_err();
        assert!(err.to_string().contains("userevents"), "{err}");

        // Truncating a valid file at every byte must yield Ok or a
        // structured error — never a panic (the sample is ASCII, so
        // every byte offset is a char boundary).
        for i in 0..SAMPLE.len() {
            let mut p = Profile::new("t");
            let _ = parse_tau_text(&SAMPLE[..i], ThreadId::ZERO, &mut p);
        }
    }

    #[test]
    fn filename_parsing() {
        assert_eq!(
            parse_profile_filename("profile.3.0.2"),
            Some(ThreadId::new(3, 0, 2))
        );
        assert_eq!(parse_profile_filename("profile.0.0"), None);
        assert_eq!(parse_profile_filename("profile.a.b.c"), None);
        assert_eq!(parse_profile_filename("other.0.0.0"), None);
        assert_eq!(parse_profile_filename("profile.0.0.0.0"), None);
    }

    #[test]
    fn directory_roundtrip_single_and_multi() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_tau_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // single metric layout, two ranks
        std::fs::create_dir_all(&dir).unwrap();
        for n in 0..2 {
            std::fs::write(dir.join(format!("profile.{n}.0.0")), SAMPLE).unwrap();
        }
        let p = load_tau_directory(&dir).unwrap();
        assert_eq!(p.threads().len(), 2);
        assert_eq!(p.metrics().len(), 1);
        assert_eq!(p.data_point_count(), 6);
        // percentages recomputed
        let main = p.find_event("main()").unwrap();
        let m = p.find_metric("GET_TIME_OF_DAY").unwrap();
        let s = p.event_stats(main, m, IntervalField::Inclusive).unwrap();
        assert_eq!(s.count, 2);

        // multi-metric layout
        let mdir = dir.join("multi");
        for metric in ["GET_TIME_OF_DAY", "PAPI_FP_OPS"] {
            let sub = mdir.join(format!("MULTI__{metric}"));
            std::fs::create_dir_all(&sub).unwrap();
            let text = SAMPLE.replace("GET_TIME_OF_DAY", metric);
            std::fs::write(sub.join("profile.0.0.0"), text).unwrap();
        }
        let p = load_tau_directory(&mdir).unwrap();
        assert_eq!(p.metrics().len(), 2);
        assert!(p.find_metric("PAPI_FP_OPS").is_some());
        assert_eq!(p.data_point_count(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_directory_load_matches_serial() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_tau_par_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for n in 0..6 {
            for t in 0..2 {
                std::fs::write(dir.join(format!("profile.{n}.0.{t}")), SAMPLE).unwrap();
            }
        }
        let serial = {
            let _g = perfdmf_pool::override_for_thread(1, 1);
            load_tau_directory(&dir).unwrap()
        };
        let parallel = {
            let _g = perfdmf_pool::override_for_thread(4, 1);
            load_tau_directory(&dir).unwrap()
        };
        assert_eq!(serial.threads(), parallel.threads());
        assert_eq!(serial.data_point_count(), parallel.data_point_count());
        assert_eq!(
            serial.events().iter().map(|e| &e.name).collect::<Vec<_>>(),
            parallel
                .events()
                .iter()
                .map(|e| &e.name)
                .collect::<Vec<_>>()
        );
        let m = serial.find_metric("GET_TIME_OF_DAY").unwrap();
        for ei in 0..serial.events().len() {
            for &t in serial.threads() {
                let a = serial.interval(perfdmf_profile::EventId(ei), t, m);
                let b = parallel.interval(perfdmf_profile::EventId(ei), t, m);
                assert_eq!(a.map(|d| d.inclusive()), b.map(|d| d.inclusive()));
                assert_eq!(a.map(|d| d.exclusive()), b.map(|d| d.exclusive()));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_errors() {
        let dir = std::env::temp_dir().join(format!(
            "pdmf_tau_empty_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            load_tau_directory(&dir),
            Err(ImportError::NoProfiles(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
