//! Metrics time-series recorder: periodic snapshots of the registry in a
//! bounded ring buffer, so the engine's *recent past* — not just its
//! lifetime totals — is queryable.
//!
//! Two entry points:
//!
//! * [`sample_now`] takes one snapshot immediately (deterministic; used by
//!   tests and by callers that sample at their own cadence).
//! * [`start_sampler`] spawns a background thread that samples on a fixed
//!   interval until the returned [`SamplerHandle`] is dropped. The default
//!   interval comes from `PERFDMF_METRICS_INTERVAL_MS` (250ms).
//!
//! The ring holds the most recent `PERFDMF_METRICS_CAPACITY` samples
//! (default 512); older samples fall off the front. Each sample is a full
//! [`Snapshot`] stamped with a monotonically increasing sequence number
//! and milliseconds since the recorder was created, so windowed queries
//! (`WHERE sample >= ...`, `WHERE elapsed_ms > ...`) work without wall
//! clocks. `perfdmf-db` exposes the ring as the `perfdmf_metrics_history`
//! virtual system table (see `docs/introspection.md`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::snapshot::{snapshot, Snapshot};

/// Default ring capacity when `PERFDMF_METRICS_CAPACITY` is unset.
const DEFAULT_CAPACITY: usize = 512;

/// Default sampling interval when `PERFDMF_METRICS_INTERVAL_MS` is unset.
const DEFAULT_INTERVAL_MS: u64 = 250;

/// One snapshot in the time series.
#[derive(Debug, Clone)]
pub struct MetricsSample {
    /// Monotonically increasing sample number (never reused, survives
    /// ring eviction).
    pub seq: u64,
    /// Milliseconds since the recorder was created.
    pub elapsed_ms: u64,
    /// The full registry snapshot taken at that moment.
    pub snapshot: Snapshot,
}

/// Bounded ring of [`MetricsSample`]s.
pub struct MetricsRecorder {
    epoch: Instant,
    capacity: usize,
    inner: Mutex<RecorderInner>,
}

#[derive(Default)]
struct RecorderInner {
    ring: VecDeque<MetricsSample>,
    next_seq: u64,
}

impl MetricsRecorder {
    /// A recorder retaining at most `capacity` samples (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        MetricsRecorder {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// True when no samples have been taken (or all have been evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the registry into the ring now; returns the sample's
    /// sequence number.
    pub fn sample_now(&self) -> u64 {
        let snap = snapshot();
        let elapsed_ms = self.epoch.elapsed().as_millis().min(u64::MAX as u128) as u64;
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(MetricsSample {
            seq,
            elapsed_ms,
            snapshot: snap,
        });
        seq
    }

    /// Copy of the retained samples, oldest first.
    pub fn history(&self) -> Vec<MetricsSample> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Drop all retained samples (sequence numbers keep counting).
    pub fn clear(&self) {
        self.inner.lock().ring.clear();
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
}

/// The process-wide recorder. Capacity is read from
/// `PERFDMF_METRICS_CAPACITY` once, at first use.
pub fn recorder() -> &'static MetricsRecorder {
    static GLOBAL: OnceLock<MetricsRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        MetricsRecorder::with_capacity(env_usize("PERFDMF_METRICS_CAPACITY", DEFAULT_CAPACITY))
    })
}

/// Sample the global recorder once, immediately.
pub fn sample_now() -> u64 {
    recorder().sample_now()
}

/// Configured sampler interval: `PERFDMF_METRICS_INTERVAL_MS` or 250ms.
pub fn default_interval() -> Duration {
    Duration::from_millis(
        std::env::var("PERFDMF_METRICS_INTERVAL_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_INTERVAL_MS)
            .max(1),
    )
}

/// Owner handle of a background sampler thread. Dropping it stops the
/// thread (joining it, so no sample races the owner's teardown).
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Ask the sampler to stop and wait for its thread to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a background thread sampling the global recorder every
/// `interval`. The thread takes one sample immediately so short-lived
/// processes still record history, then sleeps in small slices so stop
/// requests are honored promptly.
pub fn start_sampler(interval: Duration) -> SamplerHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("perfdmf-metrics-sampler".into())
        .spawn(move || {
            sample_now();
            let slice = Duration::from_millis(10).min(interval);
            let mut since_sample = Duration::ZERO;
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(slice);
                since_sample += slice;
                if since_sample >= interval {
                    sample_now();
                    since_sample = Duration::ZERO;
                }
            }
        })
        .expect("spawn metrics sampler");
    SamplerHandle {
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let rec = MetricsRecorder::with_capacity(4);
        for _ in 0..10 {
            rec.sample_now();
        }
        let hist = rec.history();
        assert_eq!(hist.len(), 4);
        let seqs: Vec<u64> = hist.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted, order kept");
        assert!(hist.windows(2).all(|w| w[0].elapsed_ms <= w[1].elapsed_ms));
    }

    #[test]
    fn samples_capture_live_counters() {
        crate::counter("metrics.test.c").add(3);
        let rec = MetricsRecorder::with_capacity(8);
        rec.sample_now();
        crate::counter("metrics.test.c").add(4);
        rec.sample_now();
        let hist = rec.history();
        let v0 = hist[0].snapshot.counter("metrics.test.c").unwrap().value;
        let v1 = hist[1].snapshot.counter("metrics.test.c").unwrap().value;
        assert_eq!(v1 - v0, 4, "consecutive samples expose the delta");
    }

    #[test]
    fn sampler_thread_samples_and_stops() {
        let rec = recorder();
        let before = rec.len();
        let handle = start_sampler(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(40));
        handle.stop();
        let after = rec.len();
        assert!(after > before, "sampler must have recorded samples");
        let settled = rec.len();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(rec.len(), settled, "no samples after stop");
    }
}
