#!/usr/bin/env bash
# Run the headline benchmarks (e1 large-scale, e7 SQL aggregates,
# e8 telemetry overhead, e9 recovery, e10 columnar, e11 server) and
# snapshot every result into one dated JSON file, so runs can be diffed
# across commits or archived as CI artifacts.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# Defaults to bench_snapshot_YYYY-MM-DD.json in the repo root. Honors
# PERFDMF_BENCH_QUICK=1 (shrinks every size sweep to its smallest
# point — what CI uses); leave it unset for real measurements.
#
# Archival workflow (documented in EXPERIMENTS.md): after a perf-relevant
# change, run this on a quiet machine and commit the output as
# BENCH_YYYY-MM-DD.json, so the history of measured numbers travels with
# the code that produced them:
#
#     scripts/bench_snapshot.sh BENCH_$(date +%Y-%m-%d).json
#     git add BENCH_*.json
set -eu
set -o pipefail

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo_root"

out=${1:-bench_snapshot_$(date +%Y-%m-%d).json}
log=$(mktemp)
trap 'rm -f "$log"' EXIT

benches="e1_large_scale e7_sql_aggregates e8_telemetry_overhead e9_recovery e10_columnar e11_server"
# PERFDMF_BENCH_QUICK also shrinks the e11 swarm unless the caller
# already pinned a size.
if [ "${PERFDMF_BENCH_QUICK:-}" = "1" ] && [ -z "${PERFDMF_E11_CLIENTS:-}" ]; then
    export PERFDMF_E11_CLIENTS=50
fi
for bench in $benches; do
    cargo bench -p perfdmf-bench --bench "$bench" 2>&1 | tee -a "$log"
done

git_rev=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
export BENCH_SNAPSHOT_OUT="$out" BENCH_SNAPSHOT_GIT="$git_rev" BENCH_SNAPSHOT_LOG="$log"

# The vendored criterion shim prints one line per result:
#   bench: <group/name>            <mean>/iter  [<rate> elem/s|MiB/s]
# Parse those into a sorted JSON document; times are nanoseconds.
python3 - <<'EOF'
import json, os, re, datetime, sys

UNIT_NS = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}
line_re = re.compile(
    r"^bench:\s+(?P<id>\S+)\s+(?P<val>[0-9.]+)(?P<unit>ns|µs|us|ms|s)/iter"
    r"(?:\s+(?P<rate>[0-9.]+)\s+(?P<rate_unit>elem/s|MiB/s))?"
)

results = {}
for line in open(os.environ["BENCH_SNAPSHOT_LOG"]):
    m = line_re.match(line.strip())
    if not m:
        continue
    entry = {
        "id": m.group("id"),
        "mean_ns": float(m.group("val")) * UNIT_NS[m.group("unit")],
    }
    if m.group("rate"):
        key = "elems_per_s" if m.group("rate_unit") == "elem/s" else "mib_per_s"
        entry[key] = float(m.group("rate"))
    results[entry["id"]] = entry  # last run wins if an id repeats

if not results:
    sys.exit("no 'bench:' lines found in the bench output")

doc = {
    "date": datetime.date.today().isoformat(),
    "git": os.environ["BENCH_SNAPSHOT_GIT"],
    "quick": os.environ.get("PERFDMF_BENCH_QUICK") == "1",
    "results": sorted(results.values(), key=lambda r: r["id"]),
}
out = os.environ["BENCH_SNAPSHOT_OUT"]
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"{len(results)} results -> {out}")
EOF
