//! Virtual file system: the seam between the storage layer and the OS.
//!
//! All file I/O performed by the WAL and snapshot code goes through the
//! [`Vfs`] trait — [`RealVfs`] forwards to `std::fs`, while
//! [`crate::faults::FaultVfs`] wraps another `Vfs` and injects
//! deterministic faults (failed writes, torn writes, fsync errors,
//! ENOSPC, short reads, bit flips) so recovery code can be exercised
//! under every failure the real layer may produce.
//!
//! The trait is deliberately narrow: it models exactly the operations
//! the engine performs (append-mode open, whole-file read, atomic
//! replace via temp + rename), not a general file system. Keeping the
//! surface small is what makes exhaustive fault scheduling tractable —
//! every crash point is one of these calls.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

/// An open writable file handle obtained from a [`Vfs`].
pub trait VfsFile: Send + Sync {
    /// Write the whole buffer (one logical I/O operation).
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()>;
    /// Flush userspace buffers to the OS.
    fn flush(&mut self) -> std::io::Result<()>;
    /// Durably sync file contents and metadata to stable storage.
    fn sync_all(&mut self) -> std::io::Result<()>;
    /// Truncate (or extend) the file.
    fn set_len(&mut self, len: u64) -> std::io::Result<()>;
    /// Seek to an absolute offset from the start.
    fn seek_start(&mut self, pos: u64) -> std::io::Result<()>;
}

/// The file-system operations the storage layer needs.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Open `path` for appending, creating it if absent.
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>>;
    /// Create (truncating) `path` for writing.
    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>>;
    /// Read the entire contents of `path`.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Atomically replace `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Does `path` exist?
    fn exists(&self, path: &Path) -> bool;
    /// Create a directory and all missing parents.
    fn create_dir_all(&self, path: &Path) -> std::io::Result<()>;
    /// Remove a file; missing files are not an error.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;
}

/// The production [`Vfs`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

/// Shared handle to the production VFS.
pub fn real() -> Arc<dyn Vfs> {
    Arc::new(RealVfs)
}

/// Newtype so `VfsFile` methods never shadow `std::io::Write` on `File`.
struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        Write::write_all(&mut self.0, buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Write::flush(&mut self.0)
    }

    fn sync_all(&mut self) -> std::io::Result<()> {
        self.0.sync_all()
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.0.set_len(len)
    }

    fn seek_start(&mut self, pos: u64) -> std::io::Result<()> {
        self.0.seek(SeekFrom::Start(pos)).map(|_| ())
    }
}

impl Vfs for RealVfs {
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        Ok(Box::new(RealFile(file)))
    }

    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        Ok(bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        match std::fs::remove_file(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            other => other,
        }
    }
}
