/root/repo/target/debug/examples/self_profile-c8bda37d2b75cf69.d: examples/self_profile.rs

/root/repo/target/debug/examples/self_profile-c8bda37d2b75cf69: examples/self_profile.rs

examples/self_profile.rs:
