//! In-memory table storage: a slab of rows plus secondary indexes.
//!
//! Row ids are stable for the life of a row (deletes leave a tombstone that
//! is reused by later inserts), which lets indexes, the undo log, and the
//! write-ahead log all address rows cheaply.

use crate::column::{Chunk, ColumnCache, CHUNK_ROWS};
use crate::error::{DbError, Result};
use crate::index::Index;
use crate::schema::{ColumnDef, TableSchema};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A row is a vector of values, one per schema column.
pub type Row = Vec<Value>;

/// Stable identifier of a row within its table.
pub type RowId = u64;

/// A single table: schema, row slab, and secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table schema (columns, constraints).
    pub schema: TableSchema,
    /// Row slab; `None` is a tombstone left by DELETE.
    rows: Vec<Option<Row>>,
    /// Free list of tombstone slots for reuse.
    free: Vec<RowId>,
    /// Number of live rows.
    live: usize,
    /// Next AUTO_INCREMENT value.
    next_auto: i64,
    /// Secondary indexes by index name.
    pub(crate) indexes: HashMap<String, Index>,
    /// Lazily-built column chunks (derived data; clones start cold).
    colcache: ColumnCache,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Self {
        let mut t = Table {
            schema,
            rows: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_auto: 1,
            indexes: HashMap::new(),
            colcache: ColumnCache::default(),
        };
        // Primary key and UNIQUE columns get implicit unique indexes so
        // constraint checks are O(log n).
        let implicit: Vec<(String, usize)> = t
            .schema
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.unique || c.primary_key)
            .map(|(i, c)| (format!("__uniq_{}_{}", t.schema.name, c.name), i))
            .collect();
        for (name, col) in implicit {
            t.indexes.insert(name.clone(), Index::new(name, col, true));
        }
        t
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Capacity of the underlying slab (including tombstones).
    pub fn slab_len(&self) -> usize {
        self.rows.len()
    }

    /// Get a row by id.
    pub fn row(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id as usize).and_then(|r| r.as_ref())
    }

    /// Iterate `(row_id, row)` over live rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|row| (i as RowId, row)))
    }

    /// Current AUTO_INCREMENT counter (next value to be assigned).
    pub fn next_auto_value(&self) -> i64 {
        self.next_auto
    }

    /// Restore the AUTO_INCREMENT counter (used by WAL replay / rollback).
    pub fn set_next_auto_value(&mut self, v: i64) {
        self.next_auto = v;
    }

    /// Coerce and validate `row` against the schema, filling AUTO_INCREMENT
    /// and applying column defaults for `Value::Null` on defaulted columns
    /// is *not* done here — the executor resolves defaults; this method
    /// enforces type and NOT NULL constraints and assigns auto ids.
    fn prepare_row(&mut self, mut row: Row) -> Result<Row> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::Arity {
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        for (i, col) in self.schema.columns.iter().enumerate() {
            if row[i].is_null() && col.auto_increment {
                row[i] = Value::Int(self.next_auto);
            }
            if row[i].is_null() {
                if col.not_null {
                    return Err(DbError::NotNullViolation {
                        table: self.schema.name.clone(),
                        column: col.name.clone(),
                    });
                }
                continue;
            }
            row[i] = row[i].coerce(col.ty).ok_or_else(|| DbError::TypeMismatch {
                column: col.name.clone(),
                expected: col.ty,
                got: row[i].to_string(),
            })?;
        }
        Ok(row)
    }

    /// Check unique indexes for a prospective row (excluding `skip` row id,
    /// used on UPDATE).
    fn check_unique(&self, row: &Row, skip: Option<RowId>) -> Result<()> {
        for index in self.indexes.values() {
            if !index.unique {
                continue;
            }
            let key = &row[index.column];
            if key.is_null() {
                continue; // SQL: NULLs never conflict
            }
            for id in index.get(key) {
                if Some(id) != skip {
                    return Err(DbError::UniqueViolation {
                        table: self.schema.name.clone(),
                        column: self.schema.columns[index.column].name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Insert a prepared row; returns its row id.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        let row = self.prepare_row(row)?;
        self.check_unique(&row, None)?;
        // Advance the auto counter past any explicit value.
        if let Some(pk) = self.schema.primary_key_index() {
            if self.schema.columns[pk].auto_increment {
                if let Value::Int(v) = row[pk] {
                    self.next_auto = self.next_auto.max(v + 1);
                }
            }
        }
        let id = match self.free.pop() {
            Some(slot) => {
                self.rows[slot as usize] = Some(row);
                slot
            }
            None => {
                self.rows.push(Some(row));
                (self.rows.len() - 1) as RowId
            }
        };
        let inserted = self.rows[id as usize].as_ref().expect("just inserted");
        for index in self.indexes.values_mut() {
            index.insert(&inserted[index.column], id);
        }
        self.live += 1;
        self.colcache.invalidate_row(id as usize);
        Ok(id)
    }

    /// Insert at a specific row id (WAL replay only). The slot must be free.
    pub fn insert_at(&mut self, id: RowId, row: Row) -> Result<()> {
        let idx = id as usize;
        if idx >= self.rows.len() {
            self.rows.resize(idx + 1, None);
            // any gap slots become free
            for gap in (self.rows.len().saturating_sub(idx + 1))..idx {
                if self.rows[gap].is_none() && !self.free.contains(&(gap as RowId)) {
                    self.free.push(gap as RowId);
                }
            }
        }
        if self.rows[idx].is_some() {
            return Err(DbError::Corrupt(format!(
                "WAL replay: slot {id} in {} already occupied",
                self.schema.name
            )));
        }
        self.free.retain(|&f| f != id);
        let row = self.prepare_row(row)?;
        self.check_unique(&row, None)?;
        if let Some(pk) = self.schema.primary_key_index() {
            if self.schema.columns[pk].auto_increment {
                if let Value::Int(v) = row[pk] {
                    self.next_auto = self.next_auto.max(v + 1);
                }
            }
        }
        for index in self.indexes.values_mut() {
            index.insert(&row[index.column], id);
        }
        self.rows[idx] = Some(row);
        self.live += 1;
        self.colcache.invalidate_row(idx);
        Ok(())
    }

    /// Delete a row by id; returns the removed row.
    pub fn delete(&mut self, id: RowId) -> Result<Row> {
        let slot = self
            .rows
            .get_mut(id as usize)
            .ok_or_else(|| DbError::Corrupt(format!("delete of unknown row {id}")))?;
        let row = slot
            .take()
            .ok_or_else(|| DbError::Corrupt(format!("double delete of row {id}")))?;
        for index in self.indexes.values_mut() {
            index.remove(&row[index.column], id);
        }
        self.free.push(id);
        self.live -= 1;
        self.colcache.invalidate_row(id as usize);
        Ok(row)
    }

    /// Replace a row in place; returns the previous row.
    pub fn update(&mut self, id: RowId, new_row: Row) -> Result<Row> {
        let new_row = self.prepare_row(new_row)?;
        self.check_unique(&new_row, Some(id))?;
        let slot = self
            .rows
            .get_mut(id as usize)
            .and_then(|r| r.as_mut())
            .ok_or_else(|| DbError::Corrupt(format!("update of unknown row {id}")))?;
        let old = std::mem::replace(slot, new_row);
        let new_ref = self.rows[id as usize].as_ref().expect("just updated");
        for index in self.indexes.values_mut() {
            if old[index.column] != new_ref[index.column] {
                index.remove(&old[index.column], id);
                index.insert(&new_ref[index.column], id);
            }
        }
        self.colcache.invalidate_row(id as usize);
        Ok(old)
    }

    /// Create a named secondary index over `column`; backfills existing rows.
    pub fn create_index(&mut self, name: &str, column: &str, unique: bool) -> Result<()> {
        let col = self
            .schema
            .column_index(column)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.schema.name.clone(),
                column: column.to_string(),
            })?;
        if self.indexes.contains_key(name) {
            return Err(DbError::Unsupported(format!("index {name} already exists")));
        }
        let mut index = Index::new(name.to_string(), col, unique);
        for (id, row) in self.iter() {
            if unique && !row[col].is_null() && !index.get(&row[col]).is_empty() {
                return Err(DbError::UniqueViolation {
                    table: self.schema.name.clone(),
                    column: column.to_string(),
                });
            }
            index.insert(&row[col], id);
        }
        self.indexes.insert(name.to_string(), index);
        Ok(())
    }

    /// Drop a named index. Implicit constraint indexes cannot be dropped.
    pub fn drop_index(&mut self, name: &str) -> Result<()> {
        if name.starts_with("__uniq_") {
            return Err(DbError::Unsupported(
                "cannot drop an implicit constraint index".into(),
            ));
        }
        self.indexes
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::Unsupported(format!("no such index: {name}")))
    }

    /// Find an index (any) on the given column offset, preferring unique.
    pub fn index_on(&self, column: usize) -> Option<&Index> {
        let mut best: Option<&Index> = None;
        for index in self.indexes.values() {
            if index.column == column && (best.is_none() || index.unique) {
                best = Some(index);
            }
        }
        best
    }

    /// ALTER TABLE ADD COLUMN: extends every row with the default value.
    pub fn add_column(&mut self, col: ColumnDef) -> Result<()> {
        let default = col
            .default
            .clone()
            .map(|d| {
                d.coerce(col.ty).ok_or_else(|| DbError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    got: d.to_string(),
                })
            })
            .transpose()?
            .unwrap_or(Value::Null);
        self.schema.add_column(col)?;
        for slot in self.rows.iter_mut().flatten() {
            slot.push(default.clone());
        }
        self.colcache.clear();
        Ok(())
    }

    /// ALTER TABLE DROP COLUMN: removes the value from every row and drops
    /// indexes on the column.
    pub fn drop_column(&mut self, name: &str) -> Result<()> {
        let idx = self.schema.drop_column(name)?;
        self.indexes.retain(|_, ix| ix.column != idx);
        for ix in self.indexes.values_mut() {
            if ix.column > idx {
                ix.column -= 1;
            }
        }
        for slot in self.rows.iter_mut().flatten() {
            slot.remove(idx);
        }
        self.colcache.clear();
        Ok(())
    }

    /// Number of column chunks covering the slab.
    pub fn chunk_count(&self) -> usize {
        self.rows.len().div_ceil(CHUNK_ROWS)
    }

    /// Get or build the column chunk `idx`; the flag is true on a cache
    /// hit. `None` only when `idx` is past the slab end.
    pub fn chunk(&self, idx: usize) -> (Option<Arc<Chunk>>, bool) {
        self.colcache.chunk(&self.schema, &self.rows, idx)
    }

    /// Number of column chunks currently cached (tests / EXPLAIN stats).
    pub fn cached_chunk_count(&self) -> usize {
        self.colcache.cached_chunks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn people() -> Table {
        Table::new(
            TableSchema::new(
                "people",
                vec![
                    ColumnDef::new("id", DataType::Integer)
                        .primary_key()
                        .auto_increment(),
                    ColumnDef::new("name", DataType::Text).not_null(),
                    ColumnDef::new("age", DataType::Integer),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_assigns_auto_ids() {
        let mut t = people();
        let a = t
            .insert(vec![Value::Null, "ann".into(), Value::Int(30)])
            .unwrap();
        let b = t
            .insert(vec![Value::Null, "bob".into(), Value::Null])
            .unwrap();
        assert_eq!(t.row(a).unwrap()[0], Value::Int(1));
        assert_eq!(t.row(b).unwrap()[0], Value::Int(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn explicit_id_advances_counter() {
        let mut t = people();
        t.insert(vec![Value::Int(10), "x".into(), Value::Null])
            .unwrap();
        let id = t
            .insert(vec![Value::Null, "y".into(), Value::Null])
            .unwrap();
        assert_eq!(t.row(id).unwrap()[0], Value::Int(11));
    }

    #[test]
    fn unique_violation() {
        let mut t = people();
        t.insert(vec![Value::Int(1), "a".into(), Value::Null])
            .unwrap();
        let err = t
            .insert(vec![Value::Int(1), "b".into(), Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
    }

    #[test]
    fn not_null_violation() {
        let mut t = people();
        let err = t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .unwrap_err();
        assert!(matches!(err, DbError::NotNullViolation { .. }));
    }

    #[test]
    fn type_coercion_on_insert() {
        let mut t = people();
        let id = t
            .insert(vec![Value::Null, "a".into(), Value::Text("42".into())])
            .unwrap();
        assert_eq!(t.row(id).unwrap()[2], Value::Int(42));
        let err = t
            .insert(vec![Value::Null, "b".into(), Value::Text("old".into())])
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn delete_and_slot_reuse() {
        let mut t = people();
        let a = t
            .insert(vec![Value::Null, "a".into(), Value::Null])
            .unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Null])
            .unwrap();
        t.delete(a).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.row(a).is_none());
        let c = t
            .insert(vec![Value::Null, "c".into(), Value::Null])
            .unwrap();
        assert_eq!(c, a, "tombstone slot reused");
        assert!(t.delete(a).is_ok());
        assert!(t.delete(a).is_err(), "double delete");
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = people();
        t.create_index("ix_age", "age", false).unwrap();
        let a = t
            .insert(vec![Value::Null, "a".into(), Value::Int(30)])
            .unwrap();
        t.update(a, vec![Value::Int(1), "a".into(), Value::Int(31)])
            .unwrap();
        let ix = t.index_on(2).unwrap();
        assert!(ix.get(&Value::Int(30)).is_empty());
        assert_eq!(ix.get(&Value::Int(31)), vec![a]);
    }

    #[test]
    fn update_unique_check_excludes_self() {
        let mut t = people();
        let a = t
            .insert(vec![Value::Null, "a".into(), Value::Null])
            .unwrap();
        // Re-writing the same row with its own pk must not trip UNIQUE.
        t.update(a, vec![Value::Int(1), "a2".into(), Value::Null])
            .unwrap();
        assert_eq!(t.row(a).unwrap()[1], Value::Text("a2".into()));
    }

    #[test]
    fn add_and_drop_column() {
        let mut t = people();
        t.insert(vec![Value::Null, "a".into(), Value::Int(1)])
            .unwrap();
        t.add_column(ColumnDef::new("city", DataType::Text).default_value("eugene"))
            .unwrap();
        assert_eq!(t.row(0).unwrap()[3], Value::Text("eugene".into()));
        t.create_index("ix_city", "city", false).unwrap();
        t.drop_column("age").unwrap();
        assert_eq!(t.row(0).unwrap().len(), 3);
        assert_eq!(t.row(0).unwrap()[2], Value::Text("eugene".into()));
        // index on "city" survived with shifted offset
        let ix = t.indexes.get("ix_city").unwrap();
        assert_eq!(ix.column, 2);
        assert_eq!(ix.get(&Value::Text("eugene".into())), vec![0]);
    }

    #[test]
    fn create_unique_index_rejects_existing_dupes() {
        let mut t = people();
        t.insert(vec![Value::Null, "a".into(), Value::Int(1)])
            .unwrap();
        t.insert(vec![Value::Null, "b".into(), Value::Int(1)])
            .unwrap();
        assert!(t.create_index("u_age", "age", true).is_err());
        assert!(t.create_index("ix_age", "age", false).is_ok());
    }

    #[test]
    fn nulls_do_not_conflict_in_unique_index() {
        let mut t = Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::new("id", DataType::Integer).primary_key(),
                    ColumnDef::new("u", DataType::Text).unique(),
                ],
            )
            .unwrap(),
        );
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        assert_eq!(t.len(), 2);
    }
}
