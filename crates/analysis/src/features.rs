//! Feature extraction: profiles → numeric matrices for data mining.
//!
//! PerfExplorer clusters *threads of execution* by their performance
//! behaviour: each thread becomes one row whose columns are per-event (or
//! per-metric) measurements. This module builds those matrices and offers
//! the standardization step (z-scores) that distance-based methods need.

use perfdmf_profile::{IntervalField, MetricId, Profile, ThreadId};

/// A feature matrix: one row per thread, one column per feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    /// Threads in row order.
    pub threads: Vec<ThreadId>,
    /// Column labels (event or metric names).
    pub columns: Vec<String>,
    /// Row-major data, `threads.len() × columns.len()`.
    pub rows: Vec<Vec<f64>>,
}

impl FeatureMatrix {
    /// Standardize each column to zero mean, unit variance (columns with
    /// zero variance become all-zero).
    pub fn standardize(&mut self) {
        let d = self.columns.len();
        let n = self.rows.len();
        if n == 0 {
            return;
        }
        for c in 0..d {
            let mean = self.rows.iter().map(|r| r[c]).sum::<f64>() / n as f64;
            let var = self
                .rows
                .iter()
                .map(|r| (r[c] - mean) * (r[c] - mean))
                .sum::<f64>()
                / n.max(2).saturating_sub(1) as f64;
            let sd = var.sqrt();
            for r in &mut self.rows {
                r[c] = if sd > 0.0 { (r[c] - mean) / sd } else { 0.0 };
            }
        }
    }
}

/// Thread × event matrix of one metric's values.
///
/// Missing (event, thread) combinations become 0.0 — a thread that never
/// calls a routine spent zero time in it.
pub fn thread_event_matrix(
    profile: &Profile,
    metric: MetricId,
    field: IntervalField,
) -> FeatureMatrix {
    let threads = profile.threads().to_vec();
    let columns: Vec<String> = profile.events().iter().map(|e| e.name.clone()).collect();
    let mut rows = vec![vec![0.0f64; columns.len()]; threads.len()];
    for (e, thread, d) in profile.iter_metric(metric) {
        let Some(tpos) = profile.thread_position(thread) else {
            continue;
        };
        let value = match field {
            IntervalField::Inclusive => d.inclusive(),
            IntervalField::Exclusive => d.exclusive(),
            IntervalField::Calls => d.calls(),
            IntervalField::Subroutines => d.subroutines(),
        };
        rows[tpos][e.0] = value.unwrap_or(0.0);
    }
    FeatureMatrix {
        threads,
        columns,
        rows,
    }
}

/// Thread × metric matrix for one event (PAPI-counter behaviour vectors,
/// as in Ahn & Vetter's sPPM analysis).
pub fn thread_metric_matrix(
    profile: &Profile,
    event: perfdmf_profile::EventId,
    field: IntervalField,
) -> FeatureMatrix {
    let threads = profile.threads().to_vec();
    let columns: Vec<String> = profile.metrics().iter().map(|m| m.name.clone()).collect();
    let mut rows = vec![vec![0.0f64; columns.len()]; threads.len()];
    for (mi, _) in profile.metrics().iter().enumerate() {
        for (tpos, &thread) in threads.iter().enumerate() {
            if let Some(d) = profile.interval(event, thread, MetricId(mi)) {
                let value = match field {
                    IntervalField::Inclusive => d.inclusive(),
                    IntervalField::Exclusive => d.exclusive(),
                    IntervalField::Calls => d.calls(),
                    IntervalField::Subroutines => d.subroutines(),
                };
                rows[tpos][mi] = value.unwrap_or(0.0);
            }
        }
    }
    FeatureMatrix {
        threads,
        columns,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric};

    fn sample() -> Profile {
        let mut p = Profile::new("t");
        let time = p.add_metric(Metric::measured("TIME"));
        let fp = p.add_metric(Metric::measured("PAPI_FP_OPS"));
        let a = p.add_event(IntervalEvent::ungrouped("a"));
        let b = p.add_event(IntervalEvent::ungrouped("b"));
        p.add_threads((0..3).map(|n| ThreadId::new(n, 0, 0)));
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            p.set_interval(
                a,
                t,
                time,
                IntervalData::new(10.0 * (i + 1) as f64, 10.0 * (i + 1) as f64, 1.0, 0.0),
            );
            p.set_interval(a, t, fp, IntervalData::new(1e6, 1e6, 1.0, 0.0));
        }
        // event b only on thread 2
        p.set_interval(
            b,
            ThreadId::new(2, 0, 0),
            time,
            IntervalData::new(5.0, 5.0, 1.0, 0.0),
        );
        p
    }

    #[test]
    fn thread_event_matrix_shape_and_missing() {
        let p = sample();
        let m = p.find_metric("TIME").unwrap();
        let fm = thread_event_matrix(&p, m, IntervalField::Exclusive);
        assert_eq!(fm.threads.len(), 3);
        assert_eq!(fm.columns, vec!["a", "b"]);
        assert_eq!(fm.rows[0], vec![10.0, 0.0]);
        assert_eq!(fm.rows[2], vec![30.0, 5.0]);
    }

    #[test]
    fn thread_metric_matrix_shape() {
        let p = sample();
        let a = p.find_event("a").unwrap();
        let fm = thread_metric_matrix(&p, a, IntervalField::Exclusive);
        assert_eq!(fm.columns, vec!["TIME", "PAPI_FP_OPS"]);
        assert_eq!(fm.rows[1], vec![20.0, 1e6]);
    }

    #[test]
    fn standardize_zero_mean_unit_variance() {
        let p = sample();
        let m = p.find_metric("TIME").unwrap();
        let mut fm = thread_event_matrix(&p, m, IntervalField::Exclusive);
        fm.standardize();
        let col0: Vec<f64> = fm.rows.iter().map(|r| r[0]).collect();
        let mean: f64 = col0.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        let var: f64 = col0.iter().map(|x| x * x).sum::<f64>() / 2.0;
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standardize_constant_column_is_zero() {
        let p = sample();
        let a = p.find_event("a").unwrap();
        let mut fm = thread_metric_matrix(&p, a, IntervalField::Exclusive);
        fm.standardize();
        // PAPI column was constant
        assert!(fm.rows.iter().all(|r| r[1] == 0.0));
    }
}
