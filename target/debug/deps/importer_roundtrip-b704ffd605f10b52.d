/root/repo/target/debug/deps/importer_roundtrip-b704ffd605f10b52.d: tests/importer_roundtrip.rs

/root/repo/target/debug/deps/importer_roundtrip-b704ffd605f10b52: tests/importer_roundtrip.rs

tests/importer_roundtrip.rs:
