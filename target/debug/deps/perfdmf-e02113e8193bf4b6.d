/root/repo/target/debug/deps/perfdmf-e02113e8193bf4b6.d: src/bin/perfdmf.rs

/root/repo/target/debug/deps/perfdmf-e02113e8193bf4b6: src/bin/perfdmf.rs

src/bin/perfdmf.rs:
