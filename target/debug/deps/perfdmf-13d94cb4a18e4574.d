/root/repo/target/debug/deps/perfdmf-13d94cb4a18e4574.d: src/lib.rs

/root/repo/target/debug/deps/libperfdmf-13d94cb4a18e4574.rlib: src/lib.rs

/root/repo/target/debug/deps/libperfdmf-13d94cb4a18e4574.rmeta: src/lib.rs

src/lib.rs:
