//! Profile ⇄ database transfer.
//!
//! [`save_profile`] writes a [`Profile`] under an existing TRIAL row —
//! metric, interval-event, and location rows plus the total and mean
//! summary tables — in one transaction with prepared statements (the bulk
//! path that carries the paper's 16K-processor Miranda trial).
//!
//! [`load_trial`] reads a trial back into a [`Profile`];
//! [`load_trial_filtered`] implements the paper's selective loading ("the
//! application developer wants to selectively query the data without
//! having to load entire (possibly large) trials") by node/context/thread
//! and metric filters.
//!
//! [`append_derived_metric`] adds a computed metric to a trial already in
//! the database — the Trial object's "support for adding new, possibly
//! derived, metrics to an existing trial" (§4).

use perfdmf_db::{Connection, DbError, Result, Value};
use perfdmf_profile::{
    derive_metric, AtomicData, AtomicEvent, IntervalData, IntervalEvent, Metric, MetricExpr,
    Profile, ThreadId, UNDEFINED,
};

fn v(x: f64) -> Value {
    if x.is_nan() {
        Value::Null
    } else {
        Value::Float(x)
    }
}

fn f(val: Option<&Value>) -> f64 {
    val.and_then(|x| x.as_float()).unwrap_or(UNDEFINED)
}

/// Write `profile` under trial `trial_id`. Returns the number of
/// interval-location rows written.
pub fn save_profile(conn: &Connection, trial_id: i64, profile: &Profile) -> Result<usize> {
    let ins_metric = conn.prepare("INSERT INTO metric (trial, name, derived) VALUES (?, ?, ?)")?;
    let ins_event =
        conn.prepare("INSERT INTO interval_event (trial, name, group_name) VALUES (?, ?, ?)")?;
    let ins_total = conn.prepare(
        "INSERT INTO interval_total_summary
            (interval_event, metric, inclusive, inclusive_percentage, exclusive,
             exclusive_percentage, inclusive_per_call, num_calls, num_subrs)
         VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
    )?;
    let ins_mean = conn.prepare(
        "INSERT INTO interval_mean_summary
            (interval_event, metric, inclusive, inclusive_percentage, exclusive,
             exclusive_percentage, inclusive_per_call, num_calls, num_subrs)
         VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
    )?;
    let ins_aevent =
        conn.prepare("INSERT INTO atomic_event (trial, name, group_name) VALUES (?, ?, ?)")?;

    conn.transaction(|tx| {
        // Verify the trial exists (FK checks would catch it later, but a
        // clear error beats a confusing one).
        let rs = tx.query("SELECT id FROM trial WHERE id = ?", &[Value::Int(trial_id)])?;
        if rs.is_empty() {
            return Err(DbError::Unsupported(format!(
                "trial {trial_id} does not exist"
            )));
        }

        let mut metric_ids = Vec::with_capacity(profile.metrics().len());
        for m in profile.metrics() {
            let id = tx
                .insert_prepared(
                    &ins_metric,
                    &[
                        Value::Int(trial_id),
                        Value::Text(m.name.as_str().into()),
                        Value::Bool(m.derived),
                    ],
                )?
                .expect("metric has auto id");
            metric_ids.push(id);
        }
        let mut event_ids = Vec::with_capacity(profile.events().len());
        for e in profile.events() {
            let id = tx
                .insert_prepared(
                    &ins_event,
                    &[
                        Value::Int(trial_id),
                        Value::Text(e.name.as_str().into()),
                        Value::Text(e.group.as_str().into()),
                    ],
                )?
                .expect("event has auto id");
            event_ids.push(id);
        }

        // Fact rows go through the group-commit bulk path: one validated
        // batch per metric instead of one prepared execution per row.
        const LOC_COLS: &[&str] = &[
            "interval_event",
            "metric",
            "node",
            "context",
            "thread",
            "inclusive",
            "inclusive_percentage",
            "exclusive",
            "exclusive_percentage",
            "inclusive_per_call",
            "num_calls",
            "num_subrs",
        ];
        let mut rows = 0usize;
        for (mi, _) in profile.metrics().iter().enumerate() {
            let metric = perfdmf_profile::MetricId(mi);
            let batch: Vec<Vec<Value>> = profile
                .iter_metric(metric)
                .map(|(event, thread, d)| {
                    vec![
                        Value::Int(event_ids[event.0]),
                        Value::Int(metric_ids[mi]),
                        Value::Int(thread.node as i64),
                        Value::Int(thread.context as i64),
                        Value::Int(thread.thread as i64),
                        v(d.inclusive),
                        v(d.inclusive_percent),
                        v(d.exclusive),
                        v(d.exclusive_percent),
                        v(d.inclusive_per_call),
                        v(d.calls),
                        v(d.subroutines),
                    ]
                })
                .collect();
            let (n, _) = tx.bulk_insert("interval_location_profile", LOC_COLS, batch)?;
            rows += n;
            // summaries
            let totals = profile.total_summary(metric);
            let means = profile.mean_summary(metric);
            for (stmt, summary) in [(&ins_total, &totals), (&ins_mean, &means)] {
                for (e, d) in summary.iter().enumerate() {
                    if d.inclusive.is_nan() && d.exclusive.is_nan() && d.calls.is_nan() {
                        continue;
                    }
                    tx.execute_prepared(
                        stmt,
                        &[
                            Value::Int(event_ids[e]),
                            Value::Int(metric_ids[mi]),
                            v(d.inclusive),
                            v(d.inclusive_percent),
                            v(d.exclusive),
                            v(d.exclusive_percent),
                            v(d.inclusive_per_call),
                            v(d.calls),
                            v(d.subroutines),
                        ],
                    )?;
                }
            }
        }

        let mut aevent_ids = Vec::with_capacity(profile.atomic_events().len());
        for ae in profile.atomic_events() {
            let id = tx
                .insert_prepared(
                    &ins_aevent,
                    &[
                        Value::Int(trial_id),
                        Value::Text(ae.name.as_str().into()),
                        Value::Text(ae.group.as_str().into()),
                    ],
                )?
                .expect("atomic event has auto id");
            aevent_ids.push(id);
        }
        let mut atomics: Vec<_> = profile.iter_atomic().collect();
        atomics.sort_by_key(|(e, t, _)| (e.0, *t));
        let abatch: Vec<Vec<Value>> = atomics
            .into_iter()
            .map(|(ae, thread, d)| {
                vec![
                    Value::Int(aevent_ids[ae.0]),
                    Value::Int(thread.node as i64),
                    Value::Int(thread.context as i64),
                    Value::Int(thread.thread as i64),
                    Value::Int(d.count as i64),
                    Value::Float(d.max),
                    Value::Float(d.min),
                    Value::Float(d.mean),
                    Value::Float(d.stddev().unwrap_or(0.0)),
                ]
            })
            .collect();
        tx.bulk_insert(
            "atomic_location_profile",
            &[
                "atomic_event",
                "node",
                "context",
                "thread",
                "sample_count",
                "maximum_value",
                "minimum_value",
                "mean_value",
                "standard_deviation",
            ],
            abatch,
        )?;
        Ok(rows)
    })
}

/// Node/context/thread and metric selection for partial trial loads.
#[derive(Debug, Clone, Default)]
pub struct LoadFilter {
    /// Restrict to one node.
    pub node: Option<u32>,
    /// Restrict to one context.
    pub context: Option<u32>,
    /// Restrict to one thread.
    pub thread: Option<u32>,
    /// Restrict to one metric by name.
    pub metric: Option<String>,
}

/// Load a complete trial into a [`Profile`].
pub fn load_trial(conn: &Connection, trial_id: i64) -> Result<Profile> {
    load_trial_filtered(conn, trial_id, &LoadFilter::default())
}

/// Load a trial with node/context/thread/metric selection (paper §4).
pub fn load_trial_filtered(
    conn: &Connection,
    trial_id: i64,
    filter: &LoadFilter,
) -> Result<Profile> {
    let trial_rs = conn.query(
        "SELECT name, source_format FROM trial WHERE id = ?",
        &[Value::Int(trial_id)],
    )?;
    if trial_rs.is_empty() {
        return Err(DbError::Unsupported(format!(
            "trial {trial_id} does not exist"
        )));
    }
    let mut profile = Profile::new(
        trial_rs
            .get(0, "name")
            .and_then(|v| v.as_text())
            .unwrap_or(""),
    );
    profile.source_format = trial_rs
        .get(0, "source_format")
        .and_then(|v| v.as_text())
        .unwrap_or("")
        .to_string();

    // Metrics and events, keyed by db id.
    let metrics = conn.query(
        "SELECT id, name, derived FROM metric WHERE trial = ? ORDER BY id",
        &[Value::Int(trial_id)],
    )?;
    let mut metric_map = std::collections::HashMap::new();
    for row in &metrics.rows {
        let db_id = row[0].as_int().expect("pk");
        let name = row[1].as_text().unwrap_or("").to_string();
        if let Some(want) = &filter.metric {
            if *want != name {
                continue;
            }
        }
        let derived = row[2].as_bool().unwrap_or(false);
        let m = if derived {
            Metric::derived(name)
        } else {
            Metric::measured(name)
        };
        metric_map.insert(db_id, profile.add_metric(m));
    }
    let events = conn.query(
        "SELECT id, name, group_name FROM interval_event WHERE trial = ? ORDER BY id",
        &[Value::Int(trial_id)],
    )?;
    let mut event_map = std::collections::HashMap::new();
    for row in &events.rows {
        let db_id = row[0].as_int().expect("pk");
        let name = row[1].as_text().unwrap_or("");
        let group = row[2].as_text().unwrap_or("TAU_DEFAULT");
        event_map.insert(db_id, profile.add_event(IntervalEvent::new(name, group)));
    }

    // Location rows, filtered in SQL where possible.
    // Join order matters at Miranda scale (~10⁶ fact rows): for full
    // loads the small dimension table (interval_event) is the base so the
    // trial filter is pushed down before the hash join probes the fact
    // table; for node/context/thread-selective loads the fact table is
    // the base so its filters are pushed down before joining instead.
    let selective = filter.node.is_some() || filter.context.is_some() || filter.thread.is_some();
    const COLS: &str = "p.interval_event, p.metric, p.node, p.context, p.thread,
                p.inclusive, p.inclusive_percentage, p.exclusive,
                p.exclusive_percentage, p.inclusive_per_call, p.num_calls, p.num_subrs";
    let mut sql = if selective {
        format!(
            "SELECT {COLS}
             FROM interval_location_profile p
             JOIN interval_event e ON p.interval_event = e.id
             WHERE e.trial = ?"
        )
    } else {
        format!(
            "SELECT {COLS}
             FROM interval_event e
             JOIN interval_location_profile p ON p.interval_event = e.id
             WHERE e.trial = ?"
        )
    };
    let mut params = vec![Value::Int(trial_id)];
    if let Some(n) = filter.node {
        sql.push_str(" AND p.node = ?");
        params.push(Value::Int(n as i64));
    }
    if let Some(c) = filter.context {
        sql.push_str(" AND p.context = ?");
        params.push(Value::Int(c as i64));
    }
    if let Some(t) = filter.thread {
        sql.push_str(" AND p.thread = ?");
        params.push(Value::Int(t as i64));
    }
    let rows = conn.query(&sql, &params)?;
    // Register all threads up front (bulk, avoids re-striding).
    let mut threads: Vec<ThreadId> = rows
        .rows
        .iter()
        .map(|r| {
            ThreadId::new(
                r[2].as_int().unwrap_or(0) as u32,
                r[3].as_int().unwrap_or(0) as u32,
                r[4].as_int().unwrap_or(0) as u32,
            )
        })
        .collect();
    threads.sort_unstable();
    threads.dedup();
    profile.add_threads(threads);
    for r in &rows.rows {
        let Some(&event) = event_map.get(&r[0].as_int().unwrap_or(-1)) else {
            continue;
        };
        let Some(&metric) = metric_map.get(&r[1].as_int().unwrap_or(-1)) else {
            continue; // filtered out
        };
        let thread = ThreadId::new(
            r[2].as_int().unwrap_or(0) as u32,
            r[3].as_int().unwrap_or(0) as u32,
            r[4].as_int().unwrap_or(0) as u32,
        );
        let mut d = IntervalData::new(
            f(Some(&r[5])),
            f(Some(&r[7])),
            f(Some(&r[10])),
            f(Some(&r[11])),
        );
        d.inclusive_percent = f(Some(&r[6]));
        d.exclusive_percent = f(Some(&r[8]));
        d.inclusive_per_call = f(Some(&r[9]));
        profile.set_interval(event, thread, metric, d);
    }

    // Atomic events/data (not metric-filtered; they are metric-free).
    let aevents = conn.query(
        "SELECT id, name, group_name FROM atomic_event WHERE trial = ? ORDER BY id",
        &[Value::Int(trial_id)],
    )?;
    let mut aevent_map = std::collections::HashMap::new();
    for row in &aevents.rows {
        let db_id = row[0].as_int().expect("pk");
        let name = row[1].as_text().unwrap_or("");
        let group = row[2].as_text().unwrap_or("TAU_EVENT");
        aevent_map.insert(
            db_id,
            profile.add_atomic_event(AtomicEvent::new(name, group)),
        );
    }
    if !aevent_map.is_empty() {
        let mut sql = String::from(
            "SELECT a.atomic_event, a.node, a.context, a.thread, a.sample_count,
                    a.maximum_value, a.minimum_value, a.mean_value, a.standard_deviation
             FROM atomic_event e
             JOIN atomic_location_profile a ON a.atomic_event = e.id
             WHERE e.trial = ?",
        );
        let mut params = vec![Value::Int(trial_id)];
        if let Some(n) = filter.node {
            sql.push_str(" AND a.node = ?");
            params.push(Value::Int(n as i64));
        }
        if let Some(c) = filter.context {
            sql.push_str(" AND a.context = ?");
            params.push(Value::Int(c as i64));
        }
        if let Some(t) = filter.thread {
            sql.push_str(" AND a.thread = ?");
            params.push(Value::Int(t as i64));
        }
        let arows = conn.query(&sql, &params)?;
        for r in &arows.rows {
            let Some(&ae) = aevent_map.get(&r[0].as_int().unwrap_or(-1)) else {
                continue;
            };
            let thread = ThreadId::new(
                r[1].as_int().unwrap_or(0) as u32,
                r[2].as_int().unwrap_or(0) as u32,
                r[3].as_int().unwrap_or(0) as u32,
            );
            profile.add_thread(thread);
            profile.set_atomic(
                ae,
                thread,
                AtomicData::from_summary(
                    r[4].as_int().unwrap_or(0) as u64,
                    r[6].as_float().unwrap_or(0.0),
                    r[5].as_float().unwrap_or(0.0),
                    r[7].as_float().unwrap_or(0.0),
                    r[8].as_float().unwrap_or(0.0),
                ),
            );
        }
    }
    Ok(profile)
}

/// Compute a derived metric from a trial already in the database and store
/// it back (paper §4: Trial "support for adding new, possibly derived,
/// metrics to an existing trial in the database").
///
/// Returns the new metric's database id.
pub fn append_derived_metric(
    conn: &Connection,
    trial_id: i64,
    name: &str,
    expression: &str,
) -> Result<i64> {
    let expr = MetricExpr::parse(expression)
        .map_err(|e| DbError::Unsupported(format!("bad metric expression: {e}")))?;
    let mut profile = load_trial(conn, trial_id)?;
    let new_metric = derive_metric(&mut profile, name, &expr)
        .map_err(|e| DbError::Unsupported(format!("cannot derive metric: {e}")))?;

    let metric_db_id = conn.transaction(|tx| {
        let metric_db_id = tx
            .insert(
                "INSERT INTO metric (trial, name, derived) VALUES (?, ?, TRUE)",
                &[Value::Int(trial_id), Value::Text(name.into())],
            )?
            .expect("metric auto id");
        // Event name → db id map for this trial.
        let events = tx.query(
            "SELECT id, name FROM interval_event WHERE trial = ?",
            &[Value::Int(trial_id)],
        )?;
        let mut by_name = std::collections::HashMap::new();
        for r in &events.rows {
            by_name.insert(
                r[1].as_text().unwrap_or("").to_string(),
                r[0].as_int().expect("pk"),
            );
        }
        let ins = conn.prepare(
            "INSERT INTO interval_location_profile
                (interval_event, metric, node, context, thread,
                 inclusive, inclusive_percentage, exclusive, exclusive_percentage,
                 inclusive_per_call, num_calls, num_subrs)
             VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        )?;
        for (event, thread, d) in profile.iter_metric(new_metric) {
            let ev_name = &profile.events()[event.0].name;
            let Some(&ev_id) = by_name.get(ev_name) else {
                continue;
            };
            tx.execute_prepared(
                &ins,
                &[
                    Value::Int(ev_id),
                    Value::Int(metric_db_id),
                    Value::Int(thread.node as i64),
                    Value::Int(thread.context as i64),
                    Value::Int(thread.thread as i64),
                    v(d.inclusive),
                    v(d.inclusive_percent),
                    v(d.exclusive),
                    v(d.exclusive_percent),
                    v(d.inclusive_per_call),
                    v(d.calls),
                    v(d.subroutines),
                ],
            )?;
        }
        Ok(metric_db_id)
    })?;
    Ok(metric_db_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{Application, Experiment, Trial};
    use crate::schema::create_schema;

    fn sample_profile() -> Profile {
        let mut p = Profile::new("sample");
        p.source_format = "tau".into();
        let time = p.add_metric(Metric::measured("TIME"));
        let fp = p.add_metric(Metric::measured("PAPI_FP_OPS"));
        let main = p.add_event(IntervalEvent::new("main()", "TAU_USER"));
        let send = p.add_event(IntervalEvent::new("MPI_Send()", "MPI"));
        p.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            p.set_interval(
                main,
                t,
                time,
                IntervalData::new(100.0, 60.0 + i as f64, 1.0, 3.0),
            );
            p.set_interval(
                send,
                t,
                time,
                IntervalData::new(40.0 - i as f64, 40.0 - i as f64, 10.0, 0.0),
            );
            p.set_interval(main, t, fp, IntervalData::new(2e9, 1e9, 1.0, 3.0));
            p.set_interval(send, t, fp, IntervalData::new(1e6, 1e6, 10.0, 0.0));
        }
        p.recompute_derived_fields(time);
        p.recompute_derived_fields(fp);
        let ae = p.add_atomic_event(AtomicEvent::new("Message size", "TAU_EVENT"));
        let mut d = AtomicData::new();
        for x in [64.0, 128.0, 256.0] {
            d.record(x);
        }
        p.set_atomic(ae, ThreadId::new(2, 0, 0), d);
        p
    }

    fn setup() -> (Connection, i64) {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        let mut app = Application::new("app");
        let app_id = app.save(&conn, "application").unwrap();
        let mut exp = Experiment::new("exp").with_field("application", app_id);
        let exp_id = exp.save(&conn, "experiment").unwrap();
        let mut trial = Trial::new("sample")
            .with_field("experiment", exp_id)
            .with_field("node_count", 4i64)
            .with_field("source_format", "tau");
        let trial_id = trial.save(&conn, "trial").unwrap();
        (conn, trial_id)
    }

    #[test]
    fn save_and_load_roundtrip() {
        let (conn, trial_id) = setup();
        let p = sample_profile();
        let rows = save_profile(&conn, trial_id, &p).unwrap();
        assert_eq!(rows, 16); // 2 metrics × 2 events × 4 threads
        let back = load_trial(&conn, trial_id).unwrap();
        assert_eq!(back.metrics().len(), 2);
        assert_eq!(back.events().len(), 2);
        assert_eq!(back.threads().len(), 4);
        assert_eq!(back.data_point_count(), 16);
        let time = back.find_metric("TIME").unwrap();
        let main = back.find_event("main()").unwrap();
        let d = back.interval(main, ThreadId::new(3, 0, 0), time).unwrap();
        assert_eq!(d.exclusive(), Some(63.0));
        assert_eq!(d.calls(), Some(1.0));
        // atomic data round-trips
        let ae = back.find_atomic_event("Message size").unwrap();
        let a = back.atomic(ae, ThreadId::new(2, 0, 0)).unwrap();
        assert_eq!(a.count, 3);
        assert_eq!(a.min, 64.0);
        // summaries written
        let n: i64 = conn
            .query_scalar("SELECT COUNT(*) FROM interval_total_summary", &[])
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(n, 4); // 2 metrics × 2 events
    }

    #[test]
    fn filtered_load_by_node_and_metric() {
        let (conn, trial_id) = setup();
        save_profile(&conn, trial_id, &sample_profile()).unwrap();
        let filter = LoadFilter {
            node: Some(1),
            metric: Some("TIME".into()),
            ..Default::default()
        };
        let part = load_trial_filtered(&conn, trial_id, &filter).unwrap();
        assert_eq!(part.metrics().len(), 1);
        assert_eq!(part.threads().len(), 1);
        assert_eq!(part.data_point_count(), 2); // 2 events × 1 thread × 1 metric
    }

    #[test]
    fn derived_metric_appended_to_db() {
        let (conn, trial_id) = setup();
        save_profile(&conn, trial_id, &sample_profile()).unwrap();
        let mid = append_derived_metric(&conn, trial_id, "FLOPS", "PAPI_FP_OPS / TIME").unwrap();
        assert!(mid > 0);
        let back = load_trial(&conn, trial_id).unwrap();
        let flops = back.find_metric("FLOPS").unwrap();
        assert!(back.metric(flops).derived);
        let main = back.find_event("main()").unwrap();
        let d = back.interval(main, ThreadId::ZERO, flops).unwrap();
        assert_eq!(d.inclusive(), Some(2e9 / 100.0));
        // stored in SQL too
        let n: i64 = conn
            .query_scalar(
                "SELECT COUNT(*) FROM metric WHERE trial = ? AND derived = TRUE",
                &[Value::Int(trial_id)],
            )
            .unwrap()
            .as_int()
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn save_to_missing_trial_fails_cleanly() {
        let conn = Connection::open_in_memory();
        create_schema(&conn).unwrap();
        let err = save_profile(&conn, 99, &sample_profile());
        assert!(err.is_err());
        // nothing half-written
        assert_eq!(conn.row_count("metric").unwrap(), 0);
    }

    #[test]
    fn undefined_fields_roundtrip_as_null() {
        let (conn, trial_id) = setup();
        let mut p = Profile::new("u");
        let m = p.add_metric(Metric::measured("X"));
        let e = p.add_event(IntervalEvent::ungrouped("f"));
        p.add_thread(ThreadId::ZERO);
        let d = IntervalData {
            exclusive: 2.5,
            ..Default::default()
        };
        p.set_interval(e, ThreadId::ZERO, m, d);
        save_profile(&conn, trial_id, &p).unwrap();
        let back = load_trial(&conn, trial_id).unwrap();
        let got = back
            .interval(
                back.find_event("f").unwrap(),
                ThreadId::ZERO,
                back.find_metric("X").unwrap(),
            )
            .unwrap();
        assert_eq!(got.exclusive(), Some(2.5));
        assert_eq!(got.inclusive(), None);
        assert_eq!(got.calls(), None);
    }
}
