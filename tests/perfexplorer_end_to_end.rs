//! Experiment E4 (paper §5.3): PerfExplorer client/server data mining on
//! an sPPM-like dataset — clustering recovers the planted behaviour
//! classes and results persist through the PerfDMF API.

use perfdmf::analysis::adjusted_rand_index;
use perfdmf::core::DatabaseSession;
use perfdmf::db::{Connection, Value};
use perfdmf::explorer::{AnalysisServer, ExplorerClient, Request, Response};
use perfdmf::workload::SppmModel;

#[test]
fn sppm_clusters_recovered_and_persisted() {
    let model = SppmModel::default_classes(7);
    let (profile, truth) = model.generate(256, &[0.5, 0.3, 0.2]);
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    let trial = session.store_profile("sppm", "counters", &profile).unwrap();

    let server = AnalysisServer::start(conn.clone(), 2).unwrap();
    let client = ExplorerClient::connect(&server);
    let Response::Clustering {
        settings_id,
        k,
        assignments,
        summaries,
        ..
    } = client.cluster_counters(trial, "sppm_timestep", 6)
    else {
        panic!("clustering failed");
    };
    assert_eq!(k, 3, "silhouette should find the 3 planted classes");
    let ari = adjusted_rand_index(&assignments, &truth);
    assert!(ari > 0.95, "ARI {ari}");
    assert_eq!(summaries.iter().map(|s| s.size).sum::<usize>(), 256);

    // results persisted under analysis_settings/analysis_result
    let n: i64 = conn
        .query_scalar(
            "SELECT COUNT(*) FROM analysis_result WHERE settings = ?",
            &[Value::Int(settings_id)],
        )
        .unwrap()
        .as_int()
        .unwrap();
    assert!(
        n as usize >= 256 + 3,
        "assignments + summaries stored, got {n}"
    );

    // browse them back through the protocol
    match client.fetch(settings_id) {
        Response::Stored { method, rows } => {
            assert_eq!(method, "kmeans");
            let assigns: Vec<usize> = rows
                .iter()
                .filter(|(t, _, _, _)| t == "assignment")
                .map(|(_, _, v, _)| *v as usize)
                .collect();
            assert_eq!(assigns.len(), 256);
            assert_eq!(adjusted_rand_index(&assigns, &truth), 1.0);
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn pca_reduction_preserves_cluster_structure() {
    let model = SppmModel::default_classes(21);
    let (profile, truth) = model.generate(192, &[0.4, 0.4, 0.2]);
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).unwrap();
    let trial = session.store_profile("sppm", "pca", &profile).unwrap();
    let server = AnalysisServer::start(conn, 1).unwrap();
    let client = ExplorerClient::connect(&server);
    // cluster in a 2-component PCA space instead of the raw 7-D space
    let resp = client.request(Request::ClusterTrial {
        trial_id: trial,
        features: perfdmf::explorer::FeatureSpace::MetricsOfEvent("sppm_timestep".into()),
        k: Some(3),
        max_k: 3,
        pca_components: 2,
        method: perfdmf::explorer::ClusterMethod::KMeans,
    });
    let Response::Clustering { assignments, .. } = resp else {
        panic!("{resp:?}");
    };
    let ari = adjusted_rand_index(&assignments, &truth);
    assert!(ari > 0.9, "PCA-space ARI {ari}");
    server.shutdown();
}

#[test]
fn analysis_results_survive_restart() {
    // Persistence path: cluster → checkpoint → reopen → fetch.
    let dir = std::env::temp_dir().join(format!(
        "pdmf_explorer_persist_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let settings_id;
    let truth;
    {
        let conn = Connection::open(&dir).unwrap();
        let mut session = DatabaseSession::new(conn.clone()).unwrap();
        let model = SppmModel::default_classes(3);
        let (profile, t) = model.generate(64, &[0.5, 0.25, 0.25]);
        truth = t;
        let trial = session.store_profile("sppm", "persist", &profile).unwrap();
        let server = AnalysisServer::start(conn.clone(), 1).unwrap();
        let client = ExplorerClient::connect(&server);
        let Response::Clustering {
            settings_id: sid, ..
        } = client.cluster_counters(trial, "sppm_timestep", 5)
        else {
            panic!("clustering failed");
        };
        settings_id = sid;
        server.shutdown();
        conn.checkpoint().unwrap();
    }
    {
        let conn = Connection::open(&dir).unwrap();
        let server = AnalysisServer::start(conn, 1).unwrap();
        let client = ExplorerClient::connect(&server);
        match client.fetch(settings_id) {
            Response::Stored { rows, .. } => {
                let assigns: Vec<usize> = rows
                    .iter()
                    .filter(|(t, _, _, _)| t == "assignment")
                    .map(|(_, _, v, _)| *v as usize)
                    .collect();
                assert_eq!(assigns.len(), 64);
                assert!(adjusted_rand_index(&assigns, &truth) > 0.9);
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
