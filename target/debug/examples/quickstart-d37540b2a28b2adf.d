/root/repo/target/debug/examples/quickstart-d37540b2a28b2adf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d37540b2a28b2adf: examples/quickstart.rs

examples/quickstart.rs:
