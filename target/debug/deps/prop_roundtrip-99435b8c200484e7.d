/root/repo/target/debug/deps/prop_roundtrip-99435b8c200484e7.d: crates/xml/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-99435b8c200484e7: crates/xml/tests/prop_roundtrip.rs

crates/xml/tests/prop_roundtrip.rs:
