//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length bound for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy yielding `Vec`s whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn fixed_and_ranged_sizes() {
        let mut rng = TestRng::from_seed(9);
        for _ in 0..50 {
            assert_eq!(vec(0u8..5, 7usize).generate(&mut rng).len(), 7);
            let v = vec(0u8..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
