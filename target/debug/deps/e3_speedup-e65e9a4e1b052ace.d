/root/repo/target/debug/deps/e3_speedup-e65e9a4e1b052ace.d: crates/bench/benches/e3_speedup.rs Cargo.toml

/root/repo/target/debug/deps/libe3_speedup-e65e9a4e1b052ace.rmeta: crates/bench/benches/e3_speedup.rs Cargo.toml

crates/bench/benches/e3_speedup.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
