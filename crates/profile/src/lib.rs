//! # perfdmf-profile
//!
//! The common parallel profile data model at the heart of PerfDMF
//! (paper §3.1): profile data organized by **node, context, thread, metric
//! and event**, with an aggregate measurement recorded for each
//! combination.
//!
//! * [`ThreadId`] — node / context / thread addressing.
//! * [`Metric`], [`IntervalEvent`], [`AtomicEvent`] — the measured things.
//! * [`IntervalData`] — one INTERVAL_LOCATION_PROFILE record (inclusive,
//!   exclusive, percentages, per-call, calls, subroutines) with support
//!   for tool-specific undefined fields.
//! * [`AtomicData`] — one ATOMIC_LOCATION_PROFILE record (count, min, max,
//!   mean, stddev) with Welford accumulation and parallel merge.
//! * [`Profile`] — the trial container, with total/mean summaries
//!   (INTERVAL_TOTAL_SUMMARY / INTERVAL_MEAN_SUMMARY), cross-thread event
//!   statistics, consistency validation, and dense storage sized for
//!   16K-processor trials.
//! * [`MetricExpr`] / [`derive_metric`] — derived metrics
//!   (e.g. `FLOPS = PAPI_FP_OPS / TIME`).
//! * [`callpath`] — TAU callpath (`a => b`) parsing, call-tree
//!   reconstruction, and flat-view aggregation.

mod atomic;
pub mod callpath;
mod derived;
mod event;
mod interval;
mod profile;
mod thread;

pub use atomic::AtomicData;
pub use callpath::{
    build_call_tree, flatten_callpaths, is_callpath, parse_callpath, validate_call_tree, CallNode,
    CALLPATH_SEPARATOR,
};
pub use derived::{derive_metric, DerivedError, MetricExpr};
pub use event::{AtomicEvent, IntervalEvent, Metric};
pub use interval::{IntervalData, UNDEFINED};
pub use profile::{AtomicEventId, EventId, EventStats, IntervalField, MetricId, Profile};
pub use thread::ThreadId;
