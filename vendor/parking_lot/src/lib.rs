//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access and no vendored registry,
//! so this workspace ships a minimal API-compatible subset of
//! `parking_lot` implemented over `std::sync`. Poisoning is swallowed
//! (`parking_lot` has no poisoning): a panicked holder's data is handed
//! to the next acquirer as-is, matching upstream semantics closely
//! enough for this codebase.

use std::sync;

/// `parking_lot::Mutex` — `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::RwLock` — `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
