//! The process-wide performance-regression log.
//!
//! Detection lives in `perfdmf-analysis` (the Chan–Welford baseline
//! comparison) and in callers like the explorer's watchdog hook; this
//! module only *retains* what they flag, in a bounded ring, so the
//! findings are observable after the fact — `perfdmf-db` exposes the
//! ring as the `perfdmf_regressions` virtual system table.
//!
//! Reporters should also emit a structured [`crate::Event`] so sinks see
//! the finding in real time; the ring is the queryable archive half.

use std::collections::VecDeque;
use std::sync::OnceLock;

use parking_lot::Mutex;

/// Findings retained by the ring (oldest evicted first).
const LOG_CAPACITY: usize = 1024;

/// One flagged deviation of a candidate measurement from its baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionRecord {
    /// Monotonically increasing record number (survives eviction).
    pub seq: u64,
    /// What was compared, e.g. `"trial 7 vs experiment 1 baseline"`.
    pub context: String,
    /// The regressing routine / event / bench name.
    pub event: String,
    /// Metric the samples were taken in (e.g. `TIME`, `ns`).
    pub metric: String,
    /// Baseline mean of the event's samples.
    pub baseline_mean: f64,
    /// Baseline standard deviation (0 when the baseline never varied).
    pub baseline_stddev: f64,
    /// Number of baseline samples behind the mean.
    pub baseline_count: u64,
    /// The candidate's value.
    pub candidate: f64,
    /// `candidate / baseline_mean` (∞ when the baseline mean is 0).
    pub ratio: f64,
    /// Standard-score of the candidate against the baseline, when the
    /// baseline has spread; `None` for a constant baseline.
    pub zscore: Option<f64>,
}

#[derive(Default)]
struct LogInner {
    ring: VecDeque<RegressionRecord>,
    next_seq: u64,
}

fn log_inner() -> &'static Mutex<LogInner> {
    static LOG: OnceLock<Mutex<LogInner>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(LogInner::default()))
}

/// Append a finding to the log, assigning its sequence number (returned).
pub fn report(mut record: RegressionRecord) -> u64 {
    let mut inner = log_inner().lock();
    let seq = inner.next_seq;
    inner.next_seq += 1;
    record.seq = seq;
    if inner.ring.len() >= LOG_CAPACITY {
        inner.ring.pop_front();
    }
    inner.ring.push_back(record);
    seq
}

/// Copy of the retained findings, oldest first.
pub fn log() -> Vec<RegressionRecord> {
    log_inner().lock().ring.iter().cloned().collect()
}

/// Drop all retained findings (sequence numbers keep counting).
pub fn clear() {
    log_inner().lock().ring.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(event: &str) -> RegressionRecord {
        RegressionRecord {
            seq: 0,
            context: "test".into(),
            event: event.into(),
            metric: "TIME".into(),
            baseline_mean: 10.0,
            baseline_stddev: 1.0,
            baseline_count: 4,
            candidate: 25.0,
            ratio: 2.5,
            zscore: Some(15.0),
        }
    }

    #[test]
    fn report_assigns_increasing_seqs() {
        let a = report(record("a"));
        let b = report(record("b"));
        assert!(b > a);
        let found: Vec<_> = log()
            .into_iter()
            .filter(|r| r.seq == a || r.seq == b)
            .collect();
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].event, "a");
        assert_eq!(found[1].event, "b");
    }
}
