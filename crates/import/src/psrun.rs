//! PerfSuite (`psrun`) XML importer.
//!
//! `psrun` (NCSA) samples hardware performance counters for a whole
//! process and writes one XML document per process:
//!
//! ```xml
//! <hwpcprofilereport>
//!   <hwpcreport class="PAPI">
//!     <executable name="sppm"/>
//!     <machineinfo> ... </machineinfo>
//!     <hwpceventlist class="PAPI">
//!       <hwpcevent name="PAPI_TOT_CYC" type="preset">123456789</hwpcevent>
//!       <hwpcevent name="PAPI_FP_OPS" type="preset">23456789</hwpcevent>
//!     </hwpceventlist>
//!     <wallclock>12.5</wallclock>
//!   </hwpcreport>
//! </hwpcprofilereport>
//! ```
//!
//! Counters are whole-process totals, so the profile has a single event
//! (the executable) per process; each `hwpcevent` becomes a metric.

use crate::error::{ImportError, Result};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId, UNDEFINED};
use perfdmf_xml::Element;

const FORMAT: &str = "psrun";

/// Parse one psrun XML document into `profile` as `thread`.
pub fn parse_psrun_text(text: &str, thread: ThreadId, profile: &mut Profile) -> Result<()> {
    let doc = Element::parse(text)?;
    let report = if doc.name == "hwpcreport" {
        &doc
    } else if doc.name == "hwpcprofilereport" {
        doc.child("hwpcreport")
            .ok_or_else(|| ImportError::format(FORMAT, 0, "missing <hwpcreport> element"))?
    } else {
        return Err(ImportError::format(
            FORMAT,
            0,
            format!("unexpected root element <{}>", doc.name),
        ));
    };
    let exe = report
        .child("executable")
        .and_then(|e| {
            e.attr("name").map(str::to_string).or_else(|| {
                let t = e.text();
                if t.is_empty() {
                    None
                } else {
                    Some(t.to_string())
                }
            })
        })
        .unwrap_or_else(|| "program".to_string());
    profile.add_thread(thread);
    let event = profile.add_event(IntervalEvent::new(exe, "PSRUN"));

    let list = report
        .child("hwpceventlist")
        .ok_or_else(|| ImportError::format(FORMAT, 0, "missing <hwpceventlist> element"))?;
    let mut n = 0usize;
    for ev in list.children_named("hwpcevent") {
        let name = ev.require_attr("name")?;
        let value: f64 = ev.text().parse().map_err(|_| {
            ImportError::format(
                FORMAT,
                0,
                format!("bad counter value {:?} for {name}", ev.text()),
            )
        })?;
        let metric = profile.add_metric(Metric::measured(name));
        profile.set_interval(
            event,
            thread,
            metric,
            IntervalData::new(value, value, 1.0, UNDEFINED),
        );
        n += 1;
    }
    if let Some(wc) = report.child("wallclock") {
        if let Ok(secs) = wc.text().parse::<f64>() {
            let metric = profile.add_metric(Metric::measured("PSRUN_WALL_CLOCK"));
            profile.set_interval(
                event,
                thread,
                metric,
                IntervalData::new(secs, secs, 1.0, UNDEFINED),
            );
            n += 1;
        }
    }
    if n == 0 {
        return Err(ImportError::format(
            FORMAT,
            0,
            "no hwpcevent counters found",
        ));
    }
    Ok(())
}

/// Load a single psrun XML file (one process).
pub fn load_psrun_file(path: &std::path::Path) -> Result<Profile> {
    let text = std::fs::read_to_string(path).map_err(|e| ImportError::io(path, e))?;
    let mut profile = Profile::new(
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default(),
    );
    profile.source_format = "psrun".into();
    parse_psrun_text(&text, ThreadId::ZERO, &mut profile)?;
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<hwpcprofilereport>
  <hwpcreport class="PAPI" version="1.0">
    <executable name="sppm"/>
    <hwpceventlist class="PAPI">
      <hwpcevent name="PAPI_TOT_CYC" type="preset">123456789</hwpcevent>
      <hwpcevent name="PAPI_FP_OPS" type="preset">23456789</hwpcevent>
    </hwpceventlist>
    <wallclock>12.5</wallclock>
  </hwpcreport>
</hwpcprofilereport>"#;

    #[test]
    fn parses_counters() {
        let mut p = Profile::new("t");
        parse_psrun_text(SAMPLE, ThreadId::ZERO, &mut p).unwrap();
        assert_eq!(p.metrics().len(), 3);
        let e = p.find_event("sppm").unwrap();
        let cyc = p.find_metric("PAPI_TOT_CYC").unwrap();
        assert_eq!(
            p.interval(e, ThreadId::ZERO, cyc).unwrap().inclusive(),
            Some(123456789.0)
        );
        let wc = p.find_metric("PSRUN_WALL_CLOCK").unwrap();
        assert_eq!(
            p.interval(e, ThreadId::ZERO, wc).unwrap().inclusive(),
            Some(12.5)
        );
    }

    #[test]
    fn bare_hwpcreport_accepted() {
        let text = r#"<hwpcreport><executable name="x"/><hwpceventlist>
            <hwpcevent name="C">5</hwpcevent></hwpceventlist></hwpcreport>"#;
        let mut p = Profile::new("t");
        parse_psrun_text(text, ThreadId::ZERO, &mut p).unwrap();
        assert_eq!(p.metrics().len(), 1);
    }

    #[test]
    fn rejects_bad_documents() {
        let mut p = Profile::new("t");
        assert!(parse_psrun_text("<wrong/>", ThreadId::ZERO, &mut p).is_err());
        assert!(parse_psrun_text("<hwpcreport/>", ThreadId::ZERO, &mut p).is_err());
        assert!(parse_psrun_text(
            "<hwpcreport><hwpceventlist><hwpcevent name=\"X\">bad</hwpcevent></hwpceventlist></hwpcreport>",
            ThreadId::ZERO,
            &mut p
        )
        .is_err());
        assert!(parse_psrun_text("not xml at all", ThreadId::ZERO, &mut p).is_err());
    }
}
