/root/repo/target/debug/deps/flexible_schema-6a6af4c993bae931.d: tests/flexible_schema.rs Cargo.toml

/root/repo/target/debug/deps/libflexible_schema-6a6af4c993bae931.rmeta: tests/flexible_schema.rs Cargo.toml

tests/flexible_schema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
