//! Crash-consistency harness: run a mixed DML/transaction workload,
//! crash at *every* VFS operation boundary (WAL appends, snapshot write
//! steps, header rewrites), reopen, and check invariants:
//!
//! * every transaction acknowledged as committed is fully present,
//! * the at-most-one transaction in flight at the crash is either fully
//!   present or fully absent (never partial),
//! * constraints (PRIMARY KEY, UNIQUE, NOT NULL, FOREIGN KEY) hold,
//! * the database reopens cleanly and stays writable.
//!
//! Determinism: the workload is derived from a seed via SplitMix64, and
//! `FaultVfs` fails exactly the scheduled operation, so every run is
//! reproducible from `(seed, crash_op, torn)` alone. The `RUST_SEED`
//! environment variable adds one extra seed (CI passes a varying one).

use perfdmf_db::{Connection, DbError, FaultKind, FaultPlan, FaultVfs, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!(
        "pdmf_crash_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shadow model of the two workload tables.
#[derive(Debug, Clone, PartialEq, Default)]
struct Model {
    schema: bool,
    /// trial id -> (name, nodes)
    trials: BTreeMap<i64, (String, i64)>,
    /// metric id -> (trial id, value)
    metrics: BTreeMap<i64, (i64, f64)>,
}

/// One logical workload step (a statement batch that commits atomically).
#[derive(Debug, Clone)]
enum Step {
    CreateSchema,
    InsertTrial {
        id: i64,
        name: String,
        nodes: i64,
    },
    UpdateTrial {
        id: i64,
        nodes: i64,
    },
    DeleteTrial {
        id: i64,
    },
    InsertMetric {
        id: i64,
        trial: i64,
        value: f64,
    },
    DeleteMetric {
        id: i64,
    },
    /// BEGIN; inner steps; COMMIT (or ROLLBACK).
    Txn {
        steps: Vec<Step>,
        commit: bool,
    },
    Checkpoint,
}

fn apply_step(model: &mut Model, step: &Step) {
    match step {
        Step::CreateSchema => model.schema = true,
        Step::InsertTrial { id, name, nodes } => {
            model.trials.insert(*id, (name.clone(), *nodes));
        }
        Step::UpdateTrial { id, nodes } => {
            if let Some(t) = model.trials.get_mut(id) {
                t.1 = *nodes;
            }
        }
        Step::DeleteTrial { id } => {
            model.trials.remove(id);
        }
        Step::InsertMetric { id, trial, value } => {
            model.metrics.insert(*id, (*trial, *value));
        }
        Step::DeleteMetric { id } => {
            model.metrics.remove(id);
        }
        Step::Txn { steps, commit } => {
            if *commit {
                for s in steps {
                    apply_step(model, s);
                }
            }
        }
        Step::Checkpoint => {}
    }
}

/// Generate a deterministic mixed workload: DDL, single-statement DML,
/// multi-statement transactions (committed and rolled back), and two
/// checkpoints so snapshot write steps are in the crash-point range.
fn workload(seed: u64) -> Vec<Step> {
    let mut rng = seed;
    let mut steps = vec![Step::CreateSchema];
    let mut model = Model::default();
    apply_step(&mut model, &steps[0]);
    let mut next_trial = 1i64;
    let mut next_metric = 1i64;
    let gen_one = |model: &Model, rng: &mut u64, nt: &mut i64, nm: &mut i64| -> Step {
        // Only generate steps that are valid against the current state.
        loop {
            match splitmix64(rng) % 5 {
                0 => {
                    let id = *nt;
                    *nt += 1;
                    return Step::InsertTrial {
                        id,
                        name: format!("trial-{id}"),
                        nodes: (splitmix64(rng) % 512) as i64,
                    };
                }
                1 if !model.trials.is_empty() => {
                    let keys: Vec<i64> = model.trials.keys().copied().collect();
                    let id = keys[(splitmix64(rng) as usize) % keys.len()];
                    return Step::UpdateTrial {
                        id,
                        nodes: (splitmix64(rng) % 512) as i64,
                    };
                }
                2 if !model.trials.is_empty() => {
                    // Only delete trials no metric references (RESTRICT).
                    let free: Vec<i64> = model
                        .trials
                        .keys()
                        .copied()
                        .filter(|id| !model.metrics.values().any(|(t, _)| t == id))
                        .collect();
                    if free.is_empty() {
                        continue;
                    }
                    let id = free[(splitmix64(rng) as usize) % free.len()];
                    return Step::DeleteTrial { id };
                }
                3 if !model.trials.is_empty() => {
                    let keys: Vec<i64> = model.trials.keys().copied().collect();
                    let trial = keys[(splitmix64(rng) as usize) % keys.len()];
                    let id = *nm;
                    *nm += 1;
                    return Step::InsertMetric {
                        id,
                        trial,
                        value: (splitmix64(rng) % 10_000) as f64 / 100.0,
                    };
                }
                4 if !model.metrics.is_empty() => {
                    let keys: Vec<i64> = model.metrics.keys().copied().collect();
                    let id = keys[(splitmix64(rng) as usize) % keys.len()];
                    return Step::DeleteMetric { id };
                }
                _ => continue,
            }
        }
    };
    for i in 0..24 {
        let step = match splitmix64(&mut rng) % 4 {
            // Multi-statement transaction, committed or rolled back.
            0 => {
                let n = 2 + (splitmix64(&mut rng) % 3) as usize;
                let commit = !splitmix64(&mut rng).is_multiple_of(3);
                let mut inner = Vec::with_capacity(n);
                let mut scratch = model.clone();
                for _ in 0..n {
                    let s = gen_one(&scratch, &mut rng, &mut next_trial, &mut next_metric);
                    apply_step(&mut scratch, &s);
                    inner.push(s);
                }
                Step::Txn {
                    steps: inner,
                    commit,
                }
            }
            _ => gen_one(&model, &mut rng, &mut next_trial, &mut next_metric),
        };
        apply_step(&mut model, &step);
        steps.push(step);
        if i == 8 || i == 17 {
            steps.push(Step::Checkpoint);
        }
    }
    steps
}

fn exec_step(conn: &Connection, step: &Step) -> Result<(), DbError> {
    match step {
        Step::CreateSchema => conn.transaction(|tx| {
            // One transaction so the model can treat DDL as atomic.
            tx.execute(
                "CREATE TABLE trial (
                     id INTEGER PRIMARY KEY,
                     name TEXT NOT NULL UNIQUE,
                     nodes INTEGER NOT NULL)",
                &[],
            )?;
            tx.execute(
                "CREATE TABLE metric (
                     id INTEGER PRIMARY KEY,
                     trial INTEGER NOT NULL REFERENCES trial(id),
                     value DOUBLE NOT NULL)",
                &[],
            )?;
            Ok(())
        }),
        Step::InsertTrial { id, name, nodes } => conn
            .execute(
                "INSERT INTO trial (id, name, nodes) VALUES (?, ?, ?)",
                &[
                    Value::Int(*id),
                    Value::from(name.as_str()),
                    Value::Int(*nodes),
                ],
            )
            .map(|_| ()),
        Step::UpdateTrial { id, nodes } => conn
            .execute(
                "UPDATE trial SET nodes = ? WHERE id = ?",
                &[Value::Int(*nodes), Value::Int(*id)],
            )
            .map(|_| ()),
        Step::DeleteTrial { id } => conn
            .execute("DELETE FROM trial WHERE id = ?", &[Value::Int(*id)])
            .map(|_| ()),
        Step::InsertMetric { id, trial, value } => conn
            .execute(
                "INSERT INTO metric (id, trial, value) VALUES (?, ?, ?)",
                &[Value::Int(*id), Value::Int(*trial), Value::Float(*value)],
            )
            .map(|_| ()),
        Step::DeleteMetric { id } => conn
            .execute("DELETE FROM metric WHERE id = ?", &[Value::Int(*id)])
            .map(|_| ()),
        Step::Txn { steps, commit } => conn
            .transaction(|tx| {
                for s in steps {
                    match s {
                        Step::InsertTrial { id, name, nodes } => {
                            tx.execute(
                                "INSERT INTO trial (id, name, nodes) VALUES (?, ?, ?)",
                                &[
                                    Value::Int(*id),
                                    Value::from(name.as_str()),
                                    Value::Int(*nodes),
                                ],
                            )?;
                        }
                        Step::UpdateTrial { id, nodes } => {
                            tx.execute(
                                "UPDATE trial SET nodes = ? WHERE id = ?",
                                &[Value::Int(*nodes), Value::Int(*id)],
                            )?;
                        }
                        Step::DeleteTrial { id } => {
                            tx.execute("DELETE FROM trial WHERE id = ?", &[Value::Int(*id)])?;
                        }
                        Step::InsertMetric { id, trial, value } => {
                            tx.execute(
                                "INSERT INTO metric (id, trial, value) VALUES (?, ?, ?)",
                                &[Value::Int(*id), Value::Int(*trial), Value::Float(*value)],
                            )?;
                        }
                        Step::DeleteMetric { id } => {
                            tx.execute("DELETE FROM metric WHERE id = ?", &[Value::Int(*id)])?;
                        }
                        _ => unreachable!("nested txn/ddl not generated"),
                    }
                }
                if *commit {
                    Ok(())
                } else {
                    // Any error rolls the transaction back; use a benign one.
                    Err(DbError::Transaction("intentional rollback".into()))
                }
            })
            .map(|_: ()| ())
            .or_else(|e| {
                // Intentional rollbacks come back as our marker error.
                if matches!(&e, DbError::Transaction(m) if m == "intentional rollback") {
                    Ok(())
                } else {
                    Err(e)
                }
            }),
        Step::Checkpoint => conn.checkpoint(),
    }
}

/// Outcome of a crashed run: the last state known committed, plus the
/// (at most one) step whose acknowledgement the crash swallowed.
struct CrashedRun {
    committed: Model,
    in_flight: Option<Step>,
}

/// Run the workload against a crashing VFS. Stops at the first error
/// (after the crash point every I/O fails, like a dead process).
fn run_until_crash(dir: &std::path::Path, vfs: Arc<FaultVfs>, steps: &[Step]) -> CrashedRun {
    let mut committed = Model::default();
    let conn = match Connection::open_with_vfs(dir, vfs) {
        Ok(c) => c,
        Err(_) => {
            return CrashedRun {
                committed,
                in_flight: None,
            }
        }
    };
    for step in steps {
        match exec_step(&conn, step) {
            Ok(()) => apply_step(&mut committed, step),
            Err(_) => {
                // A failed checkpoint changes no logical state; anything
                // else may or may not have reached the log.
                let in_flight = if matches!(step, Step::Checkpoint) {
                    None
                } else {
                    Some(step.clone())
                };
                return CrashedRun {
                    committed,
                    in_flight,
                };
            }
        }
    }
    CrashedRun {
        committed,
        in_flight: None,
    }
}

/// Read the reopened database back into a `Model`.
fn observe(conn: &Connection) -> Result<Model, DbError> {
    let mut model = Model::default();
    if !conn.has_table("trial") {
        return Ok(model);
    }
    model.schema = true;
    let rs = conn.query("SELECT id, name, nodes FROM trial ORDER BY id", &[])?;
    for row in &rs.rows {
        let id = row[0].as_int().expect("trial.id is INTEGER");
        let name = match &row[1] {
            Value::Text(s) => s.to_string(),
            other => panic!("trial.name should be TEXT, got {other:?}"),
        };
        let nodes = row[2].as_int().expect("trial.nodes is INTEGER");
        model.trials.insert(id, (name, nodes));
    }
    let rs = conn.query("SELECT id, trial, value FROM metric ORDER BY id", &[])?;
    for row in &rs.rows {
        let id = row[0].as_int().expect("metric.id is INTEGER");
        let trial = row[1].as_int().expect("metric.trial is INTEGER");
        let value = match row[2] {
            Value::Float(f) => f,
            Value::Int(i) => i as f64,
            ref other => panic!("metric.value should be numeric, got {other:?}"),
        };
        model.metrics.insert(id, (trial, value));
    }
    Ok(model)
}

/// Reopen after a crash and assert every invariant. `ctx` makes failures
/// reproducible: it carries (seed, crash_op, torn).
fn check_recovery(dir: &std::path::Path, run: &CrashedRun, ctx: &str) {
    let conn = Connection::open(dir)
        .unwrap_or_else(|e| panic!("{ctx}: database failed to reopen after crash: {e}"));
    let observed = observe(&conn).unwrap_or_else(|e| panic!("{ctx}: post-recovery read: {e}"));

    // Committed state must be there; the in-flight step is all-or-nothing.
    if observed != run.committed {
        let mut with_in_flight = run.committed.clone();
        match &run.in_flight {
            Some(step) => apply_step(&mut with_in_flight, step),
            None => panic!(
                "{ctx}: recovered state diverges from committed state\n  committed: {:?}\n  observed:  {:?}",
                run.committed, observed
            ),
        }
        assert_eq!(
            observed, with_in_flight,
            "{ctx}: recovered state is neither the committed state nor \
             committed+in-flight ({:?})",
            run.in_flight
        );
    }

    // Constraints: UNIQUE names, FK targets present, NOT NULL respected
    // (observe() already panics on NULLs in NOT NULL columns).
    let mut names: Vec<&str> = observed.trials.values().map(|(n, _)| n.as_str()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "{ctx}: duplicate trial names survived");
    for (mid, (trial, _)) in &observed.metrics {
        assert!(
            observed.trials.contains_key(trial),
            "{ctx}: metric {mid} references missing trial {trial}"
        );
    }

    // The recovered database must remain fully writable.
    if observed.schema {
        conn.execute(
            "INSERT INTO trial (id, name, nodes) VALUES (?, 'post-crash', 0)",
            &[Value::Int(1_000_000)],
        )
        .unwrap_or_else(|e| panic!("{ctx}: recovered database not writable: {e}"));
        assert!(
            conn.execute(
                "INSERT INTO trial (id, name, nodes) VALUES (?, 'post-crash', 0)",
                &[Value::Int(1_000_001)],
            )
            .is_err(),
            "{ctx}: UNIQUE constraint not enforced after recovery"
        );
    }
}

/// Count the VFS operations a full (fault-free) run performs, so the
/// crash loop knows the exact range of crash points.
fn profile_ops(tag: &str, steps: &[Step]) -> u64 {
    let dir = tmpdir(tag);
    let vfs = Arc::new(FaultVfs::on_disk(FaultPlan::default()));
    let run = run_until_crash(&dir, vfs.clone(), steps);
    assert!(run.in_flight.is_none(), "fault-free run must not fail");
    let ops = vfs.ops_performed();
    let _ = std::fs::remove_dir_all(&dir);
    ops
}

fn seeds_under_test() -> Vec<u64> {
    let mut seeds = vec![0xA11CE, 0xB0B5EED, 0xC0FFEE];
    if let Ok(s) = std::env::var("RUST_SEED") {
        if let Ok(n) = s.trim().parse::<u64>() {
            seeds.push(n);
        }
    }
    seeds
}

#[test]
fn every_crash_point_recovers() {
    let mut total_points = 0u64;
    for seed in seeds_under_test() {
        let steps = workload(seed);
        let total = profile_ops(&format!("profile_{seed}"), &steps);
        assert!(
            total > 30,
            "workload too small to be meaningful: {total} ops"
        );
        for crash_op in 0..total {
            for torn in [false, true] {
                let ctx = format!("seed={seed} crash_op={crash_op} torn={torn}");
                let dir = tmpdir(&format!("run_{seed}_{crash_op}_{torn}"));
                let plan = if torn {
                    FaultPlan::torn_crash_at(crash_op, seed)
                } else {
                    FaultPlan::crash_at(crash_op)
                };
                let vfs = Arc::new(FaultVfs::on_disk(plan));
                let run = run_until_crash(&dir, vfs, &steps);
                check_recovery(&dir, &run, &ctx);
                let _ = std::fs::remove_dir_all(&dir);
            }
            total_points += 1;
        }
    }
    assert!(
        total_points >= 100,
        "need >= 100 distinct crash points, got {total_points}"
    );
}

#[test]
fn fsync_failure_at_checkpoint_is_reported_and_survivable() {
    let dir = tmpdir("fsync");
    // Probe: find the op index of the snapshot fsync during checkpoint.
    let probe = Arc::new(FaultVfs::on_disk(FaultPlan::default()));
    {
        let conn = Connection::open_with_vfs(&dir, probe.clone()).unwrap();
        conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
        conn.execute("INSERT INTO t (x) VALUES (1)", &[]).unwrap();
    }
    let before_ckpt = probe.ops_performed();
    let _ = std::fs::remove_dir_all(&dir);

    // Checkpoint op layout: snapshot create, write, fsync — fail the fsync.
    let plan = FaultPlan::fail_at(before_ckpt + 2, FaultKind::FsyncError);
    let vfs = Arc::new(FaultVfs::on_disk(plan));
    let conn = Connection::open_with_vfs(&dir, vfs).unwrap();
    conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
    conn.execute("INSERT INTO t (x) VALUES (1)", &[]).unwrap();
    // Counters are global and monotone; other tests may bump them
    // concurrently, so assert on the delta, not the absolute value.
    let before = counter_value("db.fsync_errors");
    let err = conn.checkpoint().expect_err("fsync failure must propagate");
    assert!(
        matches!(err, DbError::Io { ref op, .. } if op.contains("fsync")),
        "expected an fsync Io error, got {err:?}"
    );
    assert!(
        counter_value("db.fsync_errors") > before,
        "db.fsync_errors not incremented"
    );
    // The database keeps working, and the data survives a reopen.
    conn.execute("INSERT INTO t (x) VALUES (2)", &[]).unwrap();
    drop(conn);
    let conn = Connection::open(&dir).unwrap();
    let n = conn
        .query_scalar("SELECT COUNT(*) FROM t", &[])
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(n, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_on_commit_rolls_back_and_recovers() {
    let dir = tmpdir("enospc");
    let probe = Arc::new(FaultVfs::on_disk(FaultPlan::default()));
    {
        let conn = Connection::open_with_vfs(&dir, probe.clone()).unwrap();
        conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
    }
    let after_ddl = probe.ops_performed();
    let _ = std::fs::remove_dir_all(&dir);

    // Next write after DDL is the INSERT's WAL append: fail it with ENOSPC.
    let plan = FaultPlan::fail_at(after_ddl, FaultKind::Enospc);
    let vfs = Arc::new(FaultVfs::on_disk(plan));
    let conn = Connection::open_with_vfs(&dir, vfs).unwrap();
    conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
    let err = conn
        .execute("INSERT INTO t (x) VALUES (1)", &[])
        .expect_err("ENOSPC must propagate");
    assert!(matches!(err, DbError::Io { .. }), "got {err:?}");
    // Failed commit rolled back in memory: the row is gone...
    let n = conn
        .query_scalar("SELECT COUNT(*) FROM t", &[])
        .unwrap()
        .as_int()
        .unwrap();
    assert_eq!(n, 0, "failed commit must not leave the row in memory");
    // ...and the engine keeps accepting writes once space is back.
    conn.execute("INSERT INTO t (x) VALUES (2)", &[]).unwrap();
    drop(conn);
    let conn = Connection::open(&dir).unwrap();
    let rs = conn.query("SELECT x FROM t", &[]).unwrap();
    assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_on_snapshot_read_is_detected() {
    let dir = tmpdir("bitflip");
    {
        let conn = Connection::open(&dir).unwrap();
        conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
        conn.execute("INSERT INTO t (x) VALUES (42)", &[]).unwrap();
        conn.checkpoint().unwrap();
    }
    // Reopen with a VFS that flips one bit of the snapshot read (op 1:
    // create_dir_all is op 0, snapshot read is op 1).
    let vfs = Arc::new(FaultVfs::on_disk(FaultPlan::fail_at(1, FaultKind::BitFlip)));
    let err = Connection::open_with_vfs(&dir, vfs).expect_err("corruption must be detected");
    assert!(
        matches!(err, DbError::Corrupt(_)),
        "expected Corrupt, got {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn short_read_of_wal_never_panics() {
    for seed in 0..16u64 {
        let dir = tmpdir(&format!("shortread_{seed}"));
        {
            let conn = Connection::open(&dir).unwrap();
            conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
            for i in 0..10 {
                conn.execute("INSERT INTO t (x) VALUES (?)", &[Value::Int(i)])
                    .unwrap();
            }
        }
        // WAL read is op 2 on reopen (mkdir, snapshot-exists is unmetered,
        // wal read). The seed varies how much of the file survives.
        let plan = FaultPlan::fail_at(1, FaultKind::ShortRead).with_seed(seed);
        let vfs = Arc::new(FaultVfs::on_disk(plan));
        match Connection::open_with_vfs(&dir, vfs) {
            Ok(conn) => {
                // Whatever committed prefix survived must be readable.
                let n = conn
                    .query_scalar("SELECT COUNT(*) FROM t", &[])
                    .map(|v| v.as_int().unwrap_or(0))
                    .unwrap_or(0);
                assert!(n <= 10);
            }
            Err(e) => {
                assert!(
                    matches!(e, DbError::Corrupt(_) | DbError::Io { .. }),
                    "unexpected error class: {e:?}"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_telemetry_counters_are_emitted() {
    let dir = tmpdir("telemetry");
    {
        let conn = Connection::open(&dir).unwrap();
        conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
        conn.execute("INSERT INTO t (x) VALUES (1)", &[]).unwrap();
    }
    // Tear the WAL tail so recovery has something to repair.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.pdmf"))
            .unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
    }
    let names = [
        "db.recovery.opens",
        "db.recovery.replayed_records",
        "db.recovery.torn_tail",
        "db.recovery.wal_rewrites",
    ];
    let before: Vec<u64> = names.iter().map(|n| counter_value(n)).collect();
    let _conn = Connection::open(&dir).unwrap();
    for (name, before) in names.iter().zip(before) {
        assert!(
            counter_value(name) > before,
            "{name} not incremented during recovery"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_fault_reopen_produces_flight_recorder_dump() {
    let dir = tmpdir("trace_dump");
    {
        let conn = Connection::open(&dir).unwrap();
        conn.execute("CREATE TABLE t (x INTEGER)", &[]).unwrap();
        conn.execute("INSERT INTO t (x) VALUES (1)", &[]).unwrap();
    }
    // Tear the WAL tail so the reopen trips the torn-tail fault counter.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.pdmf"))
            .unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
    }
    let dump_path = dir.join("flight_recorder.json");
    perfdmf_telemetry::set_tracing(true);
    perfdmf_telemetry::trace::set_fault_dump_path(Some(dump_path.clone()));
    let reopened = Connection::open(&dir);
    perfdmf_telemetry::trace::set_fault_dump_path(None);
    perfdmf_telemetry::set_tracing(false);
    reopened.expect("torn tail must be repaired on reopen");
    let json = std::fs::read_to_string(&dump_path)
        .expect("durability fault must dump the flight recorder");
    // The dump must carry the WAL span that was live when the fault
    // counter fired: recovery scanned the log and found the torn tail.
    assert!(
        json.contains("db.wal.recover"),
        "dump missing the failing WAL span:\n{json}"
    );
    assert!(
        json.contains("db.open"),
        "dump missing the enclosing open span:\n{json}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn counter_value(name: &str) -> u64 {
    perfdmf_telemetry::snapshot()
        .counter(name)
        .map(|c| c.value)
        .unwrap_or(0)
}

#[test]
fn chunk_cache_is_rebuilt_after_crash_recovery() {
    use perfdmf_db::{override_columnar, ColumnarMode};
    let dir = tmpdir("colcache_rebuild");
    let _force = override_columnar(ColumnarMode::Force);
    let expected = {
        let conn = Connection::open(&dir).unwrap();
        conn.execute("CREATE TABLE t (x INTEGER, y DOUBLE)", &[])
            .unwrap();
        for i in 0..100i64 {
            conn.execute(
                "INSERT INTO t (x, y) VALUES (?, ?)",
                &[Value::Int(i), Value::Float(i as f64 * 0.25)],
            )
            .unwrap();
        }
        // Warm the chunk cache; remember the answer for after the crash.
        conn.query("SELECT COUNT(*), SUM(x), AVG(y) FROM t WHERE x >= 10", &[])
            .unwrap()
    };
    // Tear the WAL tail so the reopen goes through real crash recovery
    // (chunks are derived data living only in memory — they must come
    // back from the recovered slab, not from disk).
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.pdmf"))
            .unwrap();
        f.write_all(&[0xDE, 0xAD]).unwrap();
    }
    let conn = Connection::open(&dir).unwrap();
    // The recovered table starts with a cold cache: the first columnar
    // query must build its chunk (a cache miss), and its answer must
    // match the pre-crash result.
    let misses_before = counter_value("db.colcache.chunk_misses");
    let recovered = conn
        .query("SELECT COUNT(*), SUM(x), AVG(y) FROM t WHERE x >= 10", &[])
        .unwrap();
    assert_eq!(recovered, expected, "recovered chunks changed the answer");
    assert!(
        counter_value("db.colcache.chunk_misses") > misses_before,
        "reopened table should have rebuilt its chunk from the slab"
    );
    // And the rebuilt chunk is retained: a repeat hits the cache.
    let hits_before = counter_value("db.colcache.chunk_hits");
    let again = conn
        .query("SELECT COUNT(*), SUM(x), AVG(y) FROM t WHERE x >= 10", &[])
        .unwrap();
    assert_eq!(again, expected);
    assert!(counter_value("db.colcache.chunk_hits") > hits_before);
    let _ = std::fs::remove_dir_all(&dir);
}
