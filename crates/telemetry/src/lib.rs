//! Self-observability for PerfDMF — the performance data framework
//! measuring itself.
//!
//! Three primitives, all behind one global on/off switch:
//!
//! * **Spans** ([`span`]) — RAII scoped timers on a monotonic clock.
//!   Each span records its elapsed nanoseconds into a latency
//!   [`Histogram`] named after the span, and nests via a thread-local
//!   stack so events can capture where they happened
//!   ([`span::current_path`]).
//! * **Counters and histograms** ([`counter`], [`histogram`]) — named
//!   atomics in a sharded global registry; histograms bucket by
//!   power of two (65 buckets cover the full `u64` range).
//! * **Structured events** ([`event::emit`]) — key/value records (e.g.
//!   the slow-query log) fanned out to installed [`event::EventSink`]s
//!   such as the bundled ring buffer with text/JSON export.
//!
//! A fourth layer, [`trace`], turns the same spans into causal traces:
//! trace/span ids with parent links, cross-thread context propagation,
//! a lock-free flight recorder, and Chrome-trace export. It has its own
//! switch ([`set_tracing`], default off) so its cost can be priced
//! separately; events stamp the active trace id automatically.
//!
//! Four retention layers make the instruments queryable after the
//! fact: [`metrics`] keeps a bounded time series of registry snapshots
//! (the background sampler behind the `perfdmf_metrics_history` system
//! table), [`regressions`] keeps the bounded log of flagged
//! performance regressions (the `perfdmf_regressions` system table),
//! [`sessions`] keeps one record per network session (the
//! `perfdmf_sessions` system table fed by `perfdmf-server`), and
//! [`requests`] keeps a bounded ring of recent network requests with
//! their per-request [`meter::ResourceUsage`] plus per-kind Chan–Welford
//! aggregates (the `perfdmf_requests` / `perfdmf_request_summary`
//! system tables).
//!
//! When telemetry is disabled ([`set_enabled`]`(false)`) every
//! instrumentation point reduces to one relaxed atomic load.
//!
//! The loop is closed by [`snapshot_to_profile`]: live metrics become a
//! [`perfdmf_profile::Profile`] (spans → interval events, counters →
//! atomic events), so the framework's own behavior can be stored,
//! queried, and analyzed with the very machinery it instruments.

pub mod event;
pub mod meter;
pub mod metrics;
pub mod registry;
pub mod regressions;
pub mod requests;
pub mod sessions;
pub mod snapshot;
pub mod span;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

pub use event::{emit, install_sink, Event, EventSink, FieldValue, RingBufferSink, Severity};
pub use meter::{adopt_meter, current_meter, MeterGuard, RequestMeter, ResourceUsage};
pub use metrics::{sample_now, start_sampler, MetricsRecorder, MetricsSample, SamplerHandle};
pub use registry::{Counter, Histogram, LocalCounter};
pub use regressions::RegressionRecord;
pub use requests::{RequestKindSummary, RequestRecord, Welford};
pub use sessions::{SessionRecord, SessionState};
pub use snapshot::{snapshot, snapshot_to_profile, CounterSnapshot, HistogramSnapshot, Snapshot};
pub use span::{span, SpanGuard};
pub use trace::{
    set_tracing, tracing_enabled, FlightRecorder, SpanContext, SpanId, SpanRecord, TraceId,
};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is telemetry currently collecting?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off globally. Off, instrumentation points cost
/// a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Handle to the named counter (creating it on first use).
pub fn counter(name: &str) -> Counter {
    registry::global().counter(name)
}

/// Handle to the named histogram (creating it on first use).
pub fn histogram(name: &str) -> Histogram {
    registry::global().histogram(name)
}

/// Add `delta` to the named counter (no-op while disabled).
#[inline]
pub fn add(name: &str, delta: u64) {
    if enabled() {
        counter(name).add(delta);
    }
}

/// Record one `value` into the named histogram (no-op while disabled).
#[inline]
pub fn record(name: &str, value: u64) {
    if enabled() {
        histogram(name).record(value);
    }
}

/// Record a duration, in nanoseconds, into the named histogram.
#[inline]
pub fn record_duration(name: &str, elapsed: Duration) {
    record(name, elapsed.as_nanos().min(u64::MAX as u128) as u64);
}

/// Clear all counters, histograms, and installed sinks. Intended for
/// tests and between self-profiling runs; instruments running
/// concurrently will re-create their metrics on next use.
pub fn reset() {
    registry::global().reset();
    event::clear_sinks();
}

/// Serializes tests that toggle the global enabled flag against tests
/// that rely on it being on: flag-toggling tests take the write lock,
/// flag-dependent tests take a read lock.
#[cfg(test)]
pub(crate) fn enabled_flag_lock() -> &'static parking_lot::RwLock<()> {
    static LOCK: std::sync::OnceLock<parking_lot::RwLock<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| parking_lot::RwLock::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_telemetry_drops_samples() {
        let _toggle = enabled_flag_lock().write();
        let c = counter("lib.disabled.counter");
        set_enabled(false);
        add("lib.disabled.counter", 5);
        record("lib.disabled.hist", 5);
        {
            let _g = span("lib.disabled.span");
        }
        set_enabled(true);
        assert_eq!(c.value(), 0);
        assert_eq!(histogram("lib.disabled.hist").count(), 0);
        assert_eq!(histogram("lib.disabled.span").count(), 0);

        add("lib.disabled.counter", 3);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn record_duration_uses_nanos() {
        let _on = enabled_flag_lock().read();
        record_duration("lib.dur.hist", Duration::from_micros(2));
        let h = histogram("lib.dur.hist");
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 2_000);
    }
}
