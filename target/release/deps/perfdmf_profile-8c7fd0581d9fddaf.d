/root/repo/target/release/deps/perfdmf_profile-8c7fd0581d9fddaf.d: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

/root/repo/target/release/deps/libperfdmf_profile-8c7fd0581d9fddaf.rlib: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

/root/repo/target/release/deps/libperfdmf_profile-8c7fd0581d9fddaf.rmeta: crates/profile/src/lib.rs crates/profile/src/atomic.rs crates/profile/src/callpath.rs crates/profile/src/derived.rs crates/profile/src/event.rs crates/profile/src/interval.rs crates/profile/src/profile.rs crates/profile/src/thread.rs

crates/profile/src/lib.rs:
crates/profile/src/atomic.rs:
crates/profile/src/callpath.rs:
crates/profile/src/derived.rs:
crates/profile/src/event.rs:
crates/profile/src/interval.rs:
crates/profile/src/profile.rs:
crates/profile/src/thread.rs:
