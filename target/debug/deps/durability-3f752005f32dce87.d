/root/repo/target/debug/deps/durability-3f752005f32dce87.d: tests/durability.rs

/root/repo/target/debug/deps/durability-3f752005f32dce87: tests/durability.rs

tests/durability.rs:
