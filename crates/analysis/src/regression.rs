//! The performance-regression watchdog: compare a candidate trial (or any
//! named set of timings) against an archive baseline and flag routines
//! that got meaningfully slower.
//!
//! The baseline is a per-routine [`AtomicData`] accumulator — Welford
//! mean/stddev per event, merged across trials with Chan et al.'s
//! pairwise combination (the same statistics machinery the parallel
//! aggregate kernels use). A candidate routine is flagged when it is
//! both *proportionally* slower (`candidate / mean ≥ min_ratio`) and
//! *statistically* surprising (`z-score ≥ min_zscore`, skipped when the
//! baseline never varied). Flagged findings are pushed into the global
//! `perfdmf_telemetry::regressions` log — queryable as the
//! `perfdmf_regressions` system table — and emitted as `perf_regression`
//! events, with the `analysis.regressions_flagged` counter tracking the
//! total.

use std::collections::BTreeMap;

use perfdmf_profile::{AtomicData, Profile};
use perfdmf_telemetry as telemetry;

/// Thresholds for flagging a candidate sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Minimum `candidate / baseline_mean` ratio to flag (default 1.25 —
    /// a 2× slowdown is flagged with plenty of margin).
    pub min_ratio: f64,
    /// Minimum z-score to flag when the baseline has spread (default
    /// 3.0). Ignored when the baseline stddev is 0 or undefined.
    pub min_zscore: f64,
    /// Baseline samples required before an event is judged at all
    /// (default 2 — below that mean/stddev carry no evidence).
    pub min_baseline: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            min_ratio: 1.25,
            min_zscore: 3.0,
            min_baseline: 2,
        }
    }
}

/// Per-routine baseline statistics accumulated from archive trials.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    metric: String,
    routines: BTreeMap<String, AtomicData>,
}

impl Baseline {
    /// An empty baseline for samples of `metric`.
    pub fn new(metric: impl Into<String>) -> Self {
        Baseline {
            metric: metric.into(),
            routines: BTreeMap::new(),
        }
    }

    /// The metric this baseline's samples are measured in.
    pub fn metric(&self) -> &str {
        &self.metric
    }

    /// Record one named sample (e.g. a bench timing) into the baseline.
    pub fn record(&mut self, event: &str, sample: f64) {
        self.routines
            .entry(event.to_string())
            .or_default()
            .record(sample);
    }

    /// Fold one archive trial into the baseline: each interval event
    /// contributes its mean exclusive value across threads as one sample.
    pub fn add_profile(&mut self, profile: &Profile) {
        for (event, sample) in routine_samples(profile, &self.metric) {
            self.record(&event, sample);
        }
    }

    /// Build a baseline from a set of archive trials.
    pub fn from_profiles<'a>(
        metric: impl Into<String>,
        profiles: impl IntoIterator<Item = &'a Profile>,
    ) -> Self {
        let mut b = Baseline::new(metric);
        for p in profiles {
            b.add_profile(p);
        }
        b
    }

    /// Merge another baseline into this one (Chan–Welford combination per
    /// routine) — the parallel/incremental construction path.
    pub fn merge(&mut self, other: &Baseline) {
        for (event, stats) in &other.routines {
            self.routines.entry(event.clone()).or_default().merge(stats);
        }
    }

    /// Number of routines with baseline statistics.
    pub fn len(&self) -> usize {
        self.routines.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.routines.is_empty()
    }

    /// The accumulated statistics for one routine.
    pub fn stats(&self, event: &str) -> Option<&AtomicData> {
        self.routines.get(event)
    }
}

/// One flagged (or judged) candidate-vs-baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// The routine / event / bench name.
    pub event: String,
    /// Metric the samples are measured in.
    pub metric: String,
    /// Baseline mean.
    pub baseline_mean: f64,
    /// Baseline sample standard deviation (0 when undefined or constant).
    pub baseline_stddev: f64,
    /// Baseline sample count.
    pub baseline_count: u64,
    /// The candidate's value.
    pub candidate: f64,
    /// `candidate / baseline_mean` (∞ when the baseline mean is 0).
    pub ratio: f64,
    /// Candidate z-score, when the baseline has spread.
    pub zscore: Option<f64>,
}

/// Per-routine candidate samples of a trial: the mean exclusive value
/// across threads of every interval event carrying data under `metric`.
pub fn routine_samples(profile: &Profile, metric: &str) -> Vec<(String, f64)> {
    let Some(mid) = profile.find_metric(metric) else {
        return Vec::new();
    };
    let mut sums: BTreeMap<usize, (f64, u64)> = BTreeMap::new();
    for (event, _thread, data) in profile.iter_metric(mid) {
        if let Some(x) = data.exclusive() {
            let e = sums.entry(event.0).or_insert((0.0, 0));
            e.0 += x;
            e.1 += 1;
        }
    }
    sums.into_iter()
        .map(|(eid, (sum, n))| (profile.events()[eid].name.clone(), sum / (n.max(1)) as f64))
        .collect()
}

/// Judge one candidate sample against its baseline statistics. Returns
/// the finding when it crosses both thresholds, `None` otherwise.
fn judge(
    event: &str,
    metric: &str,
    stats: &AtomicData,
    candidate: f64,
    config: &WatchdogConfig,
) -> Option<Finding> {
    if stats.count < config.min_baseline {
        return None;
    }
    let ratio = if stats.mean == 0.0 {
        if candidate == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        candidate / stats.mean
    };
    // NaN (a NaN sample snuck in) compares as None and is not flagged.
    if !matches!(
        ratio.partial_cmp(&config.min_ratio),
        Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal)
    ) {
        return None;
    }
    let stddev = stats.stddev().unwrap_or(0.0);
    let zscore = (stddev > 0.0).then(|| (candidate - stats.mean) / stddev);
    // A constant baseline has no spread to score against: the ratio test
    // alone decides. Otherwise both tests must agree.
    if let Some(z) = zscore {
        if z < config.min_zscore {
            return None;
        }
    }
    Some(Finding {
        event: event.to_string(),
        metric: metric.to_string(),
        baseline_mean: stats.mean,
        baseline_stddev: stddev,
        baseline_count: stats.count,
        candidate,
        ratio,
        zscore,
    })
}

/// Compare named candidate samples against the baseline, reporting every
/// flagged finding to the global regression log (and as `perf_regression`
/// events). `context` describes the comparison for the log, e.g.
/// `"trial 7 vs experiment 1 baseline"`.
pub fn check_samples(
    baseline: &Baseline,
    samples: &[(String, f64)],
    config: &WatchdogConfig,
    context: &str,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (event, candidate) in samples {
        let Some(stats) = baseline.stats(event) else {
            continue; // new routine: nothing to compare against
        };
        if let Some(finding) = judge(event, &baseline.metric, stats, *candidate, config) {
            telemetry::regressions::report(telemetry::RegressionRecord {
                seq: 0,
                context: context.to_string(),
                event: finding.event.clone(),
                metric: finding.metric.clone(),
                baseline_mean: finding.baseline_mean,
                baseline_stddev: finding.baseline_stddev,
                baseline_count: finding.baseline_count,
                candidate: finding.candidate,
                ratio: finding.ratio,
                zscore: finding.zscore,
            });
            telemetry::add("analysis.regressions_flagged", 1);
            telemetry::emit(
                telemetry::Event::new(telemetry::Severity::Warn, "perf_regression")
                    .field("context", context.to_string())
                    .field("event", finding.event.clone())
                    .field("metric", finding.metric.clone())
                    .field("baseline_mean", finding.baseline_mean)
                    .field("candidate", finding.candidate)
                    .field("ratio", finding.ratio),
            );
            findings.push(finding);
        }
    }
    findings
}

/// Compare a candidate trial's per-routine profile against the baseline.
/// The watchdog entry point for new-trial-vs-archive checks.
pub fn check_profile(
    baseline: &Baseline,
    candidate: &Profile,
    config: &WatchdogConfig,
    context: &str,
) -> Vec<Finding> {
    let samples = routine_samples(candidate, baseline.metric());
    check_samples(baseline, &samples, config, context)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric, ThreadId};

    fn trial(scale: f64) -> Profile {
        let mut p = Profile::new("watchdog-test");
        let m = p.add_metric(Metric::measured("TIME"));
        p.add_thread(ThreadId::ZERO);
        for (name, base) in [("compute", 100.0), ("io", 10.0)] {
            let e = p.add_event(IntervalEvent::new(name, "TAU_DEFAULT"));
            let v = base * scale;
            p.set_interval(e, ThreadId::ZERO, m, IntervalData::new(v, v, 1.0, 0.0));
        }
        p
    }

    #[test]
    fn flags_synthetic_two_x_slowdown() {
        // Baseline: four trials with ±2% jitter. Candidate: compute 2×.
        let baseline =
            Baseline::from_profiles("TIME", &[trial(0.98), trial(1.0), trial(1.01), trial(1.02)]);
        let mut candidate = trial(1.0);
        let m = candidate.find_metric("TIME").unwrap();
        let e = candidate.find_event("compute").unwrap();
        candidate.set_interval(
            e,
            ThreadId::ZERO,
            m,
            IntervalData::new(200.0, 200.0, 1.0, 0.0),
        );
        let findings = check_profile(&baseline, &candidate, &WatchdogConfig::default(), "test 2x");
        assert_eq!(findings.len(), 1, "only the slowed routine is flagged");
        let f = &findings[0];
        assert_eq!(f.event, "compute");
        assert!((f.ratio - 2.0).abs() < 0.05, "ratio ≈ 2, got {}", f.ratio);
        assert!(f.zscore.unwrap() > 3.0);
        // The finding landed in the global regression log.
        let logged = telemetry::regressions::log();
        assert!(logged
            .iter()
            .any(|r| r.context == "test 2x" && r.event == "compute"));
    }

    #[test]
    fn steady_trial_is_not_flagged() {
        let baseline = Baseline::from_profiles("TIME", &[trial(0.98), trial(1.0), trial(1.02)]);
        let findings = check_profile(
            &baseline,
            &trial(1.01),
            &WatchdogConfig::default(),
            "steady",
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn constant_baseline_uses_ratio_alone() {
        // Identical trials ⇒ stddev 0 ⇒ z-score unavailable; the ratio
        // test alone must still catch the slowdown.
        let baseline = Baseline::from_profiles("TIME", &[trial(1.0), trial(1.0)]);
        let findings = check_profile(
            &baseline,
            &trial(2.0),
            &WatchdogConfig::default(),
            "constant",
        );
        assert_eq!(findings.len(), 2, "both routines doubled");
        assert!(findings.iter().all(|f| f.zscore.is_none()));
    }

    #[test]
    fn new_routines_and_thin_baselines_are_skipped() {
        let mut baseline = Baseline::new("TIME");
        baseline.record("thin", 1.0); // below min_baseline
        let samples = vec![("thin".to_string(), 10.0), ("new".to_string(), 10.0)];
        let findings = check_samples(&baseline, &samples, &WatchdogConfig::default(), "skip");
        assert!(findings.is_empty());
    }

    #[test]
    fn merge_matches_bulk_construction() {
        let a = Baseline::from_profiles("TIME", &[trial(0.9), trial(1.0)]);
        let b = Baseline::from_profiles("TIME", &[trial(1.1), trial(1.2)]);
        let mut merged = a.clone();
        merged.merge(&b);
        let bulk =
            Baseline::from_profiles("TIME", &[trial(0.9), trial(1.0), trial(1.1), trial(1.2)]);
        let ms = merged.stats("compute").unwrap();
        let bs = bulk.stats("compute").unwrap();
        assert_eq!(ms.count, bs.count);
        assert!((ms.mean - bs.mean).abs() < 1e-9);
        assert!((ms.stddev().unwrap() - bs.stddev().unwrap()).abs() < 1e-9);
    }
}
