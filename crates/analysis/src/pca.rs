//! Principal component analysis via cyclic Jacobi eigendecomposition.
//!
//! PerfExplorer reduces hundreds of event/metric dimensions before
//! clustering ("current visualization tools are incapable of displaying
//! thousands of data points with hundreds of dimensions", §5.3). PCA is
//! the standard reduction; the R backend the paper used provides it via
//! `prcomp`, and this module is its Rust stand-in.

/// PCA result.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    /// Column means of the input (used to center projections).
    pub means: Vec<f64>,
    /// Eigenvalues (variances along components), descending.
    pub eigenvalues: Vec<f64>,
    /// Principal axes, one row per component (orthonormal).
    pub components: Vec<Vec<f64>>,
}

impl Pca {
    /// Fraction of total variance captured by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.eigenvalues.len()];
        }
        self.eigenvalues.iter().map(|&e| e / total).collect()
    }

    /// Project rows onto the first `k` components.
    pub fn transform(&self, data: &[Vec<f64>], k: usize) -> Vec<Vec<f64>> {
        let k = k.min(self.components.len());
        data.iter()
            .map(|row| {
                (0..k)
                    .map(|c| {
                        row.iter()
                            .zip(&self.means)
                            .zip(&self.components[c])
                            .map(|((&x, &m), &w)| (x - m) * w)
                            .sum()
                    })
                    .collect()
            })
            .collect()
    }
}

/// Fit PCA on row-major data (`n × d`). Returns `None` for fewer than two
/// rows or empty dimensions.
#[allow(clippy::needless_range_loop)] // symmetric i/j index walks read clearer than iterators
pub fn pca(data: &[Vec<f64>]) -> Option<Pca> {
    let n = data.len();
    if n < 2 {
        return None;
    }
    let d = data[0].len();
    if d == 0 {
        return None;
    }
    // column means
    let mut means = vec![0.0f64; d];
    for row in data {
        for (m, &x) in means.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    // covariance matrix (d × d)
    let mut cov = vec![vec![0.0f64; d]; d];
    for row in data {
        for i in 0..d {
            let xi = row[i] - means[i];
            for j in i..d {
                cov[i][j] += xi * (row[j] - means[j]);
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            cov[i][j] /= (n - 1) as f64;
            cov[j][i] = cov[i][j];
        }
    }
    let (eigenvalues, eigenvectors) = jacobi_eigen(cov);
    // sort descending by eigenvalue
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&a, &b| eigenvalues[b].total_cmp(&eigenvalues[a]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| eigenvalues[i].max(0.0)).collect();
    let components: Vec<Vec<f64>> = order
        .iter()
        .map(|&i| eigenvectors.iter().map(|row| row[i]).collect())
        .collect();
    Some(Pca {
        means,
        eigenvalues,
        components,
    })
}

/// Cyclic Jacobi eigendecomposition of a symmetric matrix.
/// Returns (eigenvalues, eigenvector matrix with eigenvectors as columns).
#[allow(clippy::needless_range_loop)] // Givens rotations touch (k,p)/(k,q) pairs by index
fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut v = vec![vec![0.0f64; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    const MAX_SWEEPS: usize = 64;
    for _ in 0..MAX_SWEEPS {
        // off-diagonal magnitude
        let off: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| a[i][j] * a[i][j])
            .sum();
        if off < 1e-24 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // rotate A
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                // rotate V
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigenvalues: Vec<f64> = (0..n).map(|i| a[i][i]).collect();
    (eigenvalues, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_dominant_direction() {
        // Points along y = 2x with tiny perpendicular noise.
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = ((i * 7919) % 13) as f64 / 1000.0;
                vec![t - noise * 2.0, 2.0 * t + noise]
            })
            .collect();
        let p = pca(&data).unwrap();
        let ratio = p.explained_variance_ratio();
        assert!(ratio[0] > 0.99, "{ratio:?}");
        // first component parallel to (1, 2)/√5
        let c = &p.components[0];
        let dot = (c[0] + 2.0 * c[1]).abs() / 5.0f64.sqrt();
        assert!((dot - 1.0).abs() < 1e-3, "component {c:?}");
    }

    #[test]
    fn eigenvalues_sorted_and_nonnegative() {
        let data: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let x = (i as f64).sin() * 5.0;
                let y = (i as f64).cos() * 2.0;
                let z = (i as f64 * 0.5).sin();
                vec![x, y, z]
            })
            .collect();
        let p = pca(&data).unwrap();
        assert_eq!(p.eigenvalues.len(), 3);
        for w in p.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(p.eigenvalues.iter().all(|&e| e >= 0.0));
        // total variance preserved: sum of eigenvalues == trace of cov
        let d = 3;
        let n = data.len();
        let mut means = vec![0.0; d];
        for row in &data {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut trace = 0.0;
        for j in 0..d {
            trace += data.iter().map(|r| (r[j] - means[j]).powi(2)).sum::<f64>() / (n - 1) as f64;
        }
        let total: f64 = p.eigenvalues.iter().sum();
        assert!((total - trace).abs() < 1e-9 * (1.0 + trace));
    }

    #[test]
    fn components_are_orthonormal() {
        let data: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, (i * i % 17) as f64, ((i * 31) % 7) as f64])
            .collect();
        let p = pca(&data).unwrap();
        for i in 0..3 {
            let norm: f64 = p.components[i].iter().map(|x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-9);
            for j in (i + 1)..3 {
                let dot: f64 = p.components[i]
                    .iter()
                    .zip(&p.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(dot.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn transform_reduces_dimensions() {
        let data: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let p = pca(&data).unwrap();
        let projected = p.transform(&data, 1);
        assert_eq!(projected.len(), 20);
        assert_eq!(projected[0].len(), 1);
        // projections preserve ordering along the line
        for w in projected.windows(2) {
            assert!((w[1][0] - w[0][0]).abs() > 0.0);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(pca(&[]).is_none());
        assert!(pca(&[vec![1.0]]).is_none());
        assert!(pca(&[vec![], vec![]]).is_none());
        // constant data: zero variance, no panic
        let p = pca(&[vec![3.0, 3.0], vec![3.0, 3.0], vec![3.0, 3.0]]).unwrap();
        assert!(p.eigenvalues.iter().all(|&e| e.abs() < 1e-12));
        assert_eq!(p.explained_variance_ratio(), vec![0.0, 0.0]);
    }
}
