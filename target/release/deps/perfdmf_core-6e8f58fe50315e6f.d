/root/repo/target/release/deps/perfdmf_core-6e8f58fe50315e6f.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/release/deps/libperfdmf_core-6e8f58fe50315e6f.rlib: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/release/deps/libperfdmf_core-6e8f58fe50315e6f.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/objects.rs:
crates/core/src/schema.rs:
crates/core/src/session.rs:
crates/core/src/upload.rs:
