/root/repo/target/release/deps/perfdmf_explorer-36741450906ba6ee.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/release/deps/libperfdmf_explorer-36741450906ba6ee.rlib: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/release/deps/libperfdmf_explorer-36741450906ba6ee.rmeta: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
