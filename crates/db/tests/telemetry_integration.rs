//! End-to-end checks that statements executed through [`Connection`]
//! feed the telemetry registry and the slow-query log.

use std::sync::Arc;
use std::time::Duration;

use perfdmf_db::{set_slow_query_threshold, Connection, Value};
use perfdmf_telemetry as telemetry;

fn seeded_connection() -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute(
        "CREATE TABLE trial (id INTEGER PRIMARY KEY AUTO_INCREMENT, name TEXT, node_count INTEGER)",
        &[],
    )
    .unwrap();
    for i in 0..32 {
        conn.insert(
            "INSERT INTO trial (name, node_count) VALUES (?, ?)",
            &[Value::from(format!("t{i}")), Value::Int(i % 8)],
        )
        .unwrap();
    }
    conn
}

#[test]
fn queries_record_spans_counters_and_latency() {
    let conn = seeded_connection();

    let latency = telemetry::histogram("db.statement_latency_ns");
    let parse = telemetry::histogram("db.parse");
    let exec = telemetry::histogram("db.exec");
    let statements = telemetry::counter("db.statements");
    let returned = telemetry::counter("db.rows_returned");
    let scanned = telemetry::counter("db.rows_scanned");

    let before = (
        latency.count(),
        parse.count(),
        exec.count(),
        statements.value(),
        returned.value(),
        scanned.value(),
    );

    let rs = conn
        .query(
            "SELECT name FROM trial WHERE node_count = ?",
            &[Value::Int(3)],
        )
        .unwrap();
    assert_eq!(rs.len(), 4);
    assert_eq!(rs.rows_scanned, 32, "full scan materialized every row");
    assert!(rs.elapsed > Duration::ZERO);

    assert!(latency.count() > before.0, "latency histogram recorded");
    assert!(parse.count() > before.1, "db.parse span recorded");
    assert!(exec.count() > before.2, "db.exec span recorded");
    assert!(statements.value() > before.3);
    assert!(returned.value() >= before.4 + 4);
    assert!(scanned.value() >= before.5 + 32);
}

#[test]
fn transaction_statements_are_recorded_too() {
    let conn = seeded_connection();
    let statements = telemetry::counter("db.statements");
    let affected = telemetry::counter("db.rows_affected");
    let before = (statements.value(), affected.value());

    conn.transaction(|tx| {
        let ins = conn.prepare("INSERT INTO trial (name, node_count) VALUES (?, ?)")?;
        for i in 0..5 {
            tx.insert_prepared(&ins, &[Value::from(format!("x{i}")), Value::Int(64)])?;
        }
        tx.execute(
            "UPDATE trial SET node_count = 65 WHERE node_count = 64",
            &[],
        )?;
        Ok(())
    })
    .unwrap();

    assert!(statements.value() >= before.0 + 6);
    assert!(
        affected.value() >= before.1 + 10,
        "5 inserts + 5 updated rows"
    );
}

#[test]
fn slow_queries_emit_structured_events() {
    let conn = seeded_connection();
    let sink = Arc::new(telemetry::RingBufferSink::new(4096));
    telemetry::install_sink(sink.clone());

    // Zero threshold: every statement is "slow".
    set_slow_query_threshold(Duration::ZERO);
    let marker = "SELECT name, node_count FROM trial WHERE id = 7";
    conn.query(marker, &[]).unwrap();
    set_slow_query_threshold(Duration::from_millis(50));

    let events = sink.events();
    let slow = events
        .iter()
        .find(|e| {
            e.kind == "slow_query"
                && matches!(e.get("sql"), Some(telemetry::FieldValue::Str(s)) if s == marker)
        })
        .expect("slow_query event for the marker statement");
    assert!(matches!(
        slow.get("rows_returned"),
        Some(&telemetry::FieldValue::U64(1))
    ));
    assert!(
        slow.span_path.contains("db.exec"),
        "emitted inside the exec span"
    );
    let json = slow.to_json();
    assert!(json.contains("\"kind\":\"slow_query\""), "{json}");

    // Default threshold restored: an ordinary fast query adds no event.
    let fast = "SELECT COUNT(*) FROM trial";
    conn.query(fast, &[]).unwrap();
    assert!(
        !sink
            .events()
            .iter()
            .any(|e| matches!(e.get("sql"), Some(telemetry::FieldValue::Str(s)) if s == fast)),
        "fast query under threshold logged nothing"
    );
}
