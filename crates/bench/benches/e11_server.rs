//! Experiment E11 — network front-door throughput and tail latency.
//!
//! Prices the TCP hop that `perfdmf-server` adds over the in-process
//! explorer: single-client round-trip latency for the cheapest request
//! (`Ping`) and for a real analysis (`ClusterTrial`), then a swarm of
//! `PERFDMF_E11_CLIENTS` (default 1000) concurrent clients hammering
//! the server with pings. After the swarm the client-side latency
//! histogram's p50/p95/p99 are printed — the numbers recorded in
//! `EXPERIMENTS.md` §E11.
//!
//! The swarm is the interesting part: 1000 sessions means 1000 server
//! threads polling small frames through the admission-control queue,
//! so the measurement covers accept pressure, session bookkeeping, and
//! queue contention — not just codec cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use perfdmf_core::DatabaseSession;
use perfdmf_db::Connection;
use perfdmf_explorer::{ClusterMethod, FeatureSpace, Request, Response, RetryPolicy};
use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};
use perfdmf_server::{ExecutorMode, NetClient, PerfdmfServer, ServerConfig};

fn swarm_clients() -> usize {
    std::env::var("PERFDMF_E11_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1000)
}

/// Trial with clusterable structure (mirrors the chaos fixture).
fn seeded_database() -> (Connection, i64) {
    let conn = Connection::open_in_memory();
    let mut session = DatabaseSession::new(conn.clone()).expect("schema");
    let mut p = Profile::new("e11");
    let m = p.add_metric(Metric::measured("TIME"));
    let a = p.add_event(IntervalEvent::ungrouped("compute"));
    let b = p.add_event(IntervalEvent::ungrouped("exchange"));
    p.add_threads((0..32).map(|n| ThreadId::new(n, 0, 0)));
    for (i, &t) in p.threads().to_vec().iter().enumerate() {
        let (ca, cb) = if i < 16 { (100.0, 5.0) } else { (10.0, 80.0) };
        p.set_interval(a, t, m, IntervalData::new(ca, ca, 10.0, 0.0));
        p.set_interval(b, t, m, IntervalData::new(cb, cb, 10.0, 0.0));
    }
    let trial = session
        .store_profile("e11-app", "e11-exp", &p)
        .expect("store");
    (conn, trial)
}

fn start_server(conn: Connection) -> PerfdmfServer {
    PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 4,
            queue_capacity: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("server start")
}

fn bench_single_client(c: &mut Criterion) {
    let (conn, trial) = seeded_database();
    let server = start_server(conn);
    let mut client = NetClient::new(server.addr(), "e11-single").with_policy(RetryPolicy::none());
    assert!(client.ping(), "server must be live");

    let mut group = c.benchmark_group("e11_roundtrip");
    group.throughput(Throughput::Elements(1));
    group.bench_function("ping", |b| {
        b.iter(|| {
            assert!(matches!(client.request(Request::Ping), Response::Pong));
        })
    });
    // Same hop with the full observability stack on: client span,
    // trace context on the wire, server-side resource meter, and the
    // usage bill riding the Reply. §E11's bar: within 5% of plain ping.
    perfdmf_telemetry::set_tracing(true);
    group.bench_function("ping_traced", |b| {
        b.iter(|| {
            assert!(matches!(client.request(Request::Ping), Response::Pong));
        })
    });
    perfdmf_telemetry::set_tracing(false);
    group.sample_size(20);
    group.bench_function("cluster", |b| {
        b.iter(|| {
            let response = client.request(Request::ClusterTrial {
                trial_id: trial,
                features: FeatureSpace::EventsOfMetric("TIME".into()),
                k: None,
                max_k: 4,
                pca_components: 0,
                method: ClusterMethod::KMeans,
            });
            assert!(matches!(response, Response::Clustering { .. }));
        })
    });
    group.finish();
    client.close();
    server.shutdown();
}

/// Each swarm client: connect, handshake, issue `requests` pings,
/// close. Returns how many requests got a good answer.
fn swarm_client(addr: std::net::SocketAddr, id: usize, requests: usize) -> usize {
    let mut client = NetClient::new(addr, format!("e11-swarm-{id}"));
    let mut good = 0;
    for _ in 0..requests {
        if matches!(client.request(Request::Ping), Response::Pong) {
            good += 1;
        }
    }
    client.close();
    good
}

fn bench_swarm(c: &mut Criterion) {
    let (conn, _trial) = seeded_database();
    let server = start_server(conn);
    let addr = server.addr();
    let clients = swarm_clients();
    let requests_per_client = 2;

    let mut group = c.benchmark_group("e11_swarm");
    group.sample_size(10);
    group.throughput(Throughput::Elements((clients * requests_per_client) as u64));
    group.bench_function(format!("{clients}_clients"), |b| {
        b.iter(|| {
            let handles: Vec<_> = (0..clients)
                .map(|id| std::thread::spawn(move || swarm_client(addr, id, requests_per_client)))
                .collect();
            let good: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
            assert_eq!(
                good,
                clients * requests_per_client,
                "every swarm request must be answered"
            );
        })
    });
    group.finish();

    // Tail latency of the client-observed round trip, across everything
    // the swarm just did. These are the §E11 numbers.
    let snap = perfdmf_telemetry::snapshot();
    if let Some(h) = snap
        .histograms
        .iter()
        .find(|h| h.name == "netclient.request_latency_ns")
    {
        eprintln!(
            "e11_server: {} requests, latency p50={}us p95={}us p99={}us max={}us",
            h.count,
            h.quantile(0.50).unwrap_or(0) / 1_000,
            h.quantile(0.95).unwrap_or(0) / 1_000,
            h.quantile(0.99).unwrap_or(0) / 1_000,
            h.max.unwrap_or(0) / 1_000,
        );
    }
    server.shutdown();
}

/// Tail-latency comparison of the two session executors.
///
/// Criterion's `<mean>/iter` lines can't carry percentiles, and the
/// tail is exactly what distinguishes the executors (thread-per-session
/// means N runnable threads fighting the scheduler; the event loop
/// parks N sessions on poll(2)). So this group runs one measured burst
/// per (client count, executor), collects the client-observed
/// round-trip histogram, and prints its own `bench:` lines in the
/// shim's format so `scripts/bench_snapshot.sh` archives p50/p95/p99
/// alongside the means.
///
/// Unlike `bench_swarm` (which prices the whole arrival storm —
/// connect, handshake, serve, close), this burst pre-connects every
/// client and releases the pings from behind a barrier: the
/// percentiles describe *steady-state serving* at N live sessions,
/// which is the quantity the executor actually controls. Thread spawn
/// and the connect storm are client-side artifacts and would otherwise
/// drown the signal at 1000 clients.
fn bench_swarm_tail(c: &mut Criterion) {
    // Criterion drives the other groups; this one only borrows the
    // harness slot.
    let _ = c;
    let sizes: Vec<usize> = match std::env::var("PERFDMF_E11_TAIL_CLIENTS") {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect(),
        // Quick mode (CI) measures one modest burst; full runs sweep
        // the §E11 sizes.
        Err(_) if std::env::var("PERFDMF_BENCH_QUICK").as_deref() == Ok("1") => vec![100],
        Err(_) => vec![100, 1000],
    };
    let requests_per_client = 4;
    for executor in [ExecutorMode::EventLoop, ExecutorMode::Threads] {
        let label = match executor {
            ExecutorMode::EventLoop => "eventloop",
            ExecutorMode::Threads => "threads",
        };
        for &clients in &sizes {
            let (conn, _trial) = seeded_database();
            let server = PerfdmfServer::start_with_config(
                conn,
                ServerConfig {
                    workers: 4,
                    queue_capacity: 4096,
                    executor,
                    ..ServerConfig::default()
                },
            )
            .expect("server start");
            let addr = server.addr();
            // Two barriers: `connected` holds every client until all N
            // sessions are live (one warmup ping each), `released`
            // holds the measured pings until the main thread has reset
            // the telemetry registry — so the histogram contains
            // exactly the steady-state round trips.
            let connected = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
            let released = std::sync::Arc::new(std::sync::Barrier::new(clients + 1));
            let handles: Vec<_> = (0..clients)
                .map(|id| {
                    let connected = std::sync::Arc::clone(&connected);
                    let released = std::sync::Arc::clone(&released);
                    std::thread::spawn(move || {
                        let mut client = NetClient::new(addr, format!("e11-tail-{id}"));
                        assert!(
                            matches!(client.request(Request::Ping), Response::Pong),
                            "warmup ping must connect"
                        );
                        connected.wait();
                        released.wait();
                        let mut good = 0;
                        for _ in 0..requests_per_client {
                            if matches!(client.request(Request::Ping), Response::Pong) {
                                good += 1;
                            }
                        }
                        client.close();
                        good
                    })
                })
                .collect();
            connected.wait();
            perfdmf_telemetry::reset();
            let started = std::time::Instant::now();
            released.wait();
            let good: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
            let wall = started.elapsed();
            assert_eq!(
                good,
                clients * requests_per_client,
                "every swarm request must be answered"
            );
            let snap = perfdmf_telemetry::snapshot();
            let h = snap
                .histograms
                .iter()
                .find(|h| h.name == "netclient.request_latency_ns")
                .expect("swarm must record client latencies");
            let us = |q: f64| h.quantile(q).unwrap_or(0) as f64 / 1_000.0;
            for (tag, val) in [
                ("p50", us(0.50)),
                ("p95", us(0.95)),
                ("p99", us(0.99)),
                ("max", h.max.unwrap_or(0) as f64 / 1_000.0),
            ] {
                println!(
                    "bench: e11_swarm_tail/{clients}_clients_{label}_{tag}            \
                     {val:.1}µs/iter"
                );
            }
            let rate = good as f64 / wall.as_secs_f64();
            eprintln!(
                "e11_swarm_tail {clients} clients ({label}): {good} requests in {wall:?} \
                 ({rate:.0} req/s), p50={:.0}us p95={:.0}us p99={:.0}us max={:.0}us",
                us(0.50),
                us(0.95),
                us(0.99),
                h.max.unwrap_or(0) as f64 / 1_000.0,
            );
            server.shutdown();
        }
    }
}

criterion_group!(benches, bench_single_client, bench_swarm, bench_swarm_tail);
criterion_main!(benches);
