//! Deterministic fault injection for the storage layer.
//!
//! [`FaultVfs`] wraps any [`Vfs`] and injects failures according to a
//! [`FaultPlan`]. Every VFS call (both file-level and handle-level)
//! increments a global operation counter; faults are scheduled against
//! that counter, so a given `(plan, workload)` pair always fails at
//! exactly the same point — the property the crash-consistency harness
//! relies on to enumerate crash points exhaustively.
//!
//! Two fault families are supported:
//!
//! * **Crash at op N** (`crash_at_op`): the Nth operation fails, and
//!   *every* operation after it fails too, modelling process death —
//!   nothing the code does after the crash point can reach disk. A
//!   torn variant persists a seed-chosen prefix of the crashing write,
//!   modelling a sector-granular partial write.
//! * **Point faults** (`fail_at`): a single operation fails with a
//!   specific [`FaultKind`] (fsync error, ENOSPC, short read, bit
//!   flip, ...) and subsequent operations proceed normally, modelling
//!   a transient I/O error the engine must surface or tolerate.

use crate::vfs::{Vfs, VfsFile};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// A single injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails with an I/O error; nothing is persisted.
    FailWrite,
    /// A prefix of the write is persisted, then the write fails.
    TornWrite,
    /// `sync_all` fails after data reached OS buffers.
    FsyncError,
    /// The operation fails with ENOSPC (disk full).
    Enospc,
    /// A read returns fewer bytes than the file holds.
    ShortRead,
    /// A read succeeds but one byte is flipped.
    BitFlip,
}

/// Deterministic schedule of faults, addressed by operation index.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash (fail this op and all later ones) at this op index.
    pub crash_at_op: Option<u64>,
    /// When crashing on a write, persist a seed-chosen prefix first.
    pub torn: bool,
    /// One-shot faults: `(op_index, kind)`.
    pub faults: Vec<(u64, FaultKind)>,
    /// Seed for prefix lengths and bit-flip positions.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that crashes at operation `n` (0-based).
    pub fn crash_at(n: u64) -> Self {
        FaultPlan {
            crash_at_op: Some(n),
            ..Default::default()
        }
    }

    /// A plan that crashes at operation `n`, tearing the failing write.
    pub fn torn_crash_at(n: u64, seed: u64) -> Self {
        FaultPlan {
            crash_at_op: Some(n),
            torn: true,
            seed,
            ..Default::default()
        }
    }

    /// A plan with a single point fault at operation `n`.
    pub fn fail_at(n: u64, kind: FaultKind) -> Self {
        FaultPlan {
            faults: vec![(n, kind)],
            ..Default::default()
        }
    }

    /// Builder: set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[derive(Debug)]
struct State {
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

/// A [`Vfs`] that injects deterministic faults per a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<State>>,
}

/// What the injector decided for one operation.
enum Verdict {
    Ok,
    Fault(FaultKind, u64),
    Crashed,
}

fn io_err(msg: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {msg}"))
}

fn enospc() -> std::io::Error {
    std::io::Error::from_raw_os_error(28) // ENOSPC
}

/// SplitMix64: tiny deterministic RNG, good enough for choosing torn
/// prefix lengths and bit positions.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultVfs {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Self {
        FaultVfs {
            inner,
            state: Arc::new(Mutex::new(State {
                plan,
                ops: 0,
                crashed: false,
            })),
        }
    }

    /// Wrap the real file system.
    pub fn on_disk(plan: FaultPlan) -> Self {
        FaultVfs::new(crate::vfs::real(), plan)
    }

    /// Total VFS operations performed so far (including faulted ones).
    pub fn ops_performed(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// Did the plan's crash point fire?
    pub fn crashed(&self) -> bool {
        self.state.lock().unwrap().crashed
    }

    /// Replace the plan and reset the op counter (for reuse across
    /// harness iterations).
    pub fn reset(&self, plan: FaultPlan) {
        let mut st = self.state.lock().unwrap();
        st.plan = plan;
        st.ops = 0;
        st.crashed = false;
    }

    /// Count one operation and decide its fate.
    fn step(&self) -> Verdict {
        let mut st = self.state.lock().unwrap();
        let op = st.ops;
        st.ops += 1;
        if st.crashed {
            return Verdict::Crashed;
        }
        if st.plan.crash_at_op == Some(op) {
            st.crashed = true;
            let mut rng = st.plan.seed ^ op.wrapping_mul(0x517C_C1B7_2722_0A95);
            let torn = st.plan.torn;
            let r = splitmix64(&mut rng);
            return if torn {
                Verdict::Fault(FaultKind::TornWrite, r)
            } else {
                Verdict::Fault(FaultKind::FailWrite, r)
            };
        }
        if let Some(&(_, kind)) = st.plan.faults.iter().find(|&&(n, _)| n == op) {
            let mut rng = st.plan.seed ^ op.wrapping_mul(0x517C_C1B7_2722_0A95);
            let r = splitmix64(&mut rng);
            return Verdict::Fault(kind, r);
        }
        Verdict::Ok
    }
}

/// A file handle whose operations are metered and faultable.
struct FaultFile {
    inner: Box<dyn VfsFile>,
    vfs: FaultVfs,
}

impl FaultFile {
    fn gate_write(&mut self, buf: &[u8]) -> Result<(), std::io::Error> {
        match self.vfs.step() {
            Verdict::Ok => Ok(()),
            Verdict::Crashed => Err(io_err("post-crash write")),
            Verdict::Fault(kind, r) => match kind {
                FaultKind::FailWrite => Err(io_err("failed write")),
                FaultKind::TornWrite => {
                    // Persist a strict prefix, then fail: a torn write.
                    if !buf.is_empty() {
                        let keep = (r as usize) % buf.len();
                        let _ = self.inner.write_all(&buf[..keep]);
                        let _ = self.inner.flush();
                    }
                    Err(io_err("torn write"))
                }
                FaultKind::Enospc => Err(enospc()),
                // Read-side kinds degrade to a plain failure on a write.
                FaultKind::FsyncError | FaultKind::ShortRead | FaultKind::BitFlip => {
                    Err(io_err("failed write"))
                }
            },
        }
    }
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.gate_write(buf)?;
        self.inner.write_all(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self.vfs.step() {
            Verdict::Ok => self.inner.flush(),
            Verdict::Crashed => Err(io_err("post-crash flush")),
            Verdict::Fault(FaultKind::Enospc, _) => Err(enospc()),
            Verdict::Fault(..) => Err(io_err("failed flush")),
        }
    }

    fn sync_all(&mut self) -> std::io::Result<()> {
        match self.vfs.step() {
            Verdict::Ok => self.inner.sync_all(),
            Verdict::Crashed => Err(io_err("post-crash fsync")),
            Verdict::Fault(FaultKind::Enospc, _) => Err(enospc()),
            Verdict::Fault(..) => Err(io_err("fsync failure")),
        }
    }

    fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        match self.vfs.step() {
            Verdict::Ok => self.inner.set_len(len),
            Verdict::Crashed => Err(io_err("post-crash truncate")),
            Verdict::Fault(..) => Err(io_err("failed truncate")),
        }
    }

    fn seek_start(&mut self, pos: u64) -> std::io::Result<()> {
        // Seeks don't touch the medium; never metered or failed.
        self.inner.seek_start(pos)
    }
}

impl Vfs for FaultVfs {
    fn open_append(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        match self.step() {
            Verdict::Ok => Ok(Box::new(FaultFile {
                inner: self.inner.open_append(path)?,
                vfs: self.clone(),
            })),
            Verdict::Crashed => Err(io_err("post-crash open")),
            Verdict::Fault(..) => Err(io_err("failed open")),
        }
    }

    fn create(&self, path: &Path) -> std::io::Result<Box<dyn VfsFile>> {
        match self.step() {
            Verdict::Ok => Ok(Box::new(FaultFile {
                inner: self.inner.create(path)?,
                vfs: self.clone(),
            })),
            Verdict::Crashed => Err(io_err("post-crash create")),
            Verdict::Fault(FaultKind::Enospc, _) => Err(enospc()),
            Verdict::Fault(..) => Err(io_err("failed create")),
        }
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        match self.step() {
            Verdict::Ok => self.inner.read(path),
            Verdict::Crashed => Err(io_err("post-crash read")),
            Verdict::Fault(FaultKind::ShortRead, r) => {
                let bytes = self.inner.read(path)?;
                let keep = if bytes.is_empty() {
                    0
                } else {
                    (r as usize) % bytes.len()
                };
                Ok(bytes[..keep].to_vec())
            }
            Verdict::Fault(FaultKind::BitFlip, r) => {
                let mut bytes = self.inner.read(path)?;
                if !bytes.is_empty() {
                    let pos = (r as usize) % bytes.len();
                    bytes[pos] ^= 1 << ((r >> 32) % 8);
                }
                Ok(bytes)
            }
            Verdict::Fault(..) => Err(io_err("failed read")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        match self.step() {
            Verdict::Ok => self.inner.rename(from, to),
            Verdict::Crashed => Err(io_err("post-crash rename")),
            Verdict::Fault(..) => Err(io_err("failed rename")),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        // Metadata probe: not a durability-relevant operation.
        self.inner.exists(path)
    }

    fn create_dir_all(&self, path: &Path) -> std::io::Result<()> {
        match self.step() {
            Verdict::Ok => self.inner.create_dir_all(path),
            Verdict::Crashed => Err(io_err("post-crash mkdir")),
            Verdict::Fault(..) => Err(io_err("failed mkdir")),
        }
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        match self.step() {
            Verdict::Ok => self.inner.remove_file(path),
            Verdict::Crashed => Err(io_err("post-crash unlink")),
            Verdict::Fault(..) => Err(io_err("failed unlink")),
        }
    }
}
