//! MPMC channel: many clonable senders, many clonable receivers.
//!
//! Semantics match `crossbeam-channel` for the operations used here:
//! `send` fails once every receiver is gone, `recv` blocks until a
//! message arrives and fails once the buffer is drained and every sender
//! is gone, and a bounded sender blocks while the queue is full.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message is pushed or the last sender leaves.
    readable: Condvar,
    /// Signalled when a message is popped or the last receiver leaves.
    writable: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers are gone; the
/// unsent message is handed back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently empty.
    Empty,
    /// Channel empty and all senders gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    /// A bounded channel is at capacity; the message is handed back.
    Full(T),
    /// All receivers are gone; the message is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(m) | TrySendError::Disconnected(m) => m,
        }
    }

    /// True if the failure was a full queue (not a disconnect).
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and all senders gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Create a bounded channel; senders block while `cap` messages queue.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send a message, blocking while a bounded channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(msg);
                self.shared.readable.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .writable
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Send without blocking: fails immediately if a bounded channel is
    /// at capacity or every receiver is gone.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        self.shared.readable.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.senders -= 1;
        if inner.senders == 0 {
            self.shared.readable.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking until one arrives or the channel
    /// disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.writable.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .shared
                .readable
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receive with a deadline: blocks until a message arrives, the
    /// channel disconnects, or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.shared.writable.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .readable
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.queue.pop_front() {
            Some(msg) => {
                self.shared.writable.notify_one();
                Ok(msg)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpmc_fan_out() {
        let (tx, rx) = unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u32;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        for v in 1..=100 {
            tx.send(v).unwrap();
        }
        drop(tx);
        drop(rx);
        let total: u32 = workers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 5050);
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_fails_when_drained_and_disconnected() {
        let (tx, rx) = bounded::<u8>(2);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
