//! Lazily-built typed column chunks over the row slab.
//!
//! The columnar execution path (see `exec::vector`) scans fixed-size
//! chunks of [`CHUNK_ROWS`] rows with tight per-type loops instead of
//! dispatching on [`Value`] per row. Chunks are *derived data*: built
//! lazily from the slab on first use, cached per table, invalidated one
//! chunk at a time by row mutations (WAL replay funnels through the
//! same mutators, so recovery invalidates correctly), and capped
//! process-wide by the `PERFDMF_COLCACHE_MB` byte budget. An over-budget
//! build still returns a usable chunk — it just isn't retained.
//!
//! Telemetry: `db.colcache.chunk_hits` / `db.colcache.chunk_misses`
//! count cache lookups, `db.colcache.budget_declines` counts chunks the
//! budget refused to retain, and each build runs under a
//! `db.colcache.build` span.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::schema::TableSchema;
use crate::table::Row;
use crate::value::{DataType, Value};
use perfdmf_telemetry as telemetry;

/// Rows covered by one column chunk.
pub const CHUNK_ROWS: usize = 4096;

/// Default cache cap when `PERFDMF_COLCACHE_MB` is unset: 256 MiB.
const DEFAULT_BUDGET_MB: usize = 256;

/// Total bytes currently retained by all column caches in the process.
static CACHED_BYTES: AtomicUsize = AtomicUsize::new(0);

/// The configured budget in bytes. Read per build so tests can vary it.
pub fn budget_bytes() -> usize {
    std::env::var("PERFDMF_COLCACHE_MB")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_BUDGET_MB)
        .saturating_mul(1024 * 1024)
}

/// Bytes currently cached process-wide (approximate).
pub fn cached_bytes() -> usize {
    CACHED_BYTES.load(Ordering::Relaxed)
}

/// Typed storage for one column within a chunk. Slots for NULL or dead
/// rows hold an arbitrary value — kernels mask with the bitmaps.
#[derive(Debug)]
pub enum ColumnData {
    /// INTEGER and BOOLEAN columns (booleans as 0/1).
    Int(Vec<i64>),
    /// DOUBLE columns.
    Float(Vec<f64>),
    /// TEXT columns as dictionary ids (see [`crate::value::IStr`]).
    Dict(Vec<u32>),
    /// BLOB columns, or a slot whose value defied the declared type:
    /// kernels over this column decline to the row path.
    Unsupported,
}

/// One column's values + null bitmap within a chunk.
#[derive(Debug)]
pub struct ColumnChunk {
    /// Bit `i` set ⇒ row `base + i` is NULL (only meaningful where live).
    pub nulls: Vec<u64>,
    /// The typed values.
    pub data: ColumnData,
}

/// A fixed-width horizontal slice of the row slab in columnar form.
#[derive(Debug)]
pub struct Chunk {
    /// First slab slot covered.
    pub base: usize,
    /// Slots covered (≤ [`CHUNK_ROWS`]; short only for the slab tail).
    pub len: usize,
    /// Bit `i` set ⇒ slot `base + i` holds a live row.
    pub live: Vec<u64>,
    /// Number of live rows in this chunk.
    pub live_count: usize,
    /// One entry per schema column.
    pub cols: Vec<ColumnChunk>,
}

/// Read bit `i` of a bitmap.
#[inline]
pub fn bit(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

#[inline]
fn set_bit(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1 << (i & 63);
}

impl Chunk {
    /// Build a chunk from `rows` (the slab slice starting at slot `base`).
    fn build(schema: &TableSchema, rows: &[Option<Row>], base: usize) -> Chunk {
        let len = rows.len();
        let words = len.div_ceil(64).max(1);
        let mut live = vec![0u64; words];
        let mut live_count = 0usize;
        let mut nulls = vec![vec![0u64; words]; schema.columns.len()];
        let mut data: Vec<ColumnData> = schema
            .columns
            .iter()
            .map(|c| match c.ty {
                DataType::Integer | DataType::Boolean => ColumnData::Int(vec![0; len]),
                DataType::Double => ColumnData::Float(vec![0.0; len]),
                DataType::Text => ColumnData::Dict(vec![0; len]),
                DataType::Blob => ColumnData::Unsupported,
            })
            .collect();
        for (i, slot) in rows.iter().enumerate() {
            let Some(row) = slot else { continue };
            set_bit(&mut live, i);
            live_count += 1;
            for (c, v) in row.iter().enumerate() {
                match (&mut data[c], v) {
                    (_, Value::Null) => set_bit(&mut nulls[c], i),
                    (ColumnData::Int(xs), Value::Int(x)) => xs[i] = *x,
                    (ColumnData::Int(xs), Value::Bool(b)) => xs[i] = *b as i64,
                    (ColumnData::Float(xs), Value::Float(x)) => xs[i] = *x,
                    (ColumnData::Dict(xs), Value::Text(s)) => xs[i] = s.id(),
                    (ColumnData::Unsupported, _) => {}
                    (d, _) => *d = ColumnData::Unsupported,
                }
            }
        }
        let cols = data
            .into_iter()
            .zip(nulls)
            .map(|(data, nulls)| ColumnChunk { nulls, data })
            .collect();
        Chunk {
            base,
            len,
            live,
            live_count,
            cols,
        }
    }

    /// Approximate heap footprint, used for budget accounting.
    pub fn bytes(&self) -> usize {
        let mut b = self.live.len() * 8;
        for c in &self.cols {
            b += c.nulls.len() * 8;
            b += match &c.data {
                ColumnData::Int(v) => v.len() * 8,
                ColumnData::Float(v) => v.len() * 8,
                ColumnData::Dict(v) => v.len() * 4,
                ColumnData::Unsupported => 0,
            };
        }
        b
    }
}

/// Per-table chunk cache. Lives inside [`crate::Table`] behind a mutex
/// so read-locked query execution can populate it.
#[derive(Default)]
pub struct ColumnCache {
    inner: Mutex<Vec<Option<Arc<Chunk>>>>,
}

impl std::fmt::Debug for ColumnCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.cached_chunks();
        write!(f, "ColumnCache({n} chunk(s))")
    }
}

impl Clone for ColumnCache {
    /// Chunks are derived data; clones (undo snapshots, `CREATE TABLE AS`)
    /// start cold so the global budget is never double-counted.
    fn clone(&self) -> Self {
        ColumnCache::default()
    }
}

impl Drop for ColumnCache {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            for slot in inner.iter_mut() {
                if let Some(old) = slot.take() {
                    CACHED_BYTES.fetch_sub(old.bytes(), Ordering::Relaxed);
                }
            }
        }
    }
}

impl ColumnCache {
    /// Get or build the chunk with index `idx`; the flag is true on a
    /// cache hit. Returns `None` only when `idx` is past the slab end.
    pub(crate) fn chunk(
        &self,
        schema: &TableSchema,
        rows: &[Option<Row>],
        idx: usize,
    ) -> (Option<Arc<Chunk>>, bool) {
        let base = idx * CHUNK_ROWS;
        if base >= rows.len() {
            return (None, false);
        }
        {
            let guard = self.inner.lock().unwrap();
            if let Some(Some(c)) = guard.get(idx) {
                telemetry::add("db.colcache.chunk_hits", 1);
                telemetry::meter::add_chunk_hit();
                return (Some(Arc::clone(c)), true);
            }
        }
        telemetry::add("db.colcache.chunk_misses", 1);
        telemetry::meter::add_chunk_miss();
        let end = rows.len().min(base + CHUNK_ROWS);
        let built = {
            let _span = telemetry::span("db.colcache.build");
            Chunk::build(schema, &rows[base..end], base)
        };
        let bytes = built.bytes();
        let arc = Arc::new(built);
        // Budget check is advisory (load + add are not one atomic step);
        // a slight overshoot under contention is acceptable.
        if CACHED_BYTES.load(Ordering::Relaxed) + bytes > budget_bytes() {
            telemetry::add("db.colcache.budget_declines", 1);
            return (Some(arc), false);
        }
        let mut guard = self.inner.lock().unwrap();
        if guard.len() <= idx {
            guard.resize(idx + 1, None);
        }
        if let Some(old) = guard[idx].take() {
            CACHED_BYTES.fetch_sub(old.bytes(), Ordering::Relaxed);
        }
        CACHED_BYTES.fetch_add(bytes, Ordering::Relaxed);
        guard[idx] = Some(Arc::clone(&arc));
        (Some(arc), false)
    }

    /// Drop the cached chunk covering slab slot `row`, if any.
    pub(crate) fn invalidate_row(&self, row: usize) {
        let idx = row / CHUNK_ROWS;
        let mut guard = self.inner.lock().unwrap();
        if let Some(slot) = guard.get_mut(idx) {
            if let Some(old) = slot.take() {
                CACHED_BYTES.fetch_sub(old.bytes(), Ordering::Relaxed);
            }
        }
    }

    /// Drop every cached chunk (schema changed shape).
    pub(crate) fn clear(&self) {
        let mut guard = self.inner.lock().unwrap();
        for slot in guard.iter_mut() {
            if let Some(old) = slot.take() {
                CACHED_BYTES.fetch_sub(old.bytes(), Ordering::Relaxed);
            }
        }
        guard.clear();
    }

    /// Number of chunks currently retained (tests / EXPLAIN stats).
    pub fn cached_chunks(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .filter(|s| s.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema::new(
            "m",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("x", DataType::Double),
                ColumnDef::new("s", DataType::Text),
            ],
        )
        .unwrap()
    }

    fn slab(n: usize) -> Vec<Option<Row>> {
        (0..n)
            .map(|i| {
                if i % 7 == 3 {
                    None // tombstone
                } else {
                    Some(vec![
                        Value::Int(i as i64),
                        if i % 5 == 0 {
                            Value::Null
                        } else {
                            Value::Float(i as f64 * 0.5)
                        },
                        Value::from(if i % 2 == 0 { "even" } else { "odd" }),
                    ])
                }
            })
            .collect()
    }

    #[test]
    fn build_typed_chunks_with_bitmaps() {
        let rows = slab(100);
        let cache = ColumnCache::default();
        let (chunk, hit) = cache.chunk(&schema(), &rows, 0);
        let chunk = chunk.unwrap();
        assert!(!hit);
        assert_eq!(chunk.len, 100);
        assert_eq!(
            chunk.live_count,
            rows.iter().filter(|r| r.is_some()).count()
        );
        assert!(!bit(&chunk.live, 3), "tombstone is dead");
        assert!(bit(&chunk.cols[1].nulls, 0), "x is NULL every 5th row");
        match (&chunk.cols[0].data, &chunk.cols[2].data) {
            (ColumnData::Int(xs), ColumnData::Dict(ds)) => {
                // Slots 11 and 12 are live (only i % 7 == 3 is tombstoned).
                assert_eq!(xs[12], 12);
                assert_eq!(ds[12], crate::value::IStr::intern("even").id());
                assert_eq!(ds[11], crate::value::IStr::intern("odd").id());
            }
            other => panic!("unexpected column data {other:?}"),
        }
        // Second lookup hits.
        let (_, hit) = cache.chunk(&schema(), &rows, 0);
        assert!(hit);
        assert_eq!(cache.cached_chunks(), 1);
    }

    #[test]
    fn invalidation_is_per_chunk() {
        let rows = slab(CHUNK_ROWS + 10);
        let cache = ColumnCache::default();
        cache.chunk(&schema(), &rows, 0);
        cache.chunk(&schema(), &rows, 1);
        assert_eq!(cache.cached_chunks(), 2);
        cache.invalidate_row(CHUNK_ROWS + 1);
        assert_eq!(cache.cached_chunks(), 1);
        let (_, hit) = cache.chunk(&schema(), &rows, 0);
        assert!(hit, "chunk 0 untouched by chunk-1 invalidation");
        cache.clear();
        assert_eq!(cache.cached_chunks(), 0);
    }

    #[test]
    fn budget_accounting_releases_on_drop() {
        let rows = slab(256);
        let before = cached_bytes();
        {
            let cache = ColumnCache::default();
            cache.chunk(&schema(), &rows, 0);
            assert!(cached_bytes() > before);
        }
        assert_eq!(cached_bytes(), before, "drop released the budget");
    }
}
