//! Archive exchange: dump and restore whole performance archives.
//!
//! The paper's §6–7 discuss sharing performance data across sites
//! (PPerfDB/PPerfXchange interoperation, "a central repository of
//! performance information contributed to and shared by several
//! groups"). This module implements that exchange surface: an archive
//! directory containing one PerfDMF-XML file per trial plus a manifest
//! carrying the application/experiment hierarchy and all flexible
//! metadata columns.
//!
//! ```text
//! archive-dir/
//!   manifest.xml       # hierarchy + metadata (incl. runtime columns)
//!   trial_<id>.xml     # one PerfDMF exchange document per trial
//! ```
//!
//! `restore_archive` merges into the target database: applications and
//! experiments are matched by name (created if absent), trials are always
//! created fresh, and metadata columns missing from the target's flexible
//! schema are added on the fly.

use crate::objects::FlexRow;
use crate::schema::create_schema;
use crate::upload::{load_trial, save_profile};
use perfdmf_db::{Connection, DataType, DbError, Result, Value};
use perfdmf_xml::{Element, Writer};
use std::path::Path;

fn storage_err(e: impl std::fmt::Display) -> DbError {
    DbError::Storage(e.to_string())
}

fn value_to_attr(v: &Value) -> (String, String) {
    let ty = match v {
        Value::Int(_) => "int",
        Value::Float(_) => "float",
        Value::Bool(_) => "bool",
        Value::Null => "null",
        _ => "text",
    };
    (ty.to_string(), v.to_string())
}

fn attr_to_value(ty: &str, raw: &str) -> Value {
    match ty {
        "int" => raw.parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
        "float" => raw.parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
        "bool" => Value::Bool(raw == "true"),
        "null" => Value::Null,
        _ => Value::Text(raw.to_string().into()),
    }
}

fn write_fields(w: &mut Writer<'_>, row: &FlexRow) -> perfdmf_xml::Result<()> {
    for (name, value) in &row.fields {
        if value.is_null() {
            continue;
        }
        let (ty, text) = value_to_attr(value);
        w.begin("field")?;
        w.attr("name", name)?;
        w.attr("type", &ty)?;
        w.attr("value", &text)?;
        w.end()?;
    }
    Ok(())
}

/// Dump every trial of the database into `dir`. Returns the trial count.
pub fn dump_archive(conn: &Connection, dir: &Path) -> Result<usize> {
    std::fs::create_dir_all(dir).map_err(storage_err)?;
    let mut manifest = String::new();
    let mut w = Writer::new(&mut manifest);
    w.declaration().map_err(storage_err)?;
    w.begin("perfdmf_archive").map_err(storage_err)?;
    w.attr("version", "1").map_err(storage_err)?;

    let apps = conn.query("SELECT id FROM application ORDER BY id", &[])?;
    let mut trials_written = 0usize;
    for app_row in &apps.rows {
        let app_id = app_row[0].as_int().expect("pk");
        let app = FlexRow::load(conn, "application", app_id)?;
        w.begin("application").map_err(storage_err)?;
        w.attr("name", &app.name).map_err(storage_err)?;
        write_fields(&mut w, &app).map_err(storage_err)?;
        let exps = conn.query(
            "SELECT id FROM experiment WHERE application = ? ORDER BY id",
            &[Value::Int(app_id)],
        )?;
        for exp_row in &exps.rows {
            let exp_id = exp_row[0].as_int().expect("pk");
            let mut exp = FlexRow::load(conn, "experiment", exp_id)?;
            exp.fields.remove("application"); // re-linked on restore
            w.begin("experiment").map_err(storage_err)?;
            w.attr("name", &exp.name).map_err(storage_err)?;
            write_fields(&mut w, &exp).map_err(storage_err)?;
            let trials = conn.query(
                "SELECT id FROM trial WHERE experiment = ? ORDER BY id",
                &[Value::Int(exp_id)],
            )?;
            for trial_row in &trials.rows {
                let trial_id = trial_row[0].as_int().expect("pk");
                let mut trial = FlexRow::load(conn, "trial", trial_id)?;
                trial.fields.remove("experiment");
                let file = format!("trial_{trial_id}.xml");
                w.begin("trial").map_err(storage_err)?;
                w.attr("name", &trial.name).map_err(storage_err)?;
                w.attr("file", &file).map_err(storage_err)?;
                write_fields(&mut w, &trial).map_err(storage_err)?;
                w.end().map_err(storage_err)?; // trial
                let profile = load_trial(conn, trial_id)?;
                std::fs::write(dir.join(&file), perfdmf_import::export_xml(&profile))
                    .map_err(storage_err)?;
                trials_written += 1;
            }
            w.end().map_err(storage_err)?; // experiment
        }
        w.end().map_err(storage_err)?; // application
    }
    w.end().map_err(storage_err)?;
    w.finish().map_err(storage_err)?;
    std::fs::write(dir.join("manifest.xml"), manifest).map_err(storage_err)?;
    Ok(trials_written)
}

fn apply_fields(
    conn: &Connection,
    table: &str,
    row: &mut FlexRow,
    element: &Element,
) -> Result<()> {
    for f in element.children_named("field") {
        let name = f.attr("name").unwrap_or_default().to_ascii_lowercase();
        if name.is_empty() || name == "id" || name == "name" {
            continue;
        }
        let value = attr_to_value(
            f.attr("type").unwrap_or("text"),
            f.attr("value").unwrap_or(""),
        );
        // Flexible schema: grow the target table when the column is new.
        let known = conn.table_meta(table)?.iter().any(|c| c.name == name);
        if !known {
            let sql_ty = match value {
                Value::Int(_) => DataType::Integer,
                Value::Float(_) => DataType::Double,
                Value::Bool(_) => DataType::Boolean,
                _ => DataType::Text,
            };
            conn.execute(
                &format!(
                    "ALTER TABLE {table} ADD COLUMN {name} {}",
                    sql_ty.sql_name()
                ),
                &[],
            )?;
        }
        row.set_field(name, value);
    }
    Ok(())
}

/// Restore an archive dumped by [`dump_archive`] into a database.
/// Returns the new trial ids.
pub fn restore_archive(conn: &Connection, dir: &Path) -> Result<Vec<i64>> {
    create_schema(conn)?;
    let manifest = std::fs::read_to_string(dir.join("manifest.xml")).map_err(storage_err)?;
    let doc = Element::parse(&manifest).map_err(storage_err)?;
    if doc.name != "perfdmf_archive" {
        return Err(DbError::Corrupt(format!(
            "manifest root is <{}>, expected <perfdmf_archive>",
            doc.name
        )));
    }
    let mut new_trials = Vec::new();
    for app_el in doc.children_named("application") {
        let app_name = app_el.attr("name").unwrap_or("imported");
        let app_id = match conn
            .query(
                "SELECT id FROM application WHERE name = ?",
                &[Value::Text(app_name.into())],
            )?
            .scalar()
            .and_then(Value::as_int)
        {
            Some(id) => id,
            None => {
                let mut app = FlexRow::new(app_name);
                apply_fields(conn, "application", &mut app, app_el)?;
                app.save(conn, "application")?
            }
        };
        for exp_el in app_el.children_named("experiment") {
            let exp_name = exp_el.attr("name").unwrap_or("imported");
            let exp_id = match conn
                .query(
                    "SELECT id FROM experiment WHERE name = ? AND application = ?",
                    &[Value::Text(exp_name.into()), Value::Int(app_id)],
                )?
                .scalar()
                .and_then(Value::as_int)
            {
                Some(id) => id,
                None => {
                    let mut exp = FlexRow::new(exp_name).with_field("application", app_id);
                    apply_fields(conn, "experiment", &mut exp, exp_el)?;
                    exp.save(conn, "experiment")?
                }
            };
            for trial_el in exp_el.children_named("trial") {
                let file = trial_el.attr("file").ok_or_else(|| {
                    DbError::Corrupt("trial element missing file attribute".into())
                })?;
                let xml = std::fs::read_to_string(dir.join(file)).map_err(storage_err)?;
                let profile = perfdmf_import::import_xml(&xml)
                    .map_err(|e| DbError::Corrupt(e.to_string()))?;
                let mut trial = FlexRow::new(trial_el.attr("name").unwrap_or(&profile.name))
                    .with_field("experiment", exp_id);
                apply_fields(conn, "trial", &mut trial, trial_el)?;
                let trial_id = trial.save(conn, "trial")?;
                save_profile(conn, trial_id, &profile)?;
                new_trials.push(trial_id);
            }
        }
    }
    Ok(new_trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::DatabaseSession;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric, Profile, ThreadId};

    fn trial_profile(name: &str, v: f64) -> Profile {
        let mut p = Profile::new(name);
        p.source_format = "tau".into();
        let m = p.add_metric(Metric::measured("TIME"));
        let e = p.add_event(IntervalEvent::new("main", "TAU_USER"));
        p.add_threads((0..2).map(|n| ThreadId::new(n, 0, 0)));
        for &t in p.threads().to_vec().iter() {
            p.set_interval(e, t, m, IntervalData::new(v, v, 1.0, 0.0));
        }
        p
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "pdmf_archive_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn dump_restore_roundtrip_with_metadata() {
        let src = Connection::open_in_memory();
        let mut session = DatabaseSession::new(src.clone()).unwrap();
        session
            .store_profile("evh1", "scaling", &trial_profile("p1", 10.0))
            .unwrap();
        session
            .store_profile("evh1", "scaling", &trial_profile("p2", 6.0))
            .unwrap();
        session
            .store_profile("sppm", "counters", &trial_profile("c1", 3.0))
            .unwrap();
        // flexible metadata travels with the archive
        src.execute("ALTER TABLE trial ADD COLUMN machine TEXT", &[])
            .unwrap();
        src.update("UPDATE trial SET machine = 'frost' WHERE id = 1", &[])
            .unwrap();

        let dir = tmpdir("roundtrip");
        let n = dump_archive(&src, &dir).unwrap();
        assert_eq!(n, 3);
        assert!(dir.join("manifest.xml").exists());
        assert!(dir.join("trial_1.xml").exists());

        let dst = Connection::open_in_memory();
        let ids = restore_archive(&dst, &dir).unwrap();
        assert_eq!(ids.len(), 3);
        // hierarchy re-created
        assert_eq!(dst.row_count("application").unwrap(), 2);
        assert_eq!(dst.row_count("experiment").unwrap(), 2);
        // machine column grown on the fly and populated
        let rs = dst
            .query("SELECT machine FROM trial WHERE name = 'p1'", &[])
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::from("frost")));
        // profile data intact
        let back = load_trial(&dst, ids[0]).unwrap();
        let m = back.find_metric("TIME").unwrap();
        let e = back.find_event("main").unwrap();
        assert_eq!(
            back.interval(e, ThreadId::ZERO, m).unwrap().inclusive(),
            Some(10.0)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_merges_into_existing_hierarchy() {
        let src = Connection::open_in_memory();
        let mut s1 = DatabaseSession::new(src.clone()).unwrap();
        s1.store_profile("evh1", "scaling", &trial_profile("siteA", 1.0))
            .unwrap();
        let dir = tmpdir("merge");
        dump_archive(&src, &dir).unwrap();

        let dst = Connection::open_in_memory();
        let mut s2 = DatabaseSession::new(dst.clone()).unwrap();
        s2.store_profile("evh1", "scaling", &trial_profile("siteB", 2.0))
            .unwrap();
        restore_archive(&dst, &dir).unwrap();
        // same app/exp reused, both trials present
        assert_eq!(dst.row_count("application").unwrap(), 1);
        assert_eq!(dst.row_count("experiment").unwrap(), 1);
        assert_eq!(dst.row_count("trial").unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restore_rejects_bad_manifest() {
        let dir = tmpdir("bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.xml"), "<wrong/>").unwrap();
        let dst = Connection::open_in_memory();
        assert!(restore_archive(&dst, &dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
