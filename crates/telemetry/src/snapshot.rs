//! Point-in-time captures of the registry, and conversion into a
//! [`perfdmf_profile::Profile`] — the self-profiling export.
//!
//! The mapping mirrors how TAU data lands in PerfDMF: each span/latency
//! histogram becomes an `INTERVAL_EVENT` (inclusive = exclusive = total
//! nanoseconds, calls = sample count) under metric `TELEMETRY_TIME_NS`,
//! and each counter becomes an `ATOMIC_EVENT` with a single sample.
//! Everything is attributed to [`ThreadId::ZERO`], the serial-profile
//! convention. The resulting profile round-trips through
//! `DataSession::store_profile` / `load_profile` like any trial.

use perfdmf_profile::{AtomicEvent, IntervalData, IntervalEvent, Metric, Profile, ThreadId};

use crate::registry::{self, BUCKETS};

/// Frozen view of one counter.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// Frozen view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: Option<u64>,
    pub max: Option<u64>,
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket where the cumulative count crosses `q * count`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(registry::bucket_upper_bound(i));
            }
        }
        self.max
    }
}

/// Frozen view of the whole registry, names sorted.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub counters: Vec<CounterSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    pub fn counter(&self, name: &str) -> Option<&CounterSnapshot> {
        self.counters.iter().find(|c| c.name == name)
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// Capture every registered instrument. Concurrent recording keeps
/// going; per-field reads are atomic, the snapshot as a whole is not.
pub fn snapshot() -> Snapshot {
    let reg = registry::global();
    Snapshot {
        counters: reg
            .counters()
            .into_iter()
            .map(|(name, c)| CounterSnapshot {
                name,
                value: c.value(),
            })
            .collect(),
        histograms: reg
            .histograms()
            .into_iter()
            .map(|(name, h)| HistogramSnapshot {
                name,
                count: h.count(),
                sum: h.sum(),
                min: h.min(),
                max: h.max(),
                buckets: h.buckets(),
            })
            .collect(),
    }
}

/// Metric name carrying span/histogram totals in the exported profile.
pub const TELEMETRY_METRIC: &str = "TELEMETRY_TIME_NS";

/// Event group assigned to every exported telemetry event.
pub const TELEMETRY_GROUP: &str = "TELEMETRY";

/// Quantiles exported per histogram as `{name}.p50` / `.p95` / `.p99`
/// atomic events.
pub const EXPORTED_QUANTILES: [(&str, f64); 3] = [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)];

/// Convert a snapshot into a PerfDMF profile (see module docs for the
/// mapping). Empty histograms are skipped; counters keep zero values so
/// their existence survives the round trip. Each non-empty histogram
/// additionally exports its p50/p95/p99 (bucket upper bounds) as atomic
/// events named `{name}.p50` etc., so tail latency survives the export,
/// not just count/sum.
pub fn profile_from_snapshot(snap: &Snapshot) -> Profile {
    let mut p = Profile::new("perfdmf-telemetry");
    let metric = p.add_metric(Metric::measured(TELEMETRY_METRIC));
    p.add_thread(ThreadId::ZERO);

    for h in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        let event = p.add_event(IntervalEvent::new(h.name.clone(), TELEMETRY_GROUP));
        let total = h.sum as f64;
        p.set_interval(
            event,
            ThreadId::ZERO,
            metric,
            IntervalData::new(total, total, h.count as f64, 0.0),
        );
        for (label, q) in EXPORTED_QUANTILES {
            if let Some(v) = h.quantile(q) {
                let qe = p.add_atomic_event(AtomicEvent::new(
                    format!("{}.{label}", h.name),
                    TELEMETRY_GROUP,
                ));
                p.record_atomic(qe, ThreadId::ZERO, v as f64);
            }
        }
    }

    for c in &snap.counters {
        let event = p.add_atomic_event(AtomicEvent::new(c.name.clone(), TELEMETRY_GROUP));
        p.record_atomic(event, ThreadId::ZERO, c.value as f64);
    }

    p.recompute_derived_fields(metric);
    p
}

/// Snapshot the live registry and export it as a profile in one call.
pub fn snapshot_to_profile() -> Profile {
    profile_from_snapshot(&snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_from_buckets() {
        let mut buckets = [0u64; BUCKETS];
        // 50 samples of 1, 50 samples in [4, 8).
        buckets[1] = 50;
        buckets[3] = 50;
        let h = HistogramSnapshot {
            name: "q".into(),
            count: 100,
            sum: 50 + 50 * 6,
            min: Some(1),
            max: Some(7),
            buckets,
        };
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.99), Some(7));
        assert_eq!(h.mean(), Some(3.5));
        let empty = HistogramSnapshot {
            name: "e".into(),
            count: 0,
            sum: 0,
            min: None,
            max: None,
            buckets: [0; BUCKETS],
        };
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn quantile_single_sample() {
        let mut buckets = [0u64; BUCKETS];
        buckets[11] = 1; // one sample in [1024, 2048)
        let h = HistogramSnapshot {
            name: "one".into(),
            count: 1,
            sum: 1500,
            min: Some(1500),
            max: Some(1500),
            buckets,
        };
        // Every quantile of a single sample lands in its bucket.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(registry::bucket_upper_bound(11)));
        }
        assert_eq!(h.mean(), Some(1500.0));
    }

    #[test]
    fn quantile_all_in_one_bucket() {
        let mut buckets = [0u64; BUCKETS];
        buckets[5] = 1_000_000; // everything in [16, 32)
        let h = HistogramSnapshot {
            name: "uniform".into(),
            count: 1_000_000,
            sum: 20_000_000,
            min: Some(16),
            max: Some(31),
            buckets,
        };
        let bound = registry::bucket_upper_bound(5);
        assert_eq!(h.quantile(0.01), Some(bound));
        assert_eq!(h.quantile(0.5), Some(bound));
        assert_eq!(h.quantile(0.99), Some(bound));
    }

    #[test]
    fn quantile_saturating_counts() {
        // Counts near u64::MAX must not overflow or panic; the rank math
        // goes through f64 and falls back to `max` past the last bucket.
        let mut buckets = [0u64; BUCKETS];
        buckets[1] = u64::MAX / 2;
        buckets[64] = u64::MAX / 2;
        let h = HistogramSnapshot {
            name: "huge".into(),
            count: u64::MAX - 1,
            sum: u64::MAX, // wrapped in reality; quantiles don't read it
            min: Some(1),
            max: Some(u64::MAX),
            buckets,
        };
        assert_eq!(h.quantile(0.25), Some(1));
        assert_eq!(h.quantile(0.99), Some(u64::MAX));
        // q clamps: out-of-range inputs behave like 0 and 1.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    #[test]
    fn quantile_rank_past_buckets_falls_back_to_max() {
        // A snapshot taken mid-record can see `count` ahead of the bucket
        // increments; the cumulative scan then never reaches the rank and
        // must return `max` instead of None.
        let mut buckets = [0u64; BUCKETS];
        buckets[3] = 2;
        let h = HistogramSnapshot {
            name: "torn".into(),
            count: 5, // more than the buckets hold
            sum: 30,
            min: Some(4),
            max: Some(7),
            buckets,
        };
        assert_eq!(h.quantile(0.99), Some(7));
    }

    #[test]
    fn export_maps_instruments_to_profile_events() {
        crate::counter("snap.test.rows").add(17);
        crate::histogram("snap.test.latency").record(1000);
        crate::histogram("snap.test.latency").record(3000);
        crate::histogram("snap.test.empty"); // registered, never recorded

        let p = snapshot_to_profile();
        let problems = p.validate();
        assert!(problems.is_empty(), "{problems:?}");

        let m = p.find_metric(TELEMETRY_METRIC).expect("metric");
        let e = p.find_event("snap.test.latency").expect("interval event");
        let d = p.interval(e, ThreadId::ZERO, m).expect("data");
        assert_eq!(d.calls(), Some(2.0));
        assert_eq!(d.inclusive(), Some(4000.0));
        assert!(p.find_event("snap.test.empty").is_none());

        let a = p.find_atomic_event("snap.test.rows").expect("atomic event");
        let ad = p.atomic(a, ThreadId::ZERO).expect("atomic data");
        assert_eq!(ad.count, 1);
        assert_eq!(ad.mean, 17.0);
    }

    #[test]
    fn export_surfaces_histogram_quantiles() {
        crate::histogram("snap.test.quant").record(1000);
        crate::histogram("snap.test.quant").record(1000);
        crate::histogram("snap.test.quant").record(60_000);

        let p = snapshot_to_profile();
        let snap = snapshot();
        let h = snap.histogram("snap.test.quant").expect("histogram");
        for (label, q) in EXPORTED_QUANTILES {
            let e = p
                .find_atomic_event(&format!("snap.test.quant.{label}"))
                .unwrap_or_else(|| panic!("missing quantile event {label}"));
            let d = p.atomic(e, ThreadId::ZERO).expect("data");
            assert_eq!(d.mean, h.quantile(q).unwrap() as f64);
        }
        // p50 sits in the 1000-sample bucket, p99 in the outlier's.
        let p50 = p.find_atomic_event("snap.test.quant.p50").unwrap();
        let p99 = p.find_atomic_event("snap.test.quant.p99").unwrap();
        assert!(
            p.atomic(p99, ThreadId::ZERO).unwrap().mean
                > p.atomic(p50, ThreadId::ZERO).unwrap().mean
        );
        // Empty histograms export no quantile events.
        assert!(p.find_atomic_event("snap.test.empty.p50").is_none());
    }
}
