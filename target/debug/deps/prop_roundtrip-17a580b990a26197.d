/root/repo/target/debug/deps/prop_roundtrip-17a580b990a26197.d: crates/workload/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-17a580b990a26197.rmeta: crates/workload/tests/prop_roundtrip.rs Cargo.toml

crates/workload/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
