/root/repo/target/release/deps/perfdmf_bench-d321728bcd6c5dee.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libperfdmf_bench-d321728bcd6c5dee.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libperfdmf_bench-d321728bcd6c5dee.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
