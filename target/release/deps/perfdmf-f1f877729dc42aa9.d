/root/repo/target/release/deps/perfdmf-f1f877729dc42aa9.d: src/lib.rs

/root/repo/target/release/deps/libperfdmf-f1f877729dc42aa9.rlib: src/lib.rs

/root/repo/target/release/deps/libperfdmf-f1f877729dc42aa9.rmeta: src/lib.rs

src/lib.rs:
