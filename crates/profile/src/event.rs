//! Performance events: interval (timer) events and atomic (counter) events.

use std::fmt;

/// An interval event — a named region of code (function, loop, basic
/// block) whose entry/exit is measured (paper §3.2, INTERVAL_EVENT).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IntervalEvent {
    /// Event name, e.g. `MPI_Send()` or `main => loop1`.
    pub name: String,
    /// Event group, e.g. `MPI`, `TAU_USER`, `computation`.
    pub group: String,
}

impl IntervalEvent {
    /// Create an event with a group.
    pub fn new(name: impl Into<String>, group: impl Into<String>) -> Self {
        IntervalEvent {
            name: name.into(),
            group: group.into(),
        }
    }

    /// Create an ungrouped event (group = `TAU_DEFAULT`).
    pub fn ungrouped(name: impl Into<String>) -> Self {
        IntervalEvent::new(name, "TAU_DEFAULT")
    }
}

impl fmt::Display for IntervalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.group)
    }
}

/// An atomic event — a user-defined counter sampled at instrumentation
/// points (paper §3.2, ATOMIC_EVENT): e.g. message size, heap usage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AtomicEvent {
    /// Counter name, e.g. `Message size sent to all nodes`.
    pub name: String,
    /// Counter group.
    pub group: String,
}

impl AtomicEvent {
    /// Create an atomic event.
    pub fn new(name: impl Into<String>, group: impl Into<String>) -> Self {
        AtomicEvent {
            name: name.into(),
            group: group.into(),
        }
    }
}

/// A measurement metric collected during a trial (paper §3.2, METRIC):
/// wall-clock time, PAPI counters, or derived quantities.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Metric {
    /// Metric name, e.g. `GET_TIME_OF_DAY`, `PAPI_FP_OPS`.
    pub name: String,
    /// True if this metric was computed from others rather than measured.
    pub derived: bool,
}

impl Metric {
    /// A measured metric.
    pub fn measured(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            derived: false,
        }
    }

    /// A derived metric.
    pub fn derived(name: impl Into<String>) -> Self {
        Metric {
            name: name.into(),
            derived: true,
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = IntervalEvent::new("MPI_Send()", "MPI");
        assert_eq!(e.to_string(), "MPI_Send() [MPI]");
        let u = IntervalEvent::ungrouped("main");
        assert_eq!(u.group, "TAU_DEFAULT");
        let m = Metric::measured("PAPI_FP_OPS");
        assert!(!m.derived);
        let d = Metric::derived("FLOPS");
        assert!(d.derived);
        let a = AtomicEvent::new("Message size", "TAU_EVENT");
        assert_eq!(a.name, "Message size");
    }
}
