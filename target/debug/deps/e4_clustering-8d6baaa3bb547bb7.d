/root/repo/target/debug/deps/e4_clustering-8d6baaa3bb547bb7.d: crates/bench/benches/e4_clustering.rs Cargo.toml

/root/repo/target/debug/deps/libe4_clustering-8d6baaa3bb547bb7.rmeta: crates/bench/benches/e4_clustering.rs Cargo.toml

crates/bench/benches/e4_clustering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
