/root/repo/target/debug/deps/perfdmf_explorer-e06fd2bc9d8c1874.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_explorer-e06fd2bc9d8c1874.rmeta: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs Cargo.toml

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
