/root/repo/target/debug/deps/callpath_flow-7c943ba00e23615e.d: tests/callpath_flow.rs

/root/repo/target/debug/deps/callpath_flow-7c943ba00e23615e: tests/callpath_flow.rs

tests/callpath_flow.rs:
