/root/repo/target/debug/deps/perfdmf_explorer-013f682381e07f4c.d: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/debug/deps/libperfdmf_explorer-013f682381e07f4c.rlib: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

/root/repo/target/debug/deps/libperfdmf_explorer-013f682381e07f4c.rmeta: crates/explorer/src/lib.rs crates/explorer/src/client.rs crates/explorer/src/protocol.rs crates/explorer/src/server.rs

crates/explorer/src/lib.rs:
crates/explorer/src/client.rs:
crates/explorer/src/protocol.rs:
crates/explorer/src/server.rs:
