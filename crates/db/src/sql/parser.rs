//! Recursive-descent SQL parser.

use super::ast::*;
use super::lexer::{tokenize, Token, TokenKind};
use crate::error::{DbError, Result};
use crate::schema::ColumnDef;
use crate::value::{DataType, Value};

/// Parse a single SQL statement (an optional trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a statement and report how many `?` parameters it uses.
pub fn parse_statement_with_params(sql: &str) -> Result<(Statement, usize)> {
    let tokens = tokenize(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok((stmt, p.params))
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> DbError {
        DbError::Parse {
            message: message.into(),
            position: self.peek_pos(),
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect_kind(&mut self, kind: TokenKind, what: &str) -> Result<()> {
        if self.eat_kind(&kind) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    /// Identifier (plain or quoted). Lowercased unless quoted.
    fn identifier(&mut self, what: &str) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s.to_ascii_lowercase()),
            TokenKind::QuotedIdent(s) => Ok(s),
            // Non-reserved usage of keywords as identifiers is common for
            // column names like "key"; allow a few safe ones.
            TokenKind::Keyword(k) if matches!(k.as_str(), "KEY" | "INDEX" | "COLUMN" | "ALL") => {
                Ok(k.to_ascii_lowercase())
            }
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected {what}, found {other:?}")))
            }
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(k) => match k.as_str() {
                "EXPLAIN" => {
                    self.advance();
                    let analyze = self.eat_keyword("ANALYZE");
                    Ok(Statement::Explain {
                        statement: Box::new(self.statement()?),
                        analyze,
                    })
                }
                "SELECT" => Ok(Statement::Select(self.select()?)),
                "INSERT" => self.insert(),
                "UPDATE" => self.update(),
                "DELETE" => self.delete(),
                "CREATE" => self.create(),
                "DROP" => self.drop(),
                "ALTER" => self.alter(),
                "BEGIN" => {
                    self.advance();
                    self.eat_keyword("TRANSACTION");
                    Ok(Statement::Begin)
                }
                "COMMIT" => {
                    self.advance();
                    self.eat_keyword("TRANSACTION");
                    Ok(Statement::Commit)
                }
                "ROLLBACK" => {
                    self.advance();
                    self.eat_keyword("TRANSACTION");
                    Ok(Statement::Rollback)
                }
                other => Err(self.err(format!("unexpected keyword {other}"))),
            },
            other => Err(self.err(format!("expected a statement, found {other:?}"))),
        }
    }

    // ---------------- SELECT ----------------

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        if distinct {
            // allow SELECT DISTINCT ALL? no — but SELECT ALL is a no-op
        } else {
            self.eat_keyword("ALL");
        }
        let mut projections = vec![self.projection()?];
        while self.eat_kind(&TokenKind::Comma) {
            projections.push(self.projection()?);
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_keyword("FROM") {
            from = Some(self.table_ref()?);
            loop {
                let kind = if self.eat_keyword("JOIN") {
                    JoinKind::Inner
                } else if self.eat_keyword("INNER") {
                    self.expect_keyword("JOIN")?;
                    JoinKind::Inner
                } else if self.eat_keyword("LEFT") {
                    self.eat_keyword("OUTER");
                    self.expect_keyword("JOIN")?;
                    JoinKind::Left
                } else if self.eat_keyword("CROSS") {
                    self.expect_keyword("JOIN")?;
                    JoinKind::Cross
                } else if self.eat_kind(&TokenKind::Comma) {
                    JoinKind::Cross
                } else {
                    break;
                };
                let table = self.table_ref()?;
                let on = if kind != JoinKind::Cross {
                    self.expect_keyword("ON")?;
                    Some(self.expr()?)
                } else {
                    None
                };
                joins.push(Join { kind, table, on });
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_kind(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, descending });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_keyword("LIMIT") {
            limit = Some(self.unsigned_int("LIMIT count")?);
            if self.eat_keyword("OFFSET") {
                offset = Some(self.unsigned_int("OFFSET count")?);
            }
        } else if self.eat_keyword("OFFSET") {
            offset = Some(self.unsigned_int("OFFSET count")?);
        }
        Ok(Select {
            distinct,
            projections,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned_int(&mut self, what: &str) -> Result<u64> {
        match self.advance() {
            TokenKind::Int(v) if v >= 0 => Ok(v as u64),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected {what}, found {other:?}")))
            }
        }
    }

    fn projection(&mut self) -> Result<Projection> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(Projection::Wildcard);
        }
        // `t.*`
        if let TokenKind::Ident(name) = self.peek().clone() {
            if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(Projection::TableWildcard(name.to_ascii_lowercase()));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.identifier("alias")?)
        } else {
            None
        };
        Ok(Projection::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.identifier("table name")?;
        let alias = if self.eat_keyword("AS") || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.identifier("table alias")?)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // ---------------- DML ----------------

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.identifier("table name")?;
        let mut columns = Vec::new();
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                columns.push(self.identifier("column name")?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen, ")")?;
        }
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(TokenKind::LParen, "(")?;
            let mut vals = Vec::new();
            if !self.eat_kind(&TokenKind::RParen) {
                loop {
                    vals.push(self.expr()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect_kind(TokenKind::RParen, ")")?;
            }
            rows.push(vals);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword("UPDATE")?;
        let table = self.identifier("table name")?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier("column name")?;
            self.expect_kind(TokenKind::Eq, "=")?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            where_clause,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.identifier("table name")?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete {
            table,
            where_clause,
        }))
    }

    // ---------------- DDL ----------------

    fn create(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        let unique = self.eat_keyword("UNIQUE");
        if self.eat_keyword("INDEX") {
            let name = self.identifier("index name")?;
            self.expect_keyword("ON")?;
            let table = self.identifier("table name")?;
            self.expect_kind(TokenKind::LParen, "(")?;
            let column = self.identifier("column name")?;
            self.expect_kind(TokenKind::RParen, ")")?;
            return Ok(Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            });
        }
        if unique {
            return Err(self.err("expected INDEX after CREATE UNIQUE"));
        }
        self.expect_keyword("TABLE")?;
        let if_not_exists = if self.eat_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier("table name")?;
        self.expect_kind(TokenKind::LParen, "(")?;
        let mut columns = Vec::new();
        loop {
            // table-level FOREIGN KEY clause
            if self.eat_keyword("FOREIGN") {
                self.expect_keyword("KEY")?;
                self.expect_kind(TokenKind::LParen, "(")?;
                let col = self.identifier("column name")?;
                self.expect_kind(TokenKind::RParen, ")")?;
                self.expect_keyword("REFERENCES")?;
                let ftable = self.identifier("referenced table")?;
                self.expect_kind(TokenKind::LParen, "(")?;
                let fcol = self.identifier("referenced column")?;
                self.expect_kind(TokenKind::RParen, ")")?;
                if let Some(c) = columns.iter_mut().find(|c: &&mut ColumnDef| c.name == col) {
                    c.references = Some((ftable, fcol));
                } else {
                    return Err(self.err(format!("FOREIGN KEY names unknown column {col}")));
                }
            } else if self.eat_keyword("PRIMARY") {
                // table-level PRIMARY KEY (col)
                self.expect_keyword("KEY")?;
                self.expect_kind(TokenKind::LParen, "(")?;
                let col = self.identifier("column name")?;
                self.expect_kind(TokenKind::RParen, ")")?;
                if let Some(c) = columns.iter_mut().find(|c: &&mut ColumnDef| c.name == col) {
                    c.primary_key = true;
                    c.not_null = true;
                    c.unique = true;
                } else {
                    return Err(self.err(format!("PRIMARY KEY names unknown column {col}")));
                }
            } else {
                columns.push(self.column_def()?);
            }
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(TokenKind::RParen, ")")?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn column_def(&mut self) -> Result<ColumnDef> {
        let name = self.identifier("column name")?;
        let ty_name = self.identifier("column type")?;
        let ty = DataType::parse(&ty_name)
            .ok_or_else(|| self.err(format!("unknown column type {ty_name:?}")))?;
        // size suffix like VARCHAR(255)
        if self.eat_kind(&TokenKind::LParen) {
            self.unsigned_int("type size")?;
            if self.eat_kind(&TokenKind::Comma) {
                self.unsigned_int("type scale")?;
            }
            self.expect_kind(TokenKind::RParen, ")")?;
        }
        let mut col = ColumnDef::new(name, ty);
        loop {
            if self.eat_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                col = col.primary_key();
            } else if self.eat_keyword("NOT") {
                self.expect_keyword("NULL")?;
                col = col.not_null();
            } else if self.eat_keyword("NULL") {
                // explicit nullable; nothing to do
            } else if self.eat_keyword("UNIQUE") {
                col = col.unique();
            } else if self.eat_keyword("AUTO_INCREMENT") {
                col = col.auto_increment();
            } else if self.eat_keyword("DEFAULT") {
                let v = self.literal_value()?;
                col = col.default_value(v);
            } else if self.eat_keyword("REFERENCES") {
                let table = self.identifier("referenced table")?;
                self.expect_kind(TokenKind::LParen, "(")?;
                let column = self.identifier("referenced column")?;
                self.expect_kind(TokenKind::RParen, ")")?;
                col = col.references(table, column);
            } else {
                break;
            }
        }
        Ok(col)
    }

    fn literal_value(&mut self) -> Result<Value> {
        let negative = self.eat_kind(&TokenKind::Minus);
        match self.advance() {
            TokenKind::Int(v) => Ok(Value::Int(if negative { -v } else { v })),
            TokenKind::Float(v) => Ok(Value::Float(if negative { -v } else { v })),
            TokenKind::Str(s) if !negative => Ok(Value::Text(s.into())),
            TokenKind::Keyword(k) if k == "NULL" && !negative => Ok(Value::Null),
            TokenKind::Keyword(k) if k == "TRUE" && !negative => Ok(Value::Bool(true)),
            TokenKind::Keyword(k) if k == "FALSE" && !negative => Ok(Value::Bool(false)),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected a literal, found {other:?}")))
            }
        }
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        if self.eat_keyword("INDEX") {
            let name = self.identifier("index name")?;
            return Ok(Statement::DropIndex { name });
        }
        self.expect_keyword("TABLE")?;
        let if_exists = if self.eat_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier("table name")?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn alter(&mut self) -> Result<Statement> {
        self.expect_keyword("ALTER")?;
        self.expect_keyword("TABLE")?;
        let table = self.identifier("table name")?;
        if self.eat_keyword("ADD") {
            self.eat_keyword("COLUMN");
            let column = self.column_def()?;
            Ok(Statement::AlterTableAddColumn { table, column })
        } else if self.eat_keyword("DROP") {
            self.eat_keyword("COLUMN");
            let column = self.identifier("column name")?;
            Ok(Statement::AlterTableDropColumn { table, column })
        } else {
            Err(self.err("expected ADD or DROP after ALTER TABLE"))
        }
    }

    // ---------------- expressions (precedence climbing) ----------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let operand = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                operand: Box::new(left),
                negated,
            });
        }
        let negated = self.eat_keyword("NOT");
        if self.eat_keyword("IN") {
            self.expect_kind(TokenKind::LParen, "(")?;
            if matches!(self.peek(), TokenKind::Keyword(k) if k == "SELECT") {
                let select = self.select()?;
                self.expect_kind(TokenKind::RParen, ")")?;
                return Ok(Expr::InSubquery {
                    operand: Box::new(left),
                    select: Box::new(select),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen, ")")?;
            return Ok(Expr::InList {
                operand: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                operand: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let right = self.additive()?;
            let like = Expr::Binary {
                op: BinaryOp::Like,
                left: Box::new(left),
                right: Box::new(right),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(like),
                }
            } else {
                like
            });
        }
        if negated {
            return Err(self.err("expected IN, BETWEEN, or LIKE after NOT"));
        }
        let op = match self.peek() {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            TokenKind::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            TokenKind::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Text(s.into()))),
            TokenKind::Param => {
                let ordinal = self.params;
                self.params += 1;
                Ok(Expr::Param(ordinal))
            }
            TokenKind::Keyword(k) if k == "NULL" => Ok(Expr::Literal(Value::Null)),
            TokenKind::Keyword(k) if k == "TRUE" => Ok(Expr::Literal(Value::Bool(true))),
            TokenKind::Keyword(k) if k == "FALSE" => Ok(Expr::Literal(Value::Bool(false))),
            TokenKind::Keyword(k) if k == "CASE" => self.case_expr(),
            TokenKind::Keyword(k) if k == "EXISTS" => {
                self.expect_kind(TokenKind::LParen, "(")?;
                let select = self.select()?;
                self.expect_kind(TokenKind::RParen, ")")?;
                Ok(Expr::Exists {
                    select: Box::new(select),
                    negated: false,
                })
            }
            TokenKind::Keyword(k) if k == "CAST" => {
                self.expect_kind(TokenKind::LParen, "(")?;
                let inner = self.expr()?;
                self.expect_keyword("AS")?;
                let ty_name = self.identifier("type name")?;
                self.expect_kind(TokenKind::RParen, ")")?;
                Ok(Expr::Function {
                    name: format!("cast_{}", ty_name.to_ascii_lowercase()),
                    args: vec![inner],
                })
            }
            TokenKind::LParen => {
                if matches!(self.peek(), TokenKind::Keyword(k) if k == "SELECT") {
                    let select = self.select()?;
                    self.expect_kind(TokenKind::RParen, ")")?;
                    return Ok(Expr::ScalarSubquery(Box::new(select)));
                }
                let inner = self.expr()?;
                self.expect_kind(TokenKind::RParen, ")")?;
                Ok(inner)
            }
            TokenKind::Ident(name) | TokenKind::QuotedIdent(name) => {
                // function call?
                if self.eat_kind(&TokenKind::LParen) {
                    return self.finish_call(&name);
                }
                // qualified column?
                if self.eat_kind(&TokenKind::Dot) {
                    let column = self.identifier("column name")?;
                    return Ok(Expr::Column {
                        table: Some(name.to_ascii_lowercase()),
                        column,
                    });
                }
                Ok(Expr::Column {
                    table: None,
                    column: name.to_ascii_lowercase(),
                })
            }
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected an expression, found {other:?}")))
            }
        }
    }

    fn finish_call(&mut self, name: &str) -> Result<Expr> {
        if let Some(func) = AggregateFn::parse(name) {
            if func == AggregateFn::Count && self.eat_kind(&TokenKind::Star) {
                self.expect_kind(TokenKind::RParen, ")")?;
                return Ok(Expr::Aggregate {
                    func,
                    arg: None,
                    distinct: false,
                });
            }
            let distinct = self.eat_keyword("DISTINCT");
            let arg = self.expr()?;
            self.expect_kind(TokenKind::RParen, ")")?;
            return Ok(Expr::Aggregate {
                func,
                arg: Some(Box::new(arg)),
                distinct,
            });
        }
        let mut args = Vec::new();
        if !self.eat_kind(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(TokenKind::RParen, ")")?;
        }
        Ok(Expr::Function {
            name: name.to_ascii_lowercase(),
            args,
        })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let cond = self.expr()?;
            self.expect_keyword("THEN")?;
            let value = self.expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_branch = if self.eat_keyword("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            branches,
            else_branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_select() {
        let s = parse_statement(
            "SELECT id, name FROM application WHERE id = 3 ORDER BY name DESC LIMIT 10 OFFSET 2",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projections.len(), 2);
                assert_eq!(sel.from.unwrap().table, "application");
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.order_by.len(), 1);
                assert!(sel.order_by[0].descending);
                assert_eq!(sel.limit, Some(10));
                assert_eq!(sel.offset, Some(2));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_join() {
        let s = parse_statement(
            "SELECT t.id, e.name FROM trial t JOIN experiment e ON t.experiment = e.id LEFT JOIN metric m ON m.trial = t.id",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.joins.len(), 2);
                assert_eq!(sel.joins[0].kind, JoinKind::Inner);
                assert_eq!(sel.joins[1].kind, JoinKind::Left);
                assert_eq!(sel.from.unwrap().alias.as_deref(), Some("t"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let s = parse_statement(
            "SELECT node, AVG(exclusive), STDDEV(exclusive), COUNT(*) FROM p GROUP BY node HAVING COUNT(*) > 1",
        )
        .unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.group_by.len(), 1);
                assert!(sel.having.is_some());
                assert!(matches!(
                    sel.projections[3],
                    Projection::Expr {
                        expr: Expr::Aggregate {
                            func: AggregateFn::Count,
                            arg: None,
                            ..
                        },
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_table() {
        let s = parse_statement(
            "CREATE TABLE IF NOT EXISTS trial (
                id INTEGER PRIMARY KEY AUTO_INCREMENT,
                name VARCHAR(255) NOT NULL,
                experiment INT REFERENCES experiment(id),
                node_count INT DEFAULT 0,
                ok BOOLEAN DEFAULT TRUE)",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                assert_eq!(name, "trial");
                assert!(if_not_exists);
                assert_eq!(columns.len(), 5);
                assert!(columns[0].auto_increment);
                assert!(columns[1].not_null);
                assert_eq!(
                    columns[2].references,
                    Some(("experiment".to_string(), "id".to_string()))
                );
                assert_eq!(columns[3].default, Some(Value::Int(0)));
                assert_eq!(columns[4].default, Some(Value::Bool(true)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_table_level_constraints() {
        let s = parse_statement(
            "CREATE TABLE x (a INT, b INT, PRIMARY KEY (a), FOREIGN KEY (b) REFERENCES y(id))",
        )
        .unwrap();
        match s {
            Statement::CreateTable { columns, .. } => {
                assert!(columns[0].primary_key);
                assert_eq!(columns[1].references, Some(("y".into(), "id".into())));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_multi_row() {
        let (s, params) =
            parse_statement_with_params("INSERT INTO m (name, trial) VALUES (?, ?), ('wall', 3)")
                .unwrap();
        assert_eq!(params, 2);
        match s {
            Statement::Insert(ins) => {
                assert_eq!(ins.columns, vec!["name", "trial"]);
                assert_eq!(ins.rows.len(), 2);
                assert_eq!(ins.rows[0][0], Expr::Param(0));
                assert_eq!(ins.rows[1][0], Expr::lit("wall"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_update_delete() {
        let s = parse_statement(
            "UPDATE trial SET name = 'x', node_count = node_count + 1 WHERE id = 9",
        )
        .unwrap();
        assert!(matches!(s, Statement::Update(_)));
        let s = parse_statement("DELETE FROM trial WHERE name LIKE 'tmp%'").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
    }

    #[test]
    fn parses_alter() {
        let s = parse_statement("ALTER TABLE application ADD COLUMN compiler TEXT").unwrap();
        assert!(matches!(s, Statement::AlterTableAddColumn { .. }));
        let s = parse_statement("ALTER TABLE application DROP COLUMN compiler").unwrap();
        assert!(matches!(s, Statement::AlterTableDropColumn { .. }));
    }

    #[test]
    fn parses_index_and_txn() {
        assert!(matches!(
            parse_statement("CREATE UNIQUE INDEX ix ON t (c)").unwrap(),
            Statement::CreateIndex { unique: true, .. }
        ));
        assert!(matches!(
            parse_statement("DROP INDEX ix").unwrap(),
            Statement::DropIndex { .. }
        ));
        assert!(matches!(
            parse_statement("BEGIN").unwrap(),
            Statement::Begin
        ));
        assert!(matches!(
            parse_statement("COMMIT TRANSACTION").unwrap(),
            Statement::Commit
        ));
        assert!(matches!(
            parse_statement("ROLLBACK;").unwrap(),
            Statement::Rollback
        ));
    }

    #[test]
    fn expression_precedence() {
        // 1 + 2 * 3 = 1 + (2*3)
        let s = parse_statement("SELECT 1 + 2 * 3").unwrap();
        match s {
            Statement::Select(sel) => match &sel.projections[0] {
                Projection::Expr {
                    expr:
                        Expr::Binary {
                            op: BinaryOp::Add,
                            right,
                            ..
                        },
                    ..
                } => assert!(matches!(
                    **right,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                )),
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_in_between_case() {
        let sqls = [
            "SELECT * FROM t WHERE a IN (1, 2, 3)",
            "SELECT * FROM t WHERE a NOT IN (1)",
            "SELECT * FROM t WHERE a BETWEEN 1 AND 10",
            "SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10",
            "SELECT * FROM t WHERE a IS NULL",
            "SELECT * FROM t WHERE a IS NOT NULL",
            "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t",
            "SELECT CAST(a AS TEXT) FROM t",
            "SELECT COALESCE(a, 0), ABS(-4), LOWER(name) FROM t",
        ];
        for sql in sqls {
            parse_statement(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELEKT 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("INSERT INTO t VALUES").is_err());
        assert!(parse_statement("SELECT 1 extra garbage ,").is_err());
        assert!(parse_statement("CREATE TABLE t (a WIDGET)").is_err());
    }

    #[test]
    fn table_wildcard_projection() {
        let s = parse_statement("SELECT t.*, e.name FROM t JOIN e ON t.id = e.id").unwrap();
        match s {
            Statement::Select(sel) => {
                assert_eq!(sel.projections[0], Projection::TableWildcard("t".into()));
            }
            other => panic!("{other:?}"),
        }
    }
}
