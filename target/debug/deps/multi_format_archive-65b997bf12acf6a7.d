/root/repo/target/debug/deps/multi_format_archive-65b997bf12acf6a7.d: tests/multi_format_archive.rs

/root/repo/target/debug/deps/multi_format_archive-65b997bf12acf6a7: tests/multi_format_archive.rs

tests/multi_format_archive.rs:
