//! Text report views and CUBE export.
//!
//! ParaProf offers "summary text views of performance data, with various
//! groupings and contextual highlighting" (paper §5.1); §7 plans CUBE
//! translation for the Expert tool. This example renders both from one
//! trial: the group breakdown, the top-events table with imbalance
//! highlighting, a per-thread view, and the CUBE XML export.
//!
//! Run with: `cargo run --example report_views`

use perfdmf::analysis::{render_profile_report, render_thread_view, ReportOptions};
use perfdmf::import::{export_cube, import_cube};
use perfdmf::profile::ThreadId;
use perfdmf::workload::Evh1Model;

fn main() {
    let profile = Evh1Model::default_mix(314).generate(8);
    let metric = profile.find_metric("GET_TIME_OF_DAY").expect("metric");

    let options = ReportOptions {
        top_events: 12,
        bar_width: 32,
        imbalance_threshold: 1.02, // the model's noise makes this visible
    };
    println!("{}", render_profile_report(&profile, metric, &options));
    println!(
        "{}",
        render_thread_view(&profile, metric, ThreadId::new(3, 0, 0), &options)
    );

    // CUBE export (paper §7 planned work) and sanity re-import.
    let cube = export_cube(&profile);
    let back = import_cube(&cube).expect("re-import");
    println!(
        "CUBE export: {} bytes; re-imported {} events × {} threads × {} metrics",
        cube.len(),
        back.events().len(),
        back.threads().len(),
        back.metrics().len()
    );
    let head: String = cube.chars().take(200).collect();
    println!("document head: {head}...");
}
