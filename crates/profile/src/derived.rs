//! Derived metrics.
//!
//! The paper (§3.2): "Because some analysis tools also generate derived
//! data, derived metrics can be saved with the profile data in the database
//! using the PerfDMF API" — e.g. FLOPS = PAPI_FP_OPS / time.
//!
//! A derived metric is described by an arithmetic expression over existing
//! metric names. The expression is evaluated independently for the
//! inclusive and exclusive fields of every (event, thread) combination;
//! call/subroutine counts are copied from the first operand metric (they
//! are metric-independent in TAU).
//!
//! Grammar: `expr := term (('+'|'-') term)*`, `term := factor (('*'|'/')
//! factor)*`, `factor := NUMBER | IDENT | '"' name '"' | '(' expr ')' |
//! '-' factor`. Identifiers name metrics; quoted strings allow metric
//! names with spaces.

use crate::event::Metric;
use crate::interval::{IntervalData, UNDEFINED};
use crate::profile::{MetricId, Profile};
use std::fmt;

/// A parsed derived-metric expression.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricExpr {
    /// Numeric constant.
    Constant(f64),
    /// Reference to a metric by name.
    Metric(String),
    /// Negation.
    Neg(Box<MetricExpr>),
    /// Binary arithmetic.
    Binary {
        op: char,
        left: Box<MetricExpr>,
        right: Box<MetricExpr>,
    },
}

/// Error from parsing or evaluating a metric expression.
#[derive(Debug, Clone, PartialEq)]
pub enum DerivedError {
    /// Syntax error with offset.
    Parse { message: String, offset: usize },
    /// Expression references a metric the profile does not have.
    UnknownMetric(String),
    /// The target name already exists.
    MetricExists(String),
}

impl fmt::Display for DerivedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DerivedError::Parse { message, offset } => {
                write!(f, "metric expression error at {offset}: {message}")
            }
            DerivedError::UnknownMetric(m) => write!(f, "unknown metric {m:?}"),
            DerivedError::MetricExists(m) => write!(f, "metric {m:?} already exists"),
        }
    }
}

impl std::error::Error for DerivedError {}

impl MetricExpr {
    /// Parse an expression.
    pub fn parse(src: &str) -> Result<MetricExpr, DerivedError> {
        let mut p = Parser {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
        };
        let e = p.expr()?;
        p.skip_ws();
        if p.pos < p.chars.len() {
            return Err(DerivedError::Parse {
                message: "trailing input".into(),
                offset: p.offset(),
            });
        }
        Ok(e)
    }

    /// Names of all metrics the expression references.
    pub fn metric_names(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_names(&mut out);
        out
    }

    fn collect_names<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            MetricExpr::Constant(_) => {}
            MetricExpr::Metric(m) => {
                if !out.contains(&m.as_str()) {
                    out.push(m);
                }
            }
            MetricExpr::Neg(e) => e.collect_names(out),
            MetricExpr::Binary { left, right, .. } => {
                left.collect_names(out);
                right.collect_names(out);
            }
        }
    }

    /// Evaluate with a metric-name → value resolver. Returns NaN for
    /// undefined operands or division by zero (the undefined sentinel).
    pub fn eval(&self, resolve: &impl Fn(&str) -> f64) -> f64 {
        match self {
            MetricExpr::Constant(c) => *c,
            MetricExpr::Metric(m) => resolve(m),
            MetricExpr::Neg(e) => -e.eval(resolve),
            MetricExpr::Binary { op, left, right } => {
                let l = left.eval(resolve);
                let r = right.eval(resolve);
                match op {
                    '+' => l + r,
                    '-' => l - r,
                    '*' => l * r,
                    '/' => {
                        if r == 0.0 {
                            UNDEFINED
                        } else {
                            l / r
                        }
                    }
                    _ => UNDEFINED,
                }
            }
        }
    }
}

struct Parser<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser<'_> {
    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|(i, _)| *i)
            .unwrap_or(self.src.len())
    }

    fn skip_ws(&mut self) {
        while self
            .chars
            .get(self.pos)
            .is_some_and(|(_, c)| c.is_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).map(|(_, c)| *c)
    }

    fn expr(&mut self) -> Result<MetricExpr, DerivedError> {
        let mut left = self.term()?;
        while let Some(op @ ('+' | '-')) = self.peek() {
            self.pos += 1;
            let right = self.term()?;
            left = MetricExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<MetricExpr, DerivedError> {
        let mut left = self.factor()?;
        while let Some(op @ ('*' | '/')) = self.peek() {
            self.pos += 1;
            let right = self.factor()?;
            left = MetricExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<MetricExpr, DerivedError> {
        match self.peek() {
            Some('-') => {
                self.pos += 1;
                Ok(MetricExpr::Neg(Box::new(self.factor()?)))
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.expr()?;
                if self.peek() != Some(')') {
                    return Err(DerivedError::Parse {
                        message: "expected ')'".into(),
                        offset: self.offset(),
                    });
                }
                self.pos += 1;
                Ok(inner)
            }
            Some('"') => {
                self.pos += 1;
                let start = self.pos;
                while self.chars.get(self.pos).is_some_and(|(_, c)| *c != '"') {
                    self.pos += 1;
                }
                if self.pos >= self.chars.len() {
                    return Err(DerivedError::Parse {
                        message: "unterminated quoted metric name".into(),
                        offset: self.offset(),
                    });
                }
                let name: String = self.chars[start..self.pos].iter().map(|(_, c)| c).collect();
                self.pos += 1;
                Ok(MetricExpr::Metric(name))
            }
            Some(c) if c.is_ascii_digit() || c == '.' => {
                let start = self.pos;
                let mut seen_e = false;
                while let Some((_, c)) = self.chars.get(self.pos) {
                    if c.is_ascii_digit() || *c == '.' {
                        self.pos += 1;
                    } else if (*c == 'e' || *c == 'E') && !seen_e {
                        // exponent must be followed by digit or sign
                        match self.chars.get(self.pos + 1) {
                            Some((_, n)) if n.is_ascii_digit() || *n == '+' || *n == '-' => {
                                seen_e = true;
                                self.pos += 2;
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                let text: String = self.chars[start..self.pos].iter().map(|(_, c)| c).collect();
                text.parse::<f64>()
                    .map(MetricExpr::Constant)
                    .map_err(|_| DerivedError::Parse {
                        message: format!("bad number {text:?}"),
                        offset: self.offset(),
                    })
            }
            Some(c) if c.is_alphabetic() || c == '_' => {
                let start = self.pos;
                while self
                    .chars
                    .get(self.pos)
                    .is_some_and(|(_, c)| c.is_alphanumeric() || *c == '_')
                {
                    self.pos += 1;
                }
                let name: String = self.chars[start..self.pos].iter().map(|(_, c)| c).collect();
                Ok(MetricExpr::Metric(name))
            }
            other => Err(DerivedError::Parse {
                message: format!("unexpected {other:?}"),
                offset: self.offset(),
            }),
        }
    }
}

/// Compute a derived metric and add it to the profile.
///
/// Evaluates `expr` over the inclusive and exclusive fields independently
/// for every (event, thread); copies calls/subroutines from the first
/// referenced metric. Returns the new metric's id.
pub fn derive_metric(
    profile: &mut Profile,
    name: &str,
    expr: &MetricExpr,
) -> Result<MetricId, DerivedError> {
    if profile.find_metric(name).is_some() {
        return Err(DerivedError::MetricExists(name.to_string()));
    }
    // Resolve referenced metrics up front.
    let mut sources: Vec<(String, MetricId)> = Vec::new();
    for m in expr.metric_names() {
        let id = profile
            .find_metric(m)
            .ok_or_else(|| DerivedError::UnknownMetric(m.to_string()))?;
        sources.push((m.to_string(), id));
    }
    let new_id = profile.add_metric(Metric::derived(name));
    let events: Vec<_> = (0..profile.events().len())
        .map(crate::profile::EventId)
        .collect();
    let threads = profile.threads().to_vec();
    for &event in &events {
        for &thread in &threads {
            // Gather operand values.
            let mut incl_vals = Vec::with_capacity(sources.len());
            let mut excl_vals = Vec::with_capacity(sources.len());
            let mut calls = UNDEFINED;
            let mut subrs = UNDEFINED;
            let mut any = false;
            for (i, (_, mid)) in sources.iter().enumerate() {
                match profile.interval(event, thread, *mid) {
                    Some(d) => {
                        any = true;
                        incl_vals.push(d.inclusive);
                        excl_vals.push(d.exclusive);
                        if i == 0 {
                            calls = d.calls;
                            subrs = d.subroutines;
                        }
                    }
                    None => {
                        incl_vals.push(UNDEFINED);
                        excl_vals.push(UNDEFINED);
                    }
                }
            }
            if !any && !sources.is_empty() {
                continue;
            }
            let resolve_incl = |m: &str| -> f64 {
                sources
                    .iter()
                    .position(|(n, _)| n == m)
                    .map(|i| incl_vals[i])
                    .unwrap_or(UNDEFINED)
            };
            let resolve_excl = |m: &str| -> f64 {
                sources
                    .iter()
                    .position(|(n, _)| n == m)
                    .map(|i| excl_vals[i])
                    .unwrap_or(UNDEFINED)
            };
            let incl = expr.eval(&resolve_incl);
            let excl = expr.eval(&resolve_excl);
            let mut d = IntervalData::new(incl, excl, calls, subrs);
            if incl.is_nan() && excl.is_nan() && calls.is_nan() && subrs.is_nan() {
                continue;
            }
            d.inclusive_percent = UNDEFINED;
            d.exclusive_percent = UNDEFINED;
            profile.set_interval(event, thread, new_id, d);
        }
    }
    profile.recompute_derived_fields(new_id);
    Ok(new_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::IntervalEvent;
    use crate::thread::ThreadId;

    #[test]
    fn parse_shapes() {
        let e = MetricExpr::parse("PAPI_FP_OPS / GET_TIME_OF_DAY * 1e6").unwrap();
        assert_eq!(e.metric_names(), vec!["PAPI_FP_OPS", "GET_TIME_OF_DAY"]);
        let e = MetricExpr::parse("\"L2 cache misses\" + 1").unwrap();
        assert_eq!(e.metric_names(), vec!["L2 cache misses"]);
        assert!(MetricExpr::parse("1 +").is_err());
        assert!(MetricExpr::parse("(1").is_err());
        assert!(MetricExpr::parse("\"open").is_err());
        assert!(MetricExpr::parse("2 2").is_err());
    }

    #[test]
    fn eval_precedence() {
        let e = MetricExpr::parse("1 + 2 * 3").unwrap();
        assert_eq!(e.eval(&|_| 0.0), 7.0);
        let e = MetricExpr::parse("(1 + 2) * 3").unwrap();
        assert_eq!(e.eval(&|_| 0.0), 9.0);
        let e = MetricExpr::parse("-X / 2").unwrap();
        assert_eq!(e.eval(&|_| 10.0), -5.0);
        let e = MetricExpr::parse("1 / 0").unwrap();
        assert!(e.eval(&|_| 0.0).is_nan());
    }

    #[test]
    fn derive_flops() {
        let mut p = Profile::new("t");
        let time = p.add_metric(Metric::measured("TIME"));
        let fp = p.add_metric(Metric::measured("PAPI_FP_OPS"));
        let e = p.add_event(IntervalEvent::ungrouped("main"));
        p.add_thread(ThreadId::ZERO);
        p.set_interval(
            e,
            ThreadId::ZERO,
            time,
            IntervalData::new(2.0, 2.0, 1.0, 0.0),
        );
        p.set_interval(
            e,
            ThreadId::ZERO,
            fp,
            IntervalData::new(8.0e9, 8.0e9, 1.0, 0.0),
        );
        let expr = MetricExpr::parse("PAPI_FP_OPS / TIME").unwrap();
        let flops = derive_metric(&mut p, "FLOPS", &expr).unwrap();
        let d = p.interval(e, ThreadId::ZERO, flops).unwrap();
        assert_eq!(d.inclusive(), Some(4.0e9));
        assert_eq!(d.calls(), Some(1.0));
        assert!(p.metric(flops).derived);
    }

    #[test]
    fn derive_rejects_unknown_and_duplicate() {
        let mut p = Profile::new("t");
        p.add_metric(Metric::measured("TIME"));
        let expr = MetricExpr::parse("NOPE / TIME").unwrap();
        assert!(matches!(
            derive_metric(&mut p, "X", &expr),
            Err(DerivedError::UnknownMetric(_))
        ));
        let expr = MetricExpr::parse("TIME * 2").unwrap();
        assert!(matches!(
            derive_metric(&mut p, "TIME", &expr),
            Err(DerivedError::MetricExists(_))
        ));
    }

    #[test]
    fn derive_skips_missing_combinations() {
        let mut p = Profile::new("t");
        let time = p.add_metric(Metric::measured("TIME"));
        let e1 = p.add_event(IntervalEvent::ungrouped("a"));
        let e2 = p.add_event(IntervalEvent::ungrouped("b"));
        p.add_thread(ThreadId::ZERO);
        p.set_interval(
            e1,
            ThreadId::ZERO,
            time,
            IntervalData::new(4.0, 4.0, 2.0, 0.0),
        );
        let expr = MetricExpr::parse("TIME / 2").unwrap();
        let half = derive_metric(&mut p, "HALF", &expr).unwrap();
        assert_eq!(
            p.interval(e1, ThreadId::ZERO, half).unwrap().inclusive(),
            Some(2.0)
        );
        assert!(p.interval(e2, ThreadId::ZERO, half).is_none());
    }
}
