/root/repo/target/debug/deps/perfdmf_import-fc7035d2f09e99dc.d: crates/import/src/lib.rs crates/import/src/cube.rs crates/import/src/dynaprof.rs crates/import/src/error.rs crates/import/src/gprof.rs crates/import/src/hpm.rs crates/import/src/mpip.rs crates/import/src/psrun.rs crates/import/src/source.rs crates/import/src/sppm.rs crates/import/src/tau.rs crates/import/src/xml_format.rs Cargo.toml

/root/repo/target/debug/deps/libperfdmf_import-fc7035d2f09e99dc.rmeta: crates/import/src/lib.rs crates/import/src/cube.rs crates/import/src/dynaprof.rs crates/import/src/error.rs crates/import/src/gprof.rs crates/import/src/hpm.rs crates/import/src/mpip.rs crates/import/src/psrun.rs crates/import/src/source.rs crates/import/src/sppm.rs crates/import/src/tau.rs crates/import/src/xml_format.rs Cargo.toml

crates/import/src/lib.rs:
crates/import/src/cube.rs:
crates/import/src/dynaprof.rs:
crates/import/src/error.rs:
crates/import/src/gprof.rs:
crates/import/src/hpm.rs:
crates/import/src/mpip.rs:
crates/import/src/psrun.rs:
crates/import/src/source.rs:
crates/import/src/sppm.rs:
crates/import/src/tau.rs:
crates/import/src/xml_format.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
