//! Persistence: binary snapshots and a write-ahead log.
//!
//! A database directory contains:
//!
//! * `snapshot.pdmf` — a full binary image of all tables, written by
//!   [`write_snapshot`] (checkpoint).
//! * `wal.pdmf` — a log of committed row-level and DDL changes appended
//!   after the snapshot was taken. On open, the snapshot is loaded and the
//!   WAL replayed; a torn/corrupt tail (e.g. from a crash mid-append) is
//!   detected by per-record checksums and ignored from the first bad record
//!   onward, recovering the last fully committed state.
//!
//! Encoding is little-endian throughout, built on the `bytes` crate.

use crate::error::{DbError, Result};
use crate::schema::{ColumnDef, TableSchema};
use crate::table::{Row, RowId, Table};
use crate::value::{DataType, Value};
use bytes::{Buf, BufMut};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

const SNAPSHOT_MAGIC: &[u8; 4] = b"PDMF";
const WAL_MAGIC: &[u8; 4] = b"PWAL";
const FORMAT_VERSION: u32 = 1;

/// A committed change, as recorded in the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Row inserted at a specific slot.
    Insert { table: String, id: RowId, row: Row },
    /// Row deleted.
    Delete { table: String, id: RowId },
    /// Row replaced.
    Update { table: String, id: RowId, row: Row },
    /// Table created.
    CreateTable { schema: TableSchema },
    /// Table dropped.
    DropTable { name: String },
    /// Column added.
    AddColumn { table: String, column: ColumnDef },
    /// Column removed.
    DropColumn { table: String, column: String },
    /// Secondary index created.
    CreateIndex {
        table: String,
        name: String,
        column: String,
        unique: bool,
    },
    /// Secondary index dropped.
    DropIndex { table: String, name: String },
    /// Transaction commit marker; replay applies records only up to the
    /// last marker.
    Commit,
}

// ---------------- primitive encoding ----------------

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(DbError::Corrupt("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(DbError::Corrupt("truncated string body".into()));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| DbError::Corrupt("invalid UTF-8".into()))
}

/// Encode a value.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64_le(*f);
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.put_u8(4);
            buf.put_u8(*b as u8);
        }
        Value::Bytes(b) => {
            buf.put_u8(5);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
    }
}

/// Decode a value.
pub fn get_value(buf: &mut &[u8]) -> Result<Value> {
    if buf.remaining() < 1 {
        return Err(DbError::Corrupt("truncated value tag".into()));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated int".into()));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        3 => Ok(Value::Text(get_str(buf)?)),
        4 => {
            if buf.remaining() < 1 {
                return Err(DbError::Corrupt("truncated bool".into()));
            }
            Ok(Value::Bool(buf.get_u8() != 0))
        }
        5 => {
            if buf.remaining() < 4 {
                return Err(DbError::Corrupt("truncated blob length".into()));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(DbError::Corrupt("truncated blob body".into()));
            }
            Ok(Value::Bytes(buf.copy_to_bytes(len).to_vec()))
        }
        t => Err(DbError::Corrupt(format!("unknown value tag {t}"))),
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    buf.put_u32_le(row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn get_row(buf: &mut &[u8]) -> Result<Row> {
    if buf.remaining() < 4 {
        return Err(DbError::Corrupt("truncated row length".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(get_value(buf)?);
    }
    Ok(row)
}

fn data_type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Double => 1,
        DataType::Text => 2,
        DataType::Boolean => 3,
        DataType::Blob => 4,
    }
}

fn data_type_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Integer,
        1 => DataType::Double,
        2 => DataType::Text,
        3 => DataType::Boolean,
        4 => DataType::Blob,
        other => return Err(DbError::Corrupt(format!("unknown type tag {other}"))),
    })
}

fn put_column(buf: &mut Vec<u8>, c: &ColumnDef) {
    put_str(buf, &c.name);
    buf.put_u8(data_type_tag(c.ty));
    let mut flags = 0u8;
    if c.not_null {
        flags |= 1;
    }
    if c.unique {
        flags |= 2;
    }
    if c.primary_key {
        flags |= 4;
    }
    if c.auto_increment {
        flags |= 8;
    }
    buf.put_u8(flags);
    match &c.default {
        Some(v) => {
            buf.put_u8(1);
            put_value(buf, v);
        }
        None => buf.put_u8(0),
    }
    match &c.references {
        Some((t, col)) => {
            buf.put_u8(1);
            put_str(buf, t);
            put_str(buf, col);
        }
        None => buf.put_u8(0),
    }
}

fn get_column(buf: &mut &[u8]) -> Result<ColumnDef> {
    let name = get_str(buf)?;
    if buf.remaining() < 2 {
        return Err(DbError::Corrupt("truncated column def".into()));
    }
    let ty = data_type_from_tag(buf.get_u8())?;
    let flags = buf.get_u8();
    let mut col = ColumnDef::new(name, ty);
    col.not_null = flags & 1 != 0;
    col.unique = flags & 2 != 0;
    col.primary_key = flags & 4 != 0;
    col.auto_increment = flags & 8 != 0;
    if buf.remaining() < 1 {
        return Err(DbError::Corrupt("truncated default marker".into()));
    }
    if buf.get_u8() == 1 {
        col.default = Some(get_value(buf)?);
    }
    if buf.remaining() < 1 {
        return Err(DbError::Corrupt("truncated references marker".into()));
    }
    if buf.get_u8() == 1 {
        let t = get_str(buf)?;
        let c = get_str(buf)?;
        col.references = Some((t, c));
    }
    Ok(col)
}

fn put_schema(buf: &mut Vec<u8>, s: &TableSchema) {
    put_str(buf, &s.name);
    buf.put_u32_le(s.columns.len() as u32);
    for c in &s.columns {
        put_column(buf, c);
    }
}

fn get_schema(buf: &mut &[u8]) -> Result<TableSchema> {
    let name = get_str(buf)?;
    if buf.remaining() < 4 {
        return Err(DbError::Corrupt("truncated schema".into()));
    }
    let n = buf.get_u32_le() as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        columns.push(get_column(buf)?);
    }
    TableSchema::new(name, columns)
}

// ---------------- WAL record encoding ----------------

/// Encode a WAL record payload (without framing).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match rec {
        WalRecord::Insert { table, id, row } => {
            buf.put_u8(1);
            put_str(&mut buf, table);
            buf.put_u64_le(*id);
            put_row(&mut buf, row);
        }
        WalRecord::Delete { table, id } => {
            buf.put_u8(2);
            put_str(&mut buf, table);
            buf.put_u64_le(*id);
        }
        WalRecord::Update { table, id, row } => {
            buf.put_u8(3);
            put_str(&mut buf, table);
            buf.put_u64_le(*id);
            put_row(&mut buf, row);
        }
        WalRecord::CreateTable { schema } => {
            buf.put_u8(4);
            put_schema(&mut buf, schema);
        }
        WalRecord::DropTable { name } => {
            buf.put_u8(5);
            put_str(&mut buf, name);
        }
        WalRecord::AddColumn { table, column } => {
            buf.put_u8(6);
            put_str(&mut buf, table);
            put_column(&mut buf, column);
        }
        WalRecord::DropColumn { table, column } => {
            buf.put_u8(7);
            put_str(&mut buf, table);
            put_str(&mut buf, column);
        }
        WalRecord::CreateIndex {
            table,
            name,
            column,
            unique,
        } => {
            buf.put_u8(8);
            put_str(&mut buf, table);
            put_str(&mut buf, name);
            put_str(&mut buf, column);
            buf.put_u8(*unique as u8);
        }
        WalRecord::DropIndex { table, name } => {
            buf.put_u8(9);
            put_str(&mut buf, table);
            put_str(&mut buf, name);
        }
        WalRecord::Commit => {
            buf.put_u8(10);
        }
    }
    buf
}

/// Decode a WAL record payload.
pub fn decode_record(mut buf: &[u8]) -> Result<WalRecord> {
    let b = &mut buf;
    if b.remaining() < 1 {
        return Err(DbError::Corrupt("empty WAL record".into()));
    }
    let rec = match b.get_u8() {
        1 => WalRecord::Insert {
            table: get_str(b)?,
            id: {
                if b.remaining() < 8 {
                    return Err(DbError::Corrupt("truncated row id".into()));
                }
                b.get_u64_le()
            },
            row: get_row(b)?,
        },
        2 => WalRecord::Delete {
            table: get_str(b)?,
            id: {
                if b.remaining() < 8 {
                    return Err(DbError::Corrupt("truncated row id".into()));
                }
                b.get_u64_le()
            },
        },
        3 => WalRecord::Update {
            table: get_str(b)?,
            id: {
                if b.remaining() < 8 {
                    return Err(DbError::Corrupt("truncated row id".into()));
                }
                b.get_u64_le()
            },
            row: get_row(b)?,
        },
        4 => WalRecord::CreateTable {
            schema: get_schema(b)?,
        },
        5 => WalRecord::DropTable { name: get_str(b)? },
        6 => WalRecord::AddColumn {
            table: get_str(b)?,
            column: get_column(b)?,
        },
        7 => WalRecord::DropColumn {
            table: get_str(b)?,
            column: get_str(b)?,
        },
        8 => WalRecord::CreateIndex {
            table: get_str(b)?,
            name: get_str(b)?,
            column: get_str(b)?,
            unique: {
                if b.remaining() < 1 {
                    return Err(DbError::Corrupt("truncated unique flag".into()));
                }
                b.get_u8() != 0
            },
        },
        9 => WalRecord::DropIndex {
            table: get_str(b)?,
            name: get_str(b)?,
        },
        10 => WalRecord::Commit,
        t => return Err(DbError::Corrupt(format!("unknown WAL tag {t}"))),
    };
    if b.remaining() != 0 {
        return Err(DbError::Corrupt("trailing bytes in WAL record".into()));
    }
    Ok(rec)
}

/// FNV-1a checksum (fast, fine for torn-write detection).
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ---------------- WAL file ----------------

/// Append-only write-ahead log handle.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path`.
    pub fn open(path: &Path) -> Result<Wal> {
        let exists = path.exists();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        if !exists {
            file.write_all(WAL_MAGIC)?;
            let mut ver = Vec::new();
            ver.put_u32_le(FORMAT_VERSION);
            file.write_all(&ver)?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Append a batch of records followed by framing checksums; flushes to
    /// the OS at the end (one syscall per batch, not per record).
    pub fn append(&mut self, records: &[WalRecord]) -> Result<()> {
        let mut out = Vec::with_capacity(records.len() * 64);
        for rec in records {
            let payload = encode_record(rec);
            out.put_u32_le(payload.len() as u32);
            out.put_slice(&payload);
            out.put_u64_le(fnv1a(&payload));
        }
        self.file.write_all(&out)?;
        self.file.flush()?;
        Ok(())
    }

    /// Truncate the log back to empty (after a checkpoint).
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::Start(0))?;
        self.file.write_all(WAL_MAGIC)?;
        let mut ver = Vec::new();
        ver.put_u32_le(FORMAT_VERSION);
        self.file.write_all(&ver)?;
        self.file.flush()?;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Read all *committed* records from a WAL file.
///
/// Records after the last `Commit` marker, and anything after the first
/// corrupt/truncated record, are discarded.
pub fn read_wal(path: &Path) -> Result<Vec<WalRecord>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let mut buf = bytes.as_slice();
    if buf.len() < 8 || &buf[..4] != WAL_MAGIC {
        return Err(DbError::Corrupt("bad WAL magic".into()));
    }
    buf.advance(4);
    let version = buf.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(DbError::Corrupt(format!(
            "unsupported WAL version {version}"
        )));
    }
    let mut all = Vec::new();
    let mut committed_len = 0usize;
    while buf.remaining() >= 4 {
        let len = buf[..4].to_vec();
        let len = u32::from_le_bytes([len[0], len[1], len[2], len[3]]) as usize;
        if buf.remaining() < 4 + len + 8 {
            break; // torn tail
        }
        let payload = &buf[4..4 + len];
        let mut sum_bytes = &buf[4 + len..4 + len + 8];
        let stored = sum_bytes.get_u64_le();
        if fnv1a(payload) != stored {
            break; // corrupt record: stop replay here
        }
        match decode_record(payload) {
            Ok(rec) => {
                let is_commit = rec == WalRecord::Commit;
                all.push(rec);
                if is_commit {
                    committed_len = all.len();
                }
            }
            Err(_) => break,
        }
        buf.advance(4 + len + 8);
    }
    all.truncate(committed_len);
    Ok(all)
}

// ---------------- snapshot ----------------

/// Serialize all tables to a snapshot file (atomic: write temp + rename).
pub fn write_snapshot(path: &Path, tables: &[(&String, &Table)]) -> Result<()> {
    let mut buf = Vec::with_capacity(1 << 16);
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u32_le(FORMAT_VERSION);
    buf.put_u32_le(tables.len() as u32);
    for (_, table) in tables {
        put_schema(&mut buf, &table.schema);
        buf.put_i64_le(table.next_auto_value());
        buf.put_u64_le(table.len() as u64);
        for (id, row) in table.iter() {
            buf.put_u64_le(id);
            put_row(&mut buf, row);
        }
        // persist explicit (non-implicit) indexes: name, column name, unique
        let named: Vec<_> = table
            .indexes
            .iter()
            .filter(|(n, _)| !n.starts_with("__uniq_"))
            .collect();
        buf.put_u32_le(named.len() as u32);
        for (name, ix) in named {
            put_str(&mut buf, name);
            put_str(&mut buf, &table.schema.columns[ix.column].name);
            buf.put_u8(ix.unique as u8);
        }
    }
    let sum = fnv1a(&buf);
    buf.put_u64_le(sum);
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all().ok();
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load tables from a snapshot file.
pub fn read_snapshot(path: &Path) -> Result<Vec<Table>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 20 {
        return Err(DbError::Corrupt("snapshot too small".into()));
    }
    let body_len = bytes.len() - 8;
    let mut tail = &bytes[body_len..];
    let stored = tail.get_u64_le();
    if fnv1a(&bytes[..body_len]) != stored {
        return Err(DbError::Corrupt("snapshot checksum mismatch".into()));
    }
    let mut buf = &bytes[..body_len];
    if &buf[..4] != SNAPSHOT_MAGIC {
        return Err(DbError::Corrupt("bad snapshot magic".into()));
    }
    buf.advance(4);
    let version = buf.get_u32_le();
    if version != FORMAT_VERSION {
        return Err(DbError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let ntables = buf.get_u32_le() as usize;
    let mut tables = Vec::with_capacity(ntables);
    for _ in 0..ntables {
        let schema = get_schema(&mut buf)?;
        if buf.remaining() < 16 {
            return Err(DbError::Corrupt("truncated table header".into()));
        }
        let next_auto = buf.get_i64_le();
        let nrows = buf.get_u64_le() as usize;
        let mut table = Table::new(schema);
        for _ in 0..nrows {
            if buf.remaining() < 8 {
                return Err(DbError::Corrupt("truncated row id".into()));
            }
            let id = buf.get_u64_le();
            let row = get_row(&mut buf)?;
            table.insert_at(id, row)?;
        }
        table.set_next_auto_value(next_auto);
        if buf.remaining() < 4 {
            return Err(DbError::Corrupt("truncated index count".into()));
        }
        let nix = buf.get_u32_le() as usize;
        for _ in 0..nix {
            let name = get_str(&mut buf)?;
            let column = get_str(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(DbError::Corrupt("truncated index flags".into()));
            }
            let unique = buf.get_u8() != 0;
            table.create_index(&name, &column, unique)?;
        }
        tables.push(table);
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> TableSchema {
        TableSchema::new(
            "trial",
            vec![
                ColumnDef::new("id", DataType::Integer)
                    .primary_key()
                    .auto_increment(),
                ColumnDef::new("name", DataType::Text).not_null(),
                ColumnDef::new("nodes", DataType::Integer).default_value(1i64),
                ColumnDef::new("score", DataType::Double),
                ColumnDef::new("experiment", DataType::Integer).references("experiment", "id"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_roundtrip() {
        let vals = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(3.5),
            Value::Float(f64::NAN),
            Value::Text("λ profile".into()),
            Value::Bool(true),
            Value::Bytes(vec![0, 1, 255]),
        ];
        for v in vals {
            let mut buf = Vec::new();
            put_value(&mut buf, &v);
            let mut slice = buf.as_slice();
            let back = get_value(&mut slice).unwrap();
            assert_eq!(back, v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn schema_roundtrip() {
        let s = sample_schema();
        let mut buf = Vec::new();
        put_schema(&mut buf, &s);
        let mut slice = buf.as_slice();
        assert_eq!(get_schema(&mut slice).unwrap(), s);
    }

    #[test]
    fn record_roundtrip() {
        let records = vec![
            WalRecord::Insert {
                table: "t".into(),
                id: 7,
                row: vec![Value::Int(1), Value::Text("x".into())],
            },
            WalRecord::Delete {
                table: "t".into(),
                id: 7,
            },
            WalRecord::Update {
                table: "t".into(),
                id: 3,
                row: vec![Value::Null],
            },
            WalRecord::CreateTable {
                schema: sample_schema(),
            },
            WalRecord::DropTable { name: "t".into() },
            WalRecord::AddColumn {
                table: "t".into(),
                column: ColumnDef::new("c", DataType::Text),
            },
            WalRecord::DropColumn {
                table: "t".into(),
                column: "c".into(),
            },
            WalRecord::CreateIndex {
                table: "t".into(),
                name: "ix".into(),
                column: "c".into(),
                unique: true,
            },
            WalRecord::DropIndex {
                table: "t".into(),
                name: "ix".into(),
            },
            WalRecord::Commit,
        ];
        for rec in records {
            let enc = encode_record(&rec);
            assert_eq!(decode_record(&enc).unwrap(), rec);
        }
    }

    #[test]
    fn wal_append_and_read() {
        let dir = std::env::temp_dir().join(format!("pdmf_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal_append.pdmf");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&[
            WalRecord::Insert {
                table: "t".into(),
                id: 0,
                row: vec![Value::Int(1)],
            },
            WalRecord::Commit,
        ])
        .unwrap();
        wal.append(&[WalRecord::Delete {
            table: "t".into(),
            id: 0,
        }])
        .unwrap(); // no commit marker: must be dropped on read
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], WalRecord::Commit);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_torn_tail_recovery() {
        let dir = std::env::temp_dir().join(format!("pdmf_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal_torn.pdmf");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&[
            WalRecord::Insert {
                table: "t".into(),
                id: 0,
                row: vec![Value::Int(1)],
            },
            WalRecord::Commit,
        ])
        .unwrap();
        drop(wal);
        // Simulate a crash mid-append: write garbage bytes at the end.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9, 9, 9]).unwrap();
        drop(f);
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs.len(), 2, "committed prefix survives torn tail");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_corrupt_checksum_recovery() {
        let dir = std::env::temp_dir().join(format!("pdmf_wal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal_sum.pdmf");
        let _ = std::fs::remove_file(&path);
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&[WalRecord::Commit]).unwrap();
        let good_len = std::fs::metadata(&path).unwrap().len();
        wal.append(&[WalRecord::DropTable { name: "x".into() }, WalRecord::Commit])
            .unwrap();
        drop(wal);
        // Flip a byte inside the second batch.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = good_len as usize + 5;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recs = read_wal(&path).unwrap();
        assert_eq!(recs, vec![WalRecord::Commit]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut table = Table::new(sample_schema());
        table
            .insert(vec![
                Value::Null,
                "a".into(),
                Value::Int(4),
                Value::Float(1.5),
                Value::Null,
            ])
            .unwrap();
        table
            .insert(vec![
                Value::Null,
                "b".into(),
                Value::Int(8),
                Value::Null,
                Value::Null,
            ])
            .unwrap();
        table.create_index("ix_nodes", "nodes", false).unwrap();
        // Leave a tombstone to verify ids survive.
        let c = table
            .insert(vec![
                Value::Null,
                "c".into(),
                Value::Int(2),
                Value::Null,
                Value::Null,
            ])
            .unwrap();
        table.delete(1).unwrap();
        assert_eq!(c, 2);

        let dir = std::env::temp_dir().join(format!("pdmf_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.pdmf");
        let name = "trial".to_string();
        write_snapshot(&path, &[(&name, &table)]).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.len(), 1);
        let t2 = &back[0];
        assert_eq!(t2.schema, table.schema);
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.row(0).unwrap()[1], Value::Text("a".into()));
        assert!(t2.row(1).is_none());
        assert_eq!(t2.row(2).unwrap()[1], Value::Text("c".into()));
        assert_eq!(t2.next_auto_value(), table.next_auto_value());
        assert!(t2.indexes.contains_key("ix_nodes"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn snapshot_detects_corruption() {
        let table = Table::new(sample_schema());
        let dir = std::env::temp_dir().join(format!("pdmf_snap_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap_bad.pdmf");
        let name = "trial".to_string();
        write_snapshot(&path, &[(&name, &table)]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&path), Err(DbError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
