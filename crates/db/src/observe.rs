//! Telemetry for statement execution: latency histograms, row counters,
//! and the slow-query log.
//!
//! Every statement executed through [`crate::Connection`] (directly or
//! inside a transaction) passes through [`record_statement`], which
//! feeds `db.*` metrics in the global `perfdmf_telemetry` registry:
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `db.statement_latency_ns` | histogram | parse-excluded execution latency |
//! | `db.statements`           | counter   | statements executed |
//! | `db.statement_errors`     | counter   | statements that returned an error |
//! | `db.rows_returned`        | counter   | SELECT rows handed to callers |
//! | `db.rows_scanned`         | counter   | base-table rows materialized by SELECTs |
//! | `db.rows_affected`        | counter   | rows touched by DML |
//! | `db.slow_queries`         | counter   | statements at/over the threshold |
//!
//! Adjacent subsystems add their own `db.*` metrics: the columnar scan
//! path (`db.exec.columnar_scans`, `db.exec.colscan` span), the
//! column-chunk cache (`db.colcache.chunk_hits` / `.chunk_misses` /
//! `.budget_declines`, `db.colcache.build` span), and the
//! prepared-statement parse cache (`db.sql.parse_cache_hits` /
//! `.parse_cache_misses`). See `docs/columnar.md`.
//!
//! Statements slower than the configurable threshold additionally emit a
//! `slow_query` structured event carrying the SQL text (truncated),
//! latency, and row counts, and are retained in a bounded process-wide
//! ring ([`slow_query_log`]) that backs the `perfdmf_slow_queries`
//! virtual system table.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::Result;
use crate::exec::Outcome;
use perfdmf_telemetry as telemetry;

/// Default slow-query threshold: 50ms.
const DEFAULT_SLOW_QUERY_NS: u64 = 50_000_000;

/// Longest SQL prefix included in a `slow_query` event.
const SQL_SNIPPET_LEN: usize = 512;

/// Slow statements retained by the ring (oldest evicted first).
const SLOW_LOG_CAPACITY: usize = 256;

/// One retained slow statement, as exposed by `perfdmf_slow_queries`.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowQueryRecord {
    /// Monotonically increasing record number (survives eviction).
    pub seq: u64,
    /// The SQL text, truncated to 512 bytes.
    pub sql: String,
    /// Execution latency in nanoseconds (parse excluded).
    pub elapsed_ns: u64,
    /// SELECT rows handed to the caller.
    pub rows_returned: u64,
    /// Base-table rows materialized during execution.
    pub rows_scanned: u64,
    /// Rows touched when the statement was DML.
    pub rows_affected: u64,
    /// False when the statement returned an error.
    pub ok: bool,
}

#[derive(Default)]
struct SlowLog {
    ring: VecDeque<SlowQueryRecord>,
    next_seq: u64,
}

fn slow_log() -> &'static Mutex<SlowLog> {
    static LOG: OnceLock<Mutex<SlowLog>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(SlowLog::default()))
}

/// Copy of the retained slow statements, oldest first.
pub fn slow_query_log() -> Vec<SlowQueryRecord> {
    slow_log().lock().ring.iter().cloned().collect()
}

/// Drop all retained slow statements (sequence numbers keep counting).
pub fn clear_slow_query_log() {
    slow_log().lock().ring.clear();
}

fn retain_slow_query(mut record: SlowQueryRecord) {
    let mut log = slow_log().lock();
    record.seq = log.next_seq;
    log.next_seq += 1;
    if log.ring.len() >= SLOW_LOG_CAPACITY {
        log.ring.pop_front();
    }
    log.ring.push_back(record);
}

static SLOW_QUERY_THRESHOLD_NS: AtomicU64 = AtomicU64::new(DEFAULT_SLOW_QUERY_NS);

/// Statements at or above this duration emit a `slow_query` event.
pub fn slow_query_threshold() -> Duration {
    Duration::from_nanos(SLOW_QUERY_THRESHOLD_NS.load(Ordering::Relaxed))
}

/// Change the slow-query threshold process-wide. `Duration::ZERO` logs
/// every statement; `Duration::MAX`-ish values disable the log.
pub fn set_slow_query_threshold(threshold: Duration) {
    let ns = threshold.as_nanos().min(u64::MAX as u128) as u64;
    SLOW_QUERY_THRESHOLD_NS.store(ns, Ordering::Relaxed);
}

/// Record one executed statement into the telemetry registry and, when
/// slow, the event log. No-op while telemetry is disabled.
///
/// Called while the statement's `db.exec` span is still open, so with
/// causal tracing on the `slow_query` event is stamped with the active
/// trace id and can be joined to its span tree in a flight-recorder
/// dump.
pub fn record_statement(sql: &str, outcome: &Result<Outcome>, elapsed: Duration) {
    if !telemetry::enabled() {
        return;
    }
    telemetry::record_duration("db.statement_latency_ns", elapsed);
    telemetry::add("db.statements", 1);

    let (rows_returned, rows_scanned, rows_affected) = match outcome {
        Ok(Outcome::Rows(rs)) => (rs.rows.len() as u64, rs.rows_scanned, 0),
        Ok(Outcome::Affected { count, .. }) => (0, 0, *count as u64),
        Ok(Outcome::Done) => (0, 0, 0),
        Err(_) => {
            telemetry::add("db.statement_errors", 1);
            (0, 0, 0)
        }
    };
    telemetry::add("db.rows_returned", rows_returned);
    telemetry::add("db.rows_scanned", rows_scanned);
    telemetry::add("db.rows_affected", rows_affected);
    // Bill the scan to the in-flight network request, if one adopted a
    // meter on this thread (inert otherwise).
    telemetry::meter::add_rows_scanned(rows_scanned);

    if elapsed >= slow_query_threshold() {
        telemetry::add("db.slow_queries", 1);
        let snippet: String = if sql.len() > SQL_SNIPPET_LEN {
            let mut end = SQL_SNIPPET_LEN;
            while !sql.is_char_boundary(end) {
                end -= 1;
            }
            format!("{}…", &sql[..end])
        } else {
            sql.to_string()
        };
        let elapsed_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        telemetry::emit(
            telemetry::Event::new(telemetry::Severity::Warn, "slow_query")
                .field("sql", snippet.clone())
                .field("elapsed_ns", elapsed_ns)
                .field("rows_returned", rows_returned)
                .field("rows_scanned", rows_scanned)
                .field("rows_affected", rows_affected)
                .field("ok", u64::from(outcome.is_ok())),
        );
        retain_slow_query(SlowQueryRecord {
            seq: 0,
            sql: snippet,
            elapsed_ns,
            rows_returned,
            rows_scanned,
            rows_affected,
            ok: outcome.is_ok(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_configurable() {
        let before = slow_query_threshold();
        set_slow_query_threshold(Duration::from_millis(7));
        assert_eq!(slow_query_threshold(), Duration::from_millis(7));
        set_slow_query_threshold(before);
    }
}
