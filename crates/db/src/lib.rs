//! # perfdmf-db
//!
//! An embedded relational database engine — the DBMS substrate under
//! PerfDMF.
//!
//! The paper runs PerfDMF on PostgreSQL, MySQL, Oracle, or DB2 through
//! JDBC. This crate provides the equivalent substrate as a from-scratch
//! embedded engine so the framework is self-contained:
//!
//! * typed tables with PRIMARY KEY / UNIQUE / NOT NULL / FOREIGN KEY /
//!   DEFAULT / AUTO_INCREMENT constraints,
//! * ordered secondary indexes with equality and range pushdown,
//! * a SQL dialect covering everything the PerfDMF schema and API use:
//!   CREATE/DROP/ALTER TABLE, CREATE/DROP INDEX, INSERT/UPDATE/DELETE,
//!   SELECT with joins (inner/left/cross, hash-join fast path), WHERE,
//!   GROUP BY + HAVING, aggregates (COUNT/SUM/AVG/MIN/MAX/STDDEV),
//!   DISTINCT, ORDER BY (incl. aliases and ordinals), LIMIT/OFFSET,
//!   scalar functions, CASE, CAST, LIKE, IN, BETWEEN, and `?` parameters,
//! * transactions (BEGIN/COMMIT/ROLLBACK) with statement-level atomicity,
//! * durability via binary snapshots plus a checksummed write-ahead log
//!   with torn-tail recovery,
//! * runtime schema metadata (the JDBC `getMetaData()` equivalent PerfDMF
//!   relies on for its flexible APPLICATION/EXPERIMENT/TRIAL schema).
//!
//! ## Quick example
//!
//! ```
//! use perfdmf_db::{Connection, Value};
//!
//! let conn = Connection::open_in_memory();
//! conn.execute(
//!     "CREATE TABLE application (
//!          id INTEGER PRIMARY KEY AUTO_INCREMENT,
//!          name TEXT NOT NULL,
//!          version TEXT)",
//!     &[],
//! ).unwrap();
//! let id = conn
//!     .insert("INSERT INTO application (name, version) VALUES (?, ?)",
//!             &[Value::from("EVH1"), Value::from("1.0")])
//!     .unwrap()
//!     .unwrap();
//! let rs = conn
//!     .query("SELECT name FROM application WHERE id = ?", &[Value::Int(id)])
//!     .unwrap();
//! assert_eq!(rs.get(0, "name"), Some(&Value::from("EVH1")));
//! ```

pub mod column;
pub mod connection;
pub mod database;
mod error;
pub mod exec;
pub mod faults;
pub mod index;
pub mod introspect;
pub mod observe;
pub mod plan;
pub mod schema;
pub mod sql;
pub mod storage;
pub mod table;
pub mod value;
pub mod vfs;

pub use connection::{Connection, Prepared, TransactionHandle};
pub use database::Database;
pub use error::{DbError, Result};
pub use exec::vector::{columnar_mode, override_for_thread as override_columnar, ColumnarMode};
pub use exec::{Outcome, ResultSet};
pub use faults::{FaultKind, FaultPlan, FaultVfs};
pub use observe::{
    set_slow_query_threshold, slow_query_log, slow_query_threshold, SlowQueryRecord,
};
pub use plan::{
    optimizer_config, override_for_thread as override_optimizer, OptimizerConfig,
    OptimizerOverrideGuard,
};
pub use schema::{ColumnDef, TableSchema};
pub use storage::Durability;
pub use table::{Row, RowId, Table};
pub use value::{DataType, IStr, Value};
pub use vfs::{RealVfs, Vfs, VfsFile};
