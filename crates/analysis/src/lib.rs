//! # perfdmf-analysis
//!
//! The profile analysis toolkit (paper §3.1 component four): "an
//! extensible suite of common base analysis routines that can be reused
//! across performance analysis programs."
//!
//! * [`stats`] — descriptive statistics, correlation, linear regression.
//! * [`speedup`] — multi-trial speedup/scalability analysis (the §5.2
//!   trial-browser/speedup-analyzer application), with Amdahl fitting.
//! * [`compare`] — CUBE-style trial difference/merge algebra (paper §7
//!   planned work, implemented here).
//! * [`features`] — profile → feature-matrix extraction for data mining.
//! * [`hierarchical()`] — average-linkage agglomerative clustering with
//!   dendrogram cut (PerfExplorer's second mining method).
//! * [`kmeans()`] — k-means++ clustering with a parallel assignment step,
//!   silhouette k-selection, adjusted Rand index (PerfExplorer's cluster
//!   analysis, §5.3 — the R substitute).
//! * [`pca()`] — principal component analysis via cyclic Jacobi.
//! * [`report`] — ParaProf-style text views (group summaries, top-event
//!   tables with imbalance highlighting, per-thread bars).
//! * [`scalability`] — Amdahl/Gustafson model fitting and classification.

pub mod compare;
pub mod features;
pub mod hierarchical;
pub mod kmeans;
pub mod pca;
pub mod regression;
pub mod report;
pub mod scalability;
pub mod speedup;
pub mod stats;

pub use compare::{diff, merge, regressions, DiffEntry};
pub use features::{thread_event_matrix, thread_metric_matrix, FeatureMatrix};
pub use hierarchical::{hierarchical, Dendrogram, MergeStep};
pub use kmeans::{adjusted_rand_index, kmeans, select_k, silhouette_score, KMeansResult};
pub use pca::{pca, Pca};
pub use regression::{
    check_profile, check_samples, routine_samples, Baseline, Finding, WatchdogConfig,
};
pub use report::{
    group_summaries, render_event_across_threads, render_profile_report, render_thread_view,
    GroupSummary, ReportOptions,
};
pub use scalability::{
    amdahl_speedup, classify_scaling, fit_amdahl, fit_gustafson, gustafson_speedup, ScalingFit,
    ScalingKind,
};
pub use speedup::{ApplicationScaling, RoutineSpeedup, SpeedupAnalysis, SpeedupPoint};
pub use stats::{
    correlation_matrix, covariance, linear_fit, mean, median, pearson, percentile, summarize,
    LinearFit, Summary,
};
