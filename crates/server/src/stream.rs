//! Byte-stream seam: the transport analogue of the storage layer's
//! `Vfs` trait.
//!
//! All wire I/O goes through [`Stream`] — [`RealStream`] forwards to a
//! `TcpStream`, while [`FaultStream`] wraps another stream and injects
//! seed-deterministic network faults (delays, partial reads and writes,
//! mid-frame disconnects, corrupted bytes, stalls) per a
//! [`NetFaultPlan`]. The same Real/Fault split that lets the
//! crash-consistency harness enumerate disk failures lets the chaos
//! harness enumerate network failures: a given `(plan, workload)` pair
//! always tears the connection at the same byte.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The byte-stream operations the wire layer needs. Deliberately
/// narrow — read, write, flush, half-close, and a read timeout — so a
/// fault injector can meter every interaction with the peer.
pub trait Stream: Send {
    /// Read up to `buf.len()` bytes; `Ok(0)` means end of stream.
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize>;
    /// Write up to `buf.len()` bytes, returning how many were accepted.
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize>;
    /// Flush buffered writes toward the peer.
    fn flush(&mut self) -> std::io::Result<()>;
    /// Best-effort close of both directions; errors are ignored (the
    /// peer may already be gone).
    fn shutdown(&mut self);
    /// Bound how long a single `read` may block (`None` = forever).
    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()>;
}

/// The production [`Stream`]: a plain `TcpStream` with `TCP_NODELAY`
/// (frames are small and latency-sensitive; Nagle only hurts).
pub struct RealStream(TcpStream);

impl RealStream {
    /// Wrap a connected socket.
    pub fn new(socket: TcpStream) -> RealStream {
        let _ = socket.set_nodelay(true);
        RealStream(socket)
    }
}

impl Stream for RealStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(buf)
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }

    fn shutdown(&mut self) {
        let _ = self.0.shutdown(std::net::Shutdown::Both);
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.0.set_read_timeout(timeout)
    }
}

/// Deterministic schedule of network faults for one [`FaultStream`].
///
/// All randomness derives from `seed` via SplitMix64, keyed by the
/// stream's operation counter, so a failing schedule replays exactly.
/// The default plan injects nothing.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    /// Seed for every per-operation draw.
    pub seed: u64,
    /// Cap each read to a seeded chunk of `1..=n` bytes (models a slow
    /// or fragmenting network: the frame layer must reassemble).
    pub max_read: Option<usize>,
    /// Cap each write to a seeded chunk of `1..=n` bytes (models
    /// partial writes: a disconnect mid-frame leaves the peer a torn
    /// frame).
    pub max_write: Option<usize>,
    /// Sleep a seeded `0..=n` milliseconds before each operation
    /// (models latency and reordering pressure).
    pub delay_ms: Option<u64>,
    /// Hard-disconnect after this many total bytes have crossed the
    /// stream (reads + writes). Everything after fails with
    /// `ConnectionReset` — mid-frame if the budget lands there.
    pub disconnect_after_bytes: Option<u64>,
    /// Flip one seeded bit in roughly 1-in-`n` writes (models
    /// corruption in flight; the receiver must reject the frame, not
    /// crash).
    pub corrupt_one_in: Option<u64>,
    /// Stall (sleep) this many milliseconds once, at the stream's Nth
    /// operation (models a peer that freezes mid-conversation).
    pub stall: Option<(u64, u64)>,
}

impl NetFaultPlan {
    /// A plan with the given seed and no faults armed.
    pub fn seeded(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// Builder: fragment reads and writes into chunks of at most `n`.
    pub fn partial_io(mut self, n: usize) -> Self {
        self.max_read = Some(n.max(1));
        self.max_write = Some(n.max(1));
        self
    }

    /// Builder: delay each operation by up to `ms` milliseconds.
    pub fn delays(mut self, ms: u64) -> Self {
        self.delay_ms = Some(ms);
        self
    }

    /// Builder: disconnect after `n` total bytes.
    pub fn disconnect_after(mut self, n: u64) -> Self {
        self.disconnect_after_bytes = Some(n);
        self
    }

    /// Builder: corrupt roughly one write in `n`.
    pub fn corrupt_one_in(mut self, n: u64) -> Self {
        self.corrupt_one_in = Some(n.max(1));
        self
    }

    /// Builder: stall for `ms` milliseconds at operation `op`.
    pub fn stall_at(mut self, op: u64, ms: u64) -> Self {
        self.stall = Some((op, ms));
        self
    }
}

/// SplitMix64, seeded per operation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`Stream`] that injects deterministic faults per a
/// [`NetFaultPlan`]. Wraps any inner stream (usually a [`RealStream`];
/// tests also stack it over in-memory pipes).
pub struct FaultStream {
    inner: Box<dyn Stream>,
    plan: NetFaultPlan,
    ops: u64,
    bytes: u64,
    disconnected: bool,
}

impl FaultStream {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Box<dyn Stream>, plan: NetFaultPlan) -> FaultStream {
        FaultStream {
            inner,
            plan,
            ops: 0,
            bytes: 0,
            disconnected: false,
        }
    }

    /// Total operations metered so far.
    pub fn ops_performed(&self) -> u64 {
        self.ops
    }

    /// Did the disconnect budget fire?
    pub fn disconnected(&self) -> bool {
        self.disconnected
    }

    /// One draw for the current operation.
    fn draw(&self, salt: u64) -> u64 {
        splitmix64(self.plan.seed ^ self.ops.wrapping_mul(0x517C_C1B7_2722_0A95) ^ salt)
    }

    /// Meter one operation: apply delays/stalls, check the disconnect
    /// budget. Returns `Err` once the stream is torn down.
    fn gate(&mut self) -> std::io::Result<()> {
        let op = self.ops;
        self.ops += 1;
        if self.disconnected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected fault: post-disconnect operation",
            ));
        }
        if let Some((stall_op, ms)) = self.plan.stall {
            if op == stall_op {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if let Some(max_ms) = self.plan.delay_ms {
            if max_ms > 0 {
                std::thread::sleep(Duration::from_millis(self.draw(1) % (max_ms + 1)));
            }
        }
        if let Some(budget) = self.plan.disconnect_after_bytes {
            if self.bytes >= budget {
                self.disconnected = true;
                self.inner.shutdown();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected fault: disconnect budget exhausted",
                ));
            }
        }
        Ok(())
    }
}

impl Stream for FaultStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.gate()?;
        let cap = self
            .plan
            .max_read
            .map(|n| 1 + (self.draw(2) as usize) % n)
            .unwrap_or(buf.len())
            .min(buf.len())
            .max(1.min(buf.len()));
        let n = self.inner.read(&mut buf[..cap])?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.gate()?;
        let cap = self
            .plan
            .max_write
            .map(|n| 1 + (self.draw(3) as usize) % n)
            .unwrap_or(buf.len())
            .min(buf.len())
            .max(1.min(buf.len()));
        // Respect the disconnect budget mid-write: never let more bytes
        // through than remain, so the tear lands exactly on the byte.
        let cap = match self.plan.disconnect_after_bytes {
            Some(budget) => cap.min((budget - self.bytes) as usize).max(1),
            None => cap,
        };
        let chunk = &buf[..cap];
        let n = if self
            .plan
            .corrupt_one_in
            .is_some_and(|n| self.draw(4).is_multiple_of(n) && !chunk.is_empty())
        {
            let mut corrupted = chunk.to_vec();
            let r = self.draw(5);
            let pos = (r as usize) % corrupted.len();
            corrupted[pos] ^= 1 << ((r >> 32) % 8);
            self.inner.write(&corrupted)?
        } else {
            self.inner.write(chunk)?
        };
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.disconnected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected fault: flush after disconnect",
            ));
        }
        self.inner.flush()
    }

    fn shutdown(&mut self) {
        self.inner.shutdown();
    }

    fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
}

/// Write the whole buffer through partial-write-returning streams.
pub fn write_all(stream: &mut dyn Stream, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        match stream.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "stream accepted no bytes",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.flush()
}

/// Drain as much of `buf` as the stream will take *right now*, removing
/// the written prefix from the front. Returns `true` when the buffer
/// emptied (and the stream was flushed), `false` when the stream
/// reported `WouldBlock` with bytes still pending — the event-loop
/// executor's write path: park the remainder and retry on writability.
/// `Ok(0)` from a would-block-capable stream is treated as `WriteZero`
/// like [`write_all`] does.
pub fn write_available(stream: &mut dyn Stream, buf: &mut Vec<u8>) -> std::io::Result<bool> {
    let mut written = 0;
    let done = loop {
        if written == buf.len() {
            break true;
        }
        match stream.write(&buf[written..]) {
            Ok(0) => {
                buf.drain(..written);
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "stream accepted no bytes",
                ));
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
            Err(e) => {
                buf.drain(..written);
                return Err(e);
            }
        }
    };
    buf.drain(..written);
    if done {
        stream.flush()?;
    }
    Ok(done)
}

/// Fill the whole buffer through partial-read-returning streams.
/// `Ok(false)` reports a clean end-of-stream **before the first byte**;
/// EOF mid-buffer is an `UnexpectedEof` error (a torn frame).
pub fn read_exact(stream: &mut dyn Stream, buf: &mut [u8]) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "stream ended mid-frame",
                    ))
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// In-memory half-duplex pipe for exercising the fault layer
    /// without sockets.
    #[derive(Default)]
    struct PipeInner {
        data: VecDeque<u8>,
    }

    struct Pipe(Arc<Mutex<PipeInner>>);

    impl Stream for Pipe {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let mut inner = self.0.lock().unwrap();
            let n = buf.len().min(inner.data.len());
            for slot in buf[..n].iter_mut() {
                *slot = inner.data.pop_front().unwrap();
            }
            Ok(n)
        }

        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().data.extend(buf.iter().copied());
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }

        fn shutdown(&mut self) {}

        fn set_read_timeout(&mut self, _t: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn pipe() -> (Pipe, Pipe) {
        let shared = Arc::new(Mutex::new(PipeInner::default()));
        (Pipe(shared.clone()), Pipe(shared))
    }

    #[test]
    fn partial_io_still_delivers_every_byte_in_order() {
        let (w, r) = pipe();
        let mut faulty = FaultStream::new(Box::new(w), NetFaultPlan::seeded(7).partial_io(3));
        let payload: Vec<u8> = (0..=255).collect();
        write_all(&mut faulty, &payload).unwrap();
        let mut reader = FaultStream::new(Box::new(r), NetFaultPlan::seeded(8).partial_io(2));
        let mut got = vec![0u8; payload.len()];
        assert!(read_exact(&mut reader, &mut got).unwrap());
        assert_eq!(got, payload);
        assert!(faulty.ops_performed() >= (payload.len() / 3) as u64);
    }

    #[test]
    fn disconnect_budget_tears_mid_write_deterministically() {
        let run = || {
            let (w, _r) = pipe();
            let mut faulty =
                FaultStream::new(Box::new(w), NetFaultPlan::seeded(9).disconnect_after(10));
            let err = write_all(&mut faulty, &[0u8; 64]).unwrap_err();
            (err.kind(), faulty.ops_performed(), faulty.disconnected())
        };
        let (kind, ops, disconnected) = run();
        assert_eq!(kind, std::io::ErrorKind::ConnectionReset);
        assert!(disconnected);
        // Same plan, same workload → identical tear point.
        assert_eq!(run(), (kind, ops, disconnected));
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let (w, r) = pipe();
        let mut faulty = FaultStream::new(Box::new(w), NetFaultPlan::seeded(3).corrupt_one_in(1));
        let payload = [0u8; 32];
        write_all(&mut faulty, &payload).unwrap();
        let mut reader = r;
        let mut got = vec![0u8; 32];
        assert!(read_exact(&mut reader, &mut got).unwrap());
        let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert!(flipped >= 1, "at least one write must have been corrupted");
    }

    /// A pipe whose write side accepts a bounded number of bytes per
    /// "tick" and then reports `WouldBlock`, like a full socket buffer.
    struct Throttled {
        inner: Pipe,
        budget: usize,
    }

    impl Stream for Throttled {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }

        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.budget == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "send buffer full",
                ));
            }
            let n = buf.len().min(self.budget);
            self.budget -= n;
            self.inner.write(&buf[..n])
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }

        fn shutdown(&mut self) {}

        fn set_read_timeout(&mut self, _t: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_available_parks_on_would_block_and_resumes() {
        let (w, mut r) = pipe();
        let mut throttled = Throttled {
            inner: w,
            budget: 5,
        };
        let mut pending: Vec<u8> = (0u8..12).collect();
        assert!(!write_available(&mut throttled, &mut pending).unwrap());
        assert_eq!(pending.len(), 7, "unwritten suffix stays queued");
        throttled.budget = 100; // "socket drained" — writable again
        assert!(write_available(&mut throttled, &mut pending).unwrap());
        assert!(pending.is_empty());
        let mut got = vec![0u8; 12];
        assert!(read_exact(&mut r, &mut got).unwrap());
        assert_eq!(got, (0u8..12).collect::<Vec<u8>>());
    }

    #[test]
    fn eof_before_first_byte_is_clean_mid_frame_is_an_error() {
        let (mut w, r) = pipe();
        let mut buf = [0u8; 4];
        let mut reader = FaultStream::new(Box::new(r), NetFaultPlan::default());
        assert!(!read_exact(&mut reader, &mut buf).unwrap(), "clean EOF");
        w.write(&[1, 2]).unwrap();
        let err = read_exact(&mut reader, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }
}
