/root/repo/target/debug/deps/stress-2ebf59906e6a1ea1.d: crates/db/tests/stress.rs

/root/repo/target/debug/deps/stress-2ebf59906e6a1ea1: crates/db/tests/stress.rs

crates/db/tests/stress.rs:
