/root/repo/target/debug/deps/sql_advanced-23fac9b1fab01178.d: crates/db/tests/sql_advanced.rs Cargo.toml

/root/repo/target/debug/deps/libsql_advanced-23fac9b1fab01178.rmeta: crates/db/tests/sql_advanced.rs Cargo.toml

crates/db/tests/sql_advanced.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
