/root/repo/target/debug/deps/prop_upload-c881365e9016556a.d: crates/core/tests/prop_upload.rs Cargo.toml

/root/repo/target/debug/deps/libprop_upload-c881365e9016556a.rmeta: crates/core/tests/prop_upload.rs Cargo.toml

crates/core/tests/prop_upload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
