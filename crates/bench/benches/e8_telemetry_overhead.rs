//! Experiment E8 — the cost of observing ourselves.
//!
//! The instrumentation layer claims near-zero overhead: enabled, an
//! instrumented operation pays a few atomic RMWs; disabled, each
//! instrumentation point reduces to one relaxed atomic load. This
//! experiment prices both against the E7 SQL aggregate workload — the
//! acceptance bar is under 5% between telemetry on and off — and
//! measures the raw primitives in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use perfdmf_bench::store_fresh;
use perfdmf_core::DatabaseSession;
use perfdmf_explorer::{Request, Response, RetryPolicy};
use perfdmf_telemetry as telemetry;
use perfdmf_workload::Evh1Model;

/// The E7 grouped-aggregate query, with telemetry on vs off.
fn bench_sql_aggregates_overhead(c: &mut Criterion) {
    let model = Evh1Model::default_mix(41);
    let profile = model.generate(64);
    let (conn, trial) = store_fresh(&profile);
    let mut session = DatabaseSession::new(conn).expect("session");
    session.set_trial(trial);

    let mut group = c.benchmark_group("e8_sql_aggregates");
    group.sample_size(20);
    telemetry::set_enabled(true);
    group.bench_function("telemetry_on", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    telemetry::set_enabled(false);
    group.bench_function("telemetry_off", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    telemetry::set_enabled(true);
    // Causal tracing layers span records and the flight recorder on top
    // of the histograms; the acceptance bar is the same: under 5%
    // between tracing on and off (both with telemetry on).
    telemetry::set_tracing(true);
    group.bench_function("tracing_on", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    telemetry::set_tracing(false);
    group.bench_function("tracing_off", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    // The background metrics sampler snapshots the whole registry on its
    // own thread; the workload only pays for cache pressure and registry
    // shard contention. Same 5% bar, at the configured cadence (250ms
    // default; set PERFDMF_METRICS_INTERVAL_MS to price faster rates).
    let sampler = telemetry::metrics::start_sampler(telemetry::metrics::default_interval());
    group.bench_function("sampler_on", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    sampler.stop();
    group.bench_function("sampler_off", |b| {
        b.iter(|| session.event_aggregates("GET_TIME_OF_DAY").expect("aggs"));
    });
    group.finish();
}

/// The network request path with end-to-end tracing and per-request
/// metering on vs off. `Ping` isolates the per-request machinery
/// (span, wire context, resource meter, accounting-ring record) from
/// analysis work; the acceptance bar is the same under-5% as the rest
/// of the layer.
fn bench_network_overhead(c: &mut Criterion) {
    use perfdmf_server::{NetClient, PerfdmfServer, ServerConfig};

    let model = Evh1Model::default_mix(41);
    let profile = model.generate(8);
    let (conn, _trial) = store_fresh(&profile);
    let server = PerfdmfServer::start_with_config(
        conn,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let mut client = NetClient::new(server.addr(), "e8-net").with_policy(RetryPolicy::none());
    assert!(client.ping(), "server must be live");

    let mut group = c.benchmark_group("e8_network");
    // Full observability: client.request span, trace context on the
    // wire, server-side meter, accounting ring, usage on the Reply.
    telemetry::set_enabled(true);
    telemetry::set_tracing(true);
    group.bench_function("ping_traced_metered", |b| {
        b.iter(|| assert!(matches!(client.request(Request::Ping), Response::Pong)));
    });
    // Metering but no tracing: no spans, no wire context; the meter
    // and the request ring still run server-side.
    telemetry::set_tracing(false);
    group.bench_function("ping_metered", |b| {
        b.iter(|| assert!(matches!(client.request(Request::Ping), Response::Pong)));
    });
    // Everything off: each instrumentation point is one relaxed load.
    telemetry::set_enabled(false);
    group.bench_function("ping_dark", |b| {
        b.iter(|| assert!(matches!(client.request(Request::Ping), Response::Pong)));
    });
    telemetry::set_enabled(true);
    group.finish();
    client.close();
    server.shutdown();
}

/// Raw primitive costs: span enter/exit, counter add, histogram record —
/// and the same points with collection switched off.
fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_primitives");
    telemetry::set_enabled(true);
    let counter = telemetry::counter("e8.counter");
    let histogram = telemetry::histogram("e8.histogram");
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| {
            let _g = telemetry::span("e8.span");
        });
    });
    telemetry::set_tracing(true);
    group.bench_function("span_traced", |b| {
        b.iter(|| {
            let _g = telemetry::span("e8.span");
        });
    });
    telemetry::set_tracing(false);
    group.bench_function("counter_add", |b| {
        b.iter(|| counter.add(black_box(1)));
    });
    group.bench_function("histogram_record", |b| {
        b.iter(|| histogram.record(black_box(1234)));
    });
    group.bench_function("named_add", |b| {
        b.iter(|| telemetry::add(black_box("e8.named"), 1));
    });
    telemetry::set_enabled(false);
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let _g = telemetry::span("e8.span");
        });
    });
    group.bench_function("named_add_disabled", |b| {
        b.iter(|| telemetry::add(black_box("e8.named"), 1));
    });
    telemetry::set_enabled(true);
    group.finish();
}

criterion_group!(
    benches,
    bench_sql_aggregates_overhead,
    bench_network_overhead,
    bench_primitives
);
criterion_main!(benches);
