//! End-to-end causal tracing: a forced-parallel query must leave a
//! well-formed cross-thread trace in the flight recorder, and the
//! Chrome-trace export must carry flow arrows binding the worker spans
//! back to the dispatching thread.

use perfdmf::db::Connection;
use perfdmf::telemetry::{self, trace};
use std::sync::Mutex;

/// Tracing is a process-global switch; serialize the tests in this
/// binary so one test's teardown cannot blind another mid-flight.
static TRACING_LOCK: Mutex<()> = Mutex::new(());

fn seeded() -> Connection {
    let conn = Connection::open_in_memory();
    conn.execute("CREATE TABLE sample (node INTEGER, time DOUBLE)", &[])
        .unwrap();
    let rows: Vec<String> = (0..256).map(|i| format!("({}, {}.5)", i % 16, i)).collect();
    conn.insert(
        &format!("INSERT INTO sample (node, time) VALUES {}", rows.join(", ")),
        &[],
    )
    .unwrap();
    conn
}

#[test]
fn parallel_query_leaves_cross_thread_trace() {
    let _serial = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let conn = seeded();
    let _par = perfdmf_pool::override_for_thread(4, 1);
    telemetry::set_tracing(true);
    let trace_id = {
        let _client = telemetry::span("tracing.test.client");
        let id = trace::current_trace_id().expect("tracing is on");
        let rs = conn
            .query("SELECT node, AVG(time) FROM sample GROUP BY node", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 16);
        id
    };
    telemetry::set_tracing(false);

    let records: Vec<trace::SpanRecord> = trace::recorder()
        .dump()
        .into_iter()
        .filter(|r| r.trace == trace_id.0)
        .collect();

    // Spans from at least two threads: the client/dispatcher plus the
    // pool workers it fanned the aggregate out to.
    let threads: std::collections::BTreeSet<u64> = records.iter().map(|r| r.thread).collect();
    assert!(
        threads.len() >= 2,
        "expected a cross-thread trace, got threads {threads:?}"
    );
    let tasks: Vec<&trace::SpanRecord> = records.iter().filter(|r| r.name == "pool.task").collect();
    assert!(!tasks.is_empty(), "no pool.task spans recorded");

    // Every span's parent (when recorded) belongs to the same trace, and
    // every pool.task hangs off a span from the dispatching side.
    let by_span: std::collections::HashMap<u64, &trace::SpanRecord> =
        records.iter().map(|r| (r.span, r)).collect();
    for t in &tasks {
        let parent = by_span
            .get(&t.parent)
            .unwrap_or_else(|| panic!("pool.task parent {:016x} not in trace", t.parent));
        assert_eq!(parent.trace, trace_id.0);
    }

    // Same-thread spans are properly nested: any two either do not
    // overlap in time or one contains the other.
    for a in &records {
        for b in &records {
            if a.span == b.span || a.thread != b.thread {
                continue;
            }
            let disjoint = a.end_ns() <= b.start_ns || b.end_ns() <= a.start_ns;
            let a_contains_b = a.start_ns <= b.start_ns && b.end_ns() <= a.end_ns();
            let b_contains_a = b.start_ns <= a.start_ns && a.end_ns() <= b.end_ns();
            assert!(
                disjoint || a_contains_b || b_contains_a,
                "spans {} and {} partially overlap on thread {}",
                a.name,
                b.name,
                a.thread
            );
        }
    }

    // The export is a JSON array with complete events and at least one
    // cross-thread flow arrow pair.
    let json = trace::export_chrome_trace(&records);
    assert!(
        json.starts_with("{\"traceEvents\":[") && json.trim_end().ends_with('}'),
        "{json}"
    );
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces in export"
    );
    assert!(json.contains("\"ph\":\"X\""), "no complete events: {json}");
    assert!(
        json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
        "no cross-thread flow arrows: {json}"
    );
}

#[test]
fn tracing_off_records_nothing_new() {
    let _serial = TRACING_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let conn = seeded();
    telemetry::set_tracing(false);
    let before = trace::recorder().recorded_total();
    let _span = telemetry::span("tracing.test.off");
    conn.query("SELECT COUNT(*) FROM sample", &[]).unwrap();
    assert_eq!(
        trace::recorder().recorded_total(),
        before,
        "spans recorded while tracing was off"
    );
}
