//! Table schemas: column definitions, keys, and constraints.
//!
//! PerfDMF's "flexible schema" requirement (paper §3.2) — metadata columns
//! may be added to or removed from APPLICATION / EXPERIMENT / TRIAL at any
//! time without framework changes — is served by `ALTER TABLE ADD/DROP
//! COLUMN` plus runtime metadata discovery ([`TableSchema::columns`]), the
//! equivalent of JDBC's `getMetaData()`.

use crate::error::{DbError, Result};
use crate::value::{DataType, Value};

/// A single column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name (stored lowercase; lookups are case-insensitive).
    pub name: String,
    /// Column type.
    pub ty: DataType,
    /// NOT NULL constraint.
    pub not_null: bool,
    /// UNIQUE constraint (implied by `primary_key`).
    pub unique: bool,
    /// PRIMARY KEY. At most one column per table.
    pub primary_key: bool,
    /// AUTO_INCREMENT (integer primary keys only).
    pub auto_increment: bool,
    /// DEFAULT value used when INSERT omits the column.
    pub default: Option<Value>,
    /// FOREIGN KEY: `(table, column)` this column references.
    pub references: Option<(String, String)>,
}

impl ColumnDef {
    /// A plain nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            ty,
            not_null: false,
            unique: false,
            primary_key: false,
            auto_increment: false,
            default: None,
            references: None,
        }
    }

    /// Builder: NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Builder: UNIQUE.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Builder: PRIMARY KEY (implies NOT NULL and UNIQUE).
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self.not_null = true;
        self.unique = true;
        self
    }

    /// Builder: AUTO_INCREMENT primary key.
    pub fn auto_increment(mut self) -> Self {
        self.auto_increment = true;
        self
    }

    /// Builder: DEFAULT value.
    pub fn default_value(mut self, v: impl Into<Value>) -> Self {
        self.default = Some(v.into());
        self
    }

    /// Builder: FOREIGN KEY reference.
    pub fn references(mut self, table: impl Into<String>, column: impl Into<String>) -> Self {
        self.references = Some((
            table.into().to_ascii_lowercase(),
            column.into().to_ascii_lowercase(),
        ));
        self
    }
}

/// A table schema: an ordered list of columns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableSchema {
    /// Table name (lowercase).
    pub name: String,
    /// Columns in definition order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Create a schema; validates the column set.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<Self> {
        let schema = TableSchema {
            name: name.into().to_ascii_lowercase(),
            columns,
        };
        schema.validate()?;
        Ok(schema)
    }

    fn validate(&self) -> Result<()> {
        let mut pk = 0usize;
        for (i, c) in self.columns.iter().enumerate() {
            if c.primary_key {
                pk += 1;
            }
            if c.auto_increment && (c.ty != DataType::Integer || !c.primary_key) {
                return Err(DbError::Unsupported(format!(
                    "AUTO_INCREMENT requires an INTEGER PRIMARY KEY ({})",
                    c.name
                )));
            }
            if self.columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DbError::ColumnExists {
                    table: self.name.clone(),
                    column: c.name.clone(),
                });
            }
            if let Some(d) = &c.default {
                if !d.is_null() && d.coerce(c.ty).is_none() {
                    return Err(DbError::TypeMismatch {
                        column: c.name.clone(),
                        expected: c.ty,
                        got: d.to_string(),
                    });
                }
            }
        }
        if pk > 1 {
            return Err(DbError::Unsupported(format!(
                "table {} has more than one PRIMARY KEY column",
                self.name
            )));
        }
        Ok(())
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Index of the primary-key column, if any.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }

    /// Column names in order (the `getMetaData()` equivalent).
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Add a column (ALTER TABLE ADD COLUMN). Returns its index.
    pub fn add_column(&mut self, col: ColumnDef) -> Result<usize> {
        if self.column_index(&col.name).is_some() {
            return Err(DbError::ColumnExists {
                table: self.name.clone(),
                column: col.name,
            });
        }
        if col.primary_key && self.primary_key_index().is_some() {
            return Err(DbError::Unsupported(format!(
                "table {} already has a primary key",
                self.name
            )));
        }
        if col.not_null && col.default.is_none() {
            return Err(DbError::Unsupported(format!(
                "cannot add NOT NULL column {} without a DEFAULT",
                col.name
            )));
        }
        self.columns.push(col);
        Ok(self.columns.len() - 1)
    }

    /// Remove a column (ALTER TABLE DROP COLUMN). Returns its old index.
    pub fn drop_column(&mut self, name: &str) -> Result<usize> {
        let idx = self
            .column_index(name)
            .ok_or_else(|| DbError::NoSuchColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })?;
        if self.columns[idx].primary_key {
            return Err(DbError::Unsupported(format!(
                "cannot drop primary key column {name}"
            )));
        }
        self.columns.remove(idx);
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> ColumnDef {
        ColumnDef::new("id", DataType::Integer)
            .primary_key()
            .auto_increment()
    }

    #[test]
    fn build_and_lookup() {
        let s = TableSchema::new(
            "Application",
            vec![id(), ColumnDef::new("NAME", DataType::Text).not_null()],
        )
        .unwrap();
        assert_eq!(s.name, "application");
        assert_eq!(s.column_index("Name"), Some(1));
        assert_eq!(s.primary_key_index(), Some(0));
        assert_eq!(s.column_names(), vec!["id", "name"]);
    }

    #[test]
    fn duplicate_column_rejected() {
        assert!(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("A", DataType::Text)
            ]
        )
        .is_err());
    }

    #[test]
    fn two_primary_keys_rejected() {
        assert!(TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer).primary_key(),
                ColumnDef::new("b", DataType::Integer).primary_key()
            ]
        )
        .is_err());
    }

    #[test]
    fn auto_increment_requires_int_pk() {
        let bad = TableSchema::new(
            "t",
            vec![ColumnDef::new("a", DataType::Text)
                .primary_key()
                .auto_increment()],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn bad_default_rejected() {
        assert!(TableSchema::new(
            "t",
            vec![ColumnDef::new("a", DataType::Integer).default_value("not a number")]
        )
        .is_err());
    }

    #[test]
    fn alter_add_and_drop() {
        let mut s = TableSchema::new("trial", vec![id()]).unwrap();
        s.add_column(ColumnDef::new("compiler", DataType::Text))
            .unwrap();
        assert_eq!(s.columns.len(), 2);
        assert!(s
            .add_column(ColumnDef::new("compiler", DataType::Text))
            .is_err());
        // NOT NULL without default cannot be added post hoc.
        assert!(s
            .add_column(ColumnDef::new("x", DataType::Integer).not_null())
            .is_err());
        // but with a default it can
        s.add_column(
            ColumnDef::new("x", DataType::Integer)
                .not_null()
                .default_value(0i64),
        )
        .unwrap();
        assert_eq!(s.drop_column("compiler").unwrap(), 1);
        assert!(s.drop_column("compiler").is_err());
        assert!(s.drop_column("id").is_err(), "pk cannot be dropped");
    }
}
