/root/repo/target/debug/deps/perfdmf_core-9ec714e5769eead0.d: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/debug/deps/libperfdmf_core-9ec714e5769eead0.rlib: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

/root/repo/target/debug/deps/libperfdmf_core-9ec714e5769eead0.rmeta: crates/core/src/lib.rs crates/core/src/archive.rs crates/core/src/objects.rs crates/core/src/schema.rs crates/core/src/session.rs crates/core/src/upload.rs

crates/core/src/lib.rs:
crates/core/src/archive.rs:
crates/core/src/objects.rs:
crates/core/src/schema.rs:
crates/core/src/session.rs:
crates/core/src/upload.rs:
