//! The process-wide network-session registry.
//!
//! The network front door (`perfdmf-server`) serves many short-lived
//! client sessions; this module retains one record per session — live
//! ones updated in place, closed ones kept until evicted — so the
//! population is observable after the fact. `perfdmf-db` exposes the
//! registry as the `perfdmf_sessions` virtual system table, mirroring
//! how [`crate::regressions`] backs `perfdmf_regressions`.
//!
//! The registry lives here rather than in the server crate so the
//! database layer (which cannot depend on the server without a cycle)
//! can materialize it; any subsystem that models sessions may publish
//! into it.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use parking_lot::Mutex;

/// Default bound on retained session records; override with
/// `PERFDMF_SESSIONS_CAPACITY`.
pub const DEFAULT_SESSIONS_CAPACITY: usize = 1024;

/// Lifecycle state of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Handshake complete; the session is serving requests.
    Active,
    /// The server is draining: the session answers in-flight work but
    /// accepts nothing new.
    Draining,
    /// The session ended (cleanly or not — see `close_reason`).
    Closed,
}

impl SessionState {
    /// Lower-case label used by the system table.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Active => "active",
            SessionState::Draining => "draining",
            SessionState::Closed => "closed",
        }
    }
}

/// One network session, updated in place over its lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecord {
    /// Server-assigned session id (unique per process).
    pub id: u64,
    /// Tenant tag the client presented in its handshake.
    pub tenant: String,
    /// Lifecycle state.
    pub state: SessionState,
    /// Requests dispatched on this session.
    pub requests: u64,
    /// Requests shed by admission control (queue full).
    pub sheds: u64,
    /// Requests answered with an error or failure.
    pub errors: u64,
    /// Idempotent retries served from the replay cache.
    pub replays: u64,
    /// Protocol violations observed (bad frames, sequence regressions).
    pub protocol_errors: u64,
    /// Highest statement sequence number seen.
    pub last_seq: u64,
    /// Milliseconds the session has been (or was) connected.
    pub connected_ms: u64,
    /// Why the session closed, when it has (`None` while live).
    pub close_reason: Option<String>,
    /// Trace id of the request currently being served, when tracing is
    /// on and a request is in flight (`None` otherwise).
    pub trace_id: Option<u64>,
    /// Requests currently being served on this session.
    pub requests_inflight: u64,
    /// Whether the handshake presented a session token the server
    /// verified. `false` on an open server (no token configured) —
    /// nothing was checked, so nothing is claimed.
    pub authenticated: bool,
}

impl SessionRecord {
    /// A fresh active record for a newly handshaken session.
    pub fn new(id: u64, tenant: impl Into<String>) -> SessionRecord {
        SessionRecord {
            id,
            tenant: tenant.into(),
            state: SessionState::Active,
            requests: 0,
            sheds: 0,
            errors: 0,
            replays: 0,
            protocol_errors: 0,
            last_seq: 0,
            connected_ms: 0,
            close_reason: None,
            trace_id: None,
            requests_inflight: 0,
            authenticated: false,
        }
    }
}

struct RegistryInner {
    sessions: BTreeMap<u64, SessionRecord>,
    capacity: usize,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let capacity = std::env::var("PERFDMF_SESSIONS_CAPACITY")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_SESSIONS_CAPACITY);
        Mutex::new(RegistryInner {
            sessions: BTreeMap::new(),
            capacity,
        })
    })
}

/// Insert or update the record for `record.id`. When the registry is
/// full, closed sessions are evicted oldest-id first; live sessions are
/// never evicted to make room (the bound applies to the retained
/// history, not to concurrency).
pub fn upsert(record: SessionRecord) {
    let mut inner = registry().lock();
    let is_update = inner.sessions.contains_key(&record.id);
    if !is_update && inner.sessions.len() >= inner.capacity {
        if let Some(oldest_closed) = inner
            .sessions
            .iter()
            .find(|(_, r)| r.state == SessionState::Closed)
            .map(|(&id, _)| id)
        {
            inner.sessions.remove(&oldest_closed);
        }
    }
    inner.sessions.insert(record.id, record);
}

/// Mark a retained session as having one more request in flight,
/// carrying `trace` (when the request was traced). In-place — no
/// record clone — because it runs on every network request.
pub fn note_request_started(id: u64, trace: Option<u64>) {
    if let Some(r) = registry().lock().sessions.get_mut(&id) {
        r.requests_inflight += 1;
        r.trace_id = trace;
    }
}

/// Undo [`note_request_started`] once the request is answered.
pub fn note_request_finished(id: u64) {
    if let Some(r) = registry().lock().sessions.get_mut(&id) {
        r.requests_inflight = r.requests_inflight.saturating_sub(1);
        if r.requests_inflight == 0 {
            r.trace_id = None;
        }
    }
}

/// Copy of every retained session record, ordered by session id.
pub fn log() -> Vec<SessionRecord> {
    registry().lock().sessions.values().cloned().collect()
}

/// Drop all retained records (tests and process resets).
pub fn clear() {
    registry().lock().sessions.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_updates_in_place_and_log_orders_by_id() {
        clear();
        upsert(SessionRecord::new(2, "b"));
        upsert(SessionRecord::new(1, "a"));
        let mut r = SessionRecord::new(2, "b");
        r.requests = 5;
        r.state = SessionState::Closed;
        r.close_reason = Some("client goodbye".into());
        upsert(r);
        let log = log();
        let ours: Vec<_> = log.iter().filter(|r| r.id <= 2).collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0].id, 1);
        assert_eq!(ours[1].requests, 5);
        assert_eq!(ours[1].state, SessionState::Closed);
        clear();
    }

    #[test]
    fn closed_sessions_evict_before_live_ones() {
        clear();
        // Fill well past any plausible capacity with closed sessions,
        // then insert one live session: it must survive.
        let cap = registry().lock().capacity;
        for id in 0..cap as u64 {
            let mut r = SessionRecord::new(id, "old");
            r.state = SessionState::Closed;
            upsert(r);
        }
        upsert(SessionRecord::new(u64::MAX, "live"));
        assert!(log().iter().any(|r| r.id == u64::MAX));
        clear();
    }
}
