//! Experiment E2/E6 — import throughput for every supported profile
//! format (paper §3.1: six embedded translators; §5.1: the multi-format
//! ParaProf archive).
//!
//! Expected shape: parse cost scales with file size; the XML-based
//! formats (psrun, PerfDMF exchange) are slower per byte than the
//! line-oriented text formats; the TAU directory path is dominated by
//! per-thread file parsing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use perfdmf_import::{export_xml, import_xml};
use perfdmf_profile::{Profile, ThreadId};
use perfdmf_workload::{
    dynaprof_report_text, gprof_report_text, mpip_report_text, psrun_xml_text, sppm_timing_text,
    tau_file_text, Evh1Model,
};

fn profiles() -> (Profile, perfdmf_profile::MetricId) {
    let p = Evh1Model::default_mix(11).generate(8);
    let m = p.find_metric("GET_TIME_OF_DAY").expect("metric");
    (p, m)
}

fn mpip_shaped() -> (Profile, perfdmf_profile::MetricId) {
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric, UNDEFINED};
    let mut p = Profile::new("m");
    let m = p.add_metric(Metric::measured("MPIP_TIME"));
    let app = p.add_event(IntervalEvent::new("Application", "MPIP_APP"));
    let ops: Vec<_> = (1..=8)
        .map(|s| p.add_event(IntervalEvent::new(format!("MPI_Send() site {s}"), "MPI")))
        .collect();
    p.add_threads((0..16).map(|n| ThreadId::new(n, 0, 0)));
    for &t in p.threads().to_vec().iter() {
        p.set_interval(
            app,
            t,
            m,
            IntervalData::new(30.0, UNDEFINED, 1.0, UNDEFINED),
        );
        for &op in &ops {
            p.set_interval(op, t, m, IntervalData::new(1.5, 1.5, 64.0, 0.0));
        }
    }
    (p, m)
}

fn bench_text_parsers(c: &mut Criterion) {
    let (p, m) = profiles();
    let (mp, mm) = mpip_shaped();
    let tau = tau_file_text(&p, m, ThreadId::ZERO, true);
    let gprof = gprof_report_text(&p, m, ThreadId::ZERO);
    let dyna = dynaprof_report_text(&p, m, ThreadId::ZERO);
    let sppm = sppm_timing_text(&p, m);
    let mpip = mpip_report_text(&mp, mm);
    let psrun = psrun_xml_text(&p, ThreadId::ZERO);

    let mut group = c.benchmark_group("e2_parse");
    for (name, text) in [
        ("tau", &tau),
        ("gprof", &gprof),
        ("dynaprof", &dyna),
        ("sppm", &sppm),
        ("mpip", &mpip),
        ("psrun", &psrun),
    ] {
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), text, |b, text| {
            b.iter(|| {
                let mut out = Profile::new("bench");
                match name {
                    "tau" => perfdmf_import::tau::parse_tau_text(text, ThreadId::ZERO, &mut out)
                        .map(|_| ()),
                    "gprof" => {
                        perfdmf_import::gprof::parse_gprof_text(text, ThreadId::ZERO, &mut out)
                    }
                    "dynaprof" => perfdmf_import::dynaprof::parse_dynaprof_text(text, &mut out),
                    "sppm" => perfdmf_import::sppm::parse_sppm_text(text, &mut out),
                    "mpip" => perfdmf_import::mpip::parse_mpip_text(text, &mut out),
                    "psrun" => {
                        perfdmf_import::psrun::parse_psrun_text(text, ThreadId::ZERO, &mut out)
                    }
                    _ => unreachable!(),
                }
                .expect("parse");
                out
            });
        });
    }
    group.finish();
}

fn bench_xml_roundtrip(c: &mut Criterion) {
    let (p, _) = profiles();
    let xml = export_xml(&p);
    let mut group = c.benchmark_group("e2_xml_exchange");
    group.throughput(Throughput::Bytes(xml.len() as u64));
    group.bench_function("export", |b| b.iter(|| export_xml(&p)));
    group.bench_function("import", |b| b.iter(|| import_xml(&xml).expect("import")));
    group.finish();
}

criterion_group!(benches, bench_text_parsers, bench_xml_roundtrip);
criterion_main!(benches);
