/root/repo/target/debug/deps/perfdmf_bench-a4cd7aef9de3db6a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/perfdmf_bench-a4cd7aef9de3db6a: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
