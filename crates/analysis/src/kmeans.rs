//! k-means clustering — the data-mining core of PerfExplorer (paper §5.3):
//! "statistical analysis methods are used to perform cluster analysis on
//! the data, and then do summarization of the clusters."
//!
//! Implementation notes:
//! * k-means++ seeding for robust initialization;
//! * the assignment step is parallelized with crossbeam scoped threads —
//!   it is the O(n·k·d) hot loop at 16K-thread scale;
//! * [`silhouette_score`] supports choosing k; [`adjusted_rand_index`]
//!   scores recovered clusterings against ground truth (used by the E4
//!   reproduction to verify the planted sPPM behaviour classes are found).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Cluster centroids, `k × d`.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of rows to their centroid.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl KMeansResult {
    /// Rows in each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let k = self.centroids.len();
        let mut sizes = vec![0usize; k];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Run k-means with k-means++ seeding.
///
/// `data` is row-major (`n × d`). `seed` makes runs reproducible.
/// Panics if `k == 0`; if `k > n`, k is clamped to n.
pub fn kmeans(data: &[Vec<f64>], k: usize, seed: u64, max_iters: usize) -> KMeansResult {
    assert!(k > 0, "k must be positive");
    let n = data.len();
    if n == 0 {
        return KMeansResult {
            assignments: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(n);
    let d = data[0].len();
    let mut rng = StdRng::seed_from_u64(seed);

    // --- k-means++ seeding ---
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..n)].clone());
    let mut dist2: Vec<f64> = data.iter().map(|r| sq_dist(r, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dist2.iter().sum();
        let next = if total <= 0.0 {
            // all points coincide with chosen centroids; pick any
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in dist2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(data[next].clone());
        let c = centroids.last().expect("just pushed");
        for (i, row) in data.iter().enumerate() {
            let dd = sq_dist(row, c);
            if dd < dist2[i] {
                dist2[i] = dd;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut assignments = vec![0usize; n];
    let mut iterations = 0usize;
    for iter in 0..max_iters {
        iterations = iter + 1;
        let changed = assign_parallel(data, &centroids, &mut assignments);
        // recompute centroids
        let mut sums = vec![vec![0.0f64; d]; k];
        let mut counts = vec![0usize; k];
        for (row, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(row) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // empty cluster: reseed at the point farthest from its centroid
                let far = (0..n)
                    .max_by(|&i, &j| {
                        sq_dist(&data[i], &centroids[assignments[i]])
                            .total_cmp(&sq_dist(&data[j], &centroids[assignments[j]]))
                    })
                    .expect("n > 0");
                centroids[c] = data[far].clone();
            } else {
                for (slot, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *slot = s / counts[c] as f64;
                }
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }
    // final assignment + inertia
    assign_parallel(data, &centroids, &mut assignments);
    let inertia = data
        .iter()
        .zip(&assignments)
        .map(|(r, &a)| sq_dist(r, &centroids[a]))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

/// Parallel assignment step. Returns true if any assignment changed.
fn assign_parallel(data: &[Vec<f64>], centroids: &[Vec<f64>], assignments: &mut [usize]) -> bool {
    let n = data.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    let chunk = n.div_ceil(workers.max(1));
    if workers <= 1 || n < 1024 {
        return assign_range(data, centroids, assignments, 0);
    }
    let mut any_changed = false;
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, slice) in assignments.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            handles.push(s.spawn(move |_| {
                assign_range(&data[start..start + slice.len()], centroids, slice, 0)
            }));
        }
        for h in handles {
            if h.join().expect("assignment worker panicked") {
                any_changed = true;
            }
        }
    })
    .expect("crossbeam scope");
    any_changed
}

fn assign_range(
    data: &[Vec<f64>],
    centroids: &[Vec<f64>],
    assignments: &mut [usize],
    _offset: usize,
) -> bool {
    let mut changed = false;
    for (row, slot) in data.iter().zip(assignments.iter_mut()) {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in centroids.iter().enumerate() {
            let dd = sq_dist(row, centroid);
            if dd < best_d {
                best_d = dd;
                best = c;
            }
        }
        if *slot != best {
            *slot = best;
            changed = true;
        }
    }
    changed
}

/// Mean silhouette coefficient of a clustering (−1 ..= 1, higher is
/// better). O(n²); intended for k selection on sampled data.
pub fn silhouette_score(data: &[Vec<f64>], assignments: &[usize], k: usize) -> f64 {
    let n = data.len();
    if n < 2 || k < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let own = assignments[i];
        // mean distance to own cluster (a) and nearest other cluster (b)
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = sq_dist(&data[i], &data[j]).sqrt();
            sums[assignments[j]] += d;
            counts[assignments[j]] += 1;
        }
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined, skip
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        total += (b - a) / a.max(b);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Pick k in `k_range` maximizing the silhouette score.
pub fn select_k(
    data: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    seed: u64,
) -> (usize, KMeansResult) {
    let mut best: Option<(f64, usize, KMeansResult)> = None;
    for k in k_range {
        let res = kmeans(data, k, seed, 100);
        let score = silhouette_score(data, &res.assignments, k);
        if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
            best = Some((score, k, res));
        }
    }
    let (_, k, res) = best.expect("non-empty k range");
    (k, res)
}

/// Adjusted Rand index between two labelings (1.0 = identical partition,
/// ~0.0 = random agreement).
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let ka = a.iter().max().map(|&m| m + 1).unwrap_or(0);
    let kb = b.iter().max().map(|&m| m + 1).unwrap_or(0);
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let comb2 = |x: u64| -> f64 { (x * x.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = table.iter().flatten().map(|&x| comb2(x)).sum();
    let sum_a: f64 = table.iter().map(|row| comb2(row.iter().sum::<u64>())).sum();
    let sum_b: f64 = (0..kb)
        .map(|j| comb2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = comb2(n as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_ij - expected) / (max_index - expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs.
    fn blobs(per: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 8.0)];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per {
                data.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
                labels.push(ci);
            }
        }
        (data, labels)
    }

    #[test]
    fn recovers_blobs() {
        let (data, truth) = blobs(40, 7);
        let res = kmeans(&data, 3, 42, 100);
        assert_eq!(res.centroids.len(), 3);
        assert_eq!(adjusted_rand_index(&res.assignments, &truth), 1.0);
        let sizes = res.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 120);
        assert!(sizes.iter().all(|&s| s == 40));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, _) = blobs(20, 3);
        let a = kmeans(&data, 3, 99, 100);
        let b = kmeans(&data, 3, 99, 100);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (data, _) = blobs(30, 11);
        let i2 = kmeans(&data, 2, 5, 100).inertia;
        let i3 = kmeans(&data, 3, 5, 100).inertia;
        let i6 = kmeans(&data, 6, 5, 100).inertia;
        assert!(i3 < i2);
        assert!(i6 <= i3 + 1e-9);
    }

    #[test]
    fn silhouette_prefers_true_k() {
        let (data, _) = blobs(30, 13);
        let (k, _) = select_k(&data, 2..=6, 1);
        assert_eq!(k, 3);
    }

    #[test]
    fn k_larger_than_n_is_clamped() {
        let data = vec![vec![0.0], vec![1.0]];
        let res = kmeans(&data, 10, 0, 10);
        assert_eq!(res.centroids.len(), 2);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let res = kmeans(&[], 3, 0, 10);
        assert!(res.assignments.is_empty());
        // all-identical points: one real cluster, no panic
        let data = vec![vec![5.0, 5.0]; 8];
        let res = kmeans(&data, 3, 0, 10);
        assert_eq!(res.assignments.len(), 8);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn ari_properties() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(adjusted_rand_index(&a, &a), 1.0);
        // permuted labels still perfect
        let b = vec![2, 2, 0, 0, 1, 1];
        assert_eq!(adjusted_rand_index(&a, &b), 1.0);
        // completely merged labeling scores lower
        let c = vec![0, 0, 0, 0, 0, 0];
        assert!(adjusted_rand_index(&a, &c) < 0.5);
    }

    #[test]
    fn parallel_assignment_matches_serial() {
        // large enough to trigger the parallel path
        let (data, _) = blobs(600, 17);
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![-10.0, 8.0]];
        let mut par = vec![0usize; data.len()];
        assign_parallel(&data, &centroids, &mut par);
        let mut ser = vec![0usize; data.len()];
        assign_range(&data, &centroids, &mut ser, 0);
        assert_eq!(par, ser);
    }
}
