//! Text report views — the toolkit behind ParaProf's "summary text views
//! of performance data, with various groupings and contextual
//! highlighting" (paper §5.1), rendered as plain text for terminal tools.

use perfdmf_profile::{EventId, IntervalField, MetricId, Profile, ThreadId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregation of one event group (e.g. `MPI`, `COMPUTE`, `IO`).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSummary {
    /// Group name.
    pub group: String,
    /// Number of events in the group.
    pub events: usize,
    /// Sum of mean-summary exclusive values.
    pub exclusive: f64,
    /// Share of the total exclusive time (0..=1).
    pub share: f64,
}

/// Per-group breakdown of one metric (the "various groupings" view):
/// each event's mean exclusive value is attributed to its group.
pub fn group_summaries(profile: &Profile, metric: MetricId) -> Vec<GroupSummary> {
    let means = profile.mean_summary(metric);
    let mut acc: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    let mut total = 0.0;
    for (ei, event) in profile.events().iter().enumerate() {
        if let Some(x) = means[ei].exclusive() {
            let slot = acc.entry(event.group.as_str()).or_insert((0, 0.0));
            slot.0 += 1;
            slot.1 += x;
            total += x;
        }
    }
    acc.into_iter()
        .map(|(group, (events, exclusive))| GroupSummary {
            group: group.to_string(),
            events,
            exclusive,
            share: if total > 0.0 { exclusive / total } else { 0.0 },
        })
        .collect()
}

/// Options for [`render_profile_report`].
#[derive(Debug, Clone)]
pub struct ReportOptions {
    /// Show at most this many events (by mean exclusive, descending).
    pub top_events: usize,
    /// Width of the ASCII bar column.
    pub bar_width: usize,
    /// Highlight events whose cross-thread imbalance (max/mean of
    /// exclusive) exceeds this factor — the "contextual highlighting".
    pub imbalance_threshold: f64,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            top_events: 20,
            bar_width: 40,
            imbalance_threshold: 1.25,
        }
    }
}

/// Render a ParaProf-style text report of one metric: group breakdown
/// plus a top-events table with mean/min/max columns, bars scaled to the
/// largest mean, and imbalance highlighting (`!`).
pub fn render_profile_report(
    profile: &Profile,
    metric: MetricId,
    options: &ReportOptions,
) -> String {
    let mut out = String::new();
    let metric_name = &profile.metric(metric).name;
    let _ = writeln!(
        out,
        "profile: {}  metric: {metric_name}  threads: {}  events: {}",
        profile.name,
        profile.threads().len(),
        profile.events().len()
    );

    let _ = writeln!(out, "\nby group:");
    for g in group_summaries(profile, metric) {
        let bar = "#"
            .repeat(((g.share * options.bar_width as f64).round() as usize).min(options.bar_width));
        let _ = writeln!(
            out,
            "  {:<16} {:>6.1}%  {:<width$}  ({} events)",
            g.group,
            g.share * 100.0,
            bar,
            g.events,
            width = options.bar_width
        );
    }

    // per-event stats across threads
    let mut rows: Vec<(String, f64, f64, f64, bool)> = Vec::new();
    for ei in 0..profile.events().len() {
        let Some(s) = profile.event_stats(EventId(ei), metric, IntervalField::Exclusive) else {
            continue;
        };
        let imbalanced = s.mean > 0.0 && s.max / s.mean > options.imbalance_threshold;
        rows.push((
            profile.events()[ei].name.clone(),
            s.mean,
            s.min,
            s.max,
            imbalanced,
        ));
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows.truncate(options.top_events);
    let scale = rows.first().map(|r| r.1).unwrap_or(1.0).max(1e-300);

    let _ = writeln!(
        out,
        "\ntop events by mean exclusive {metric_name} (! = thread imbalance > {:.2}x):",
        options.imbalance_threshold
    );
    let _ = writeln!(
        out,
        "  {:<32} {:>12} {:>12} {:>12}  ",
        "event", "mean", "min", "max"
    );
    for (name, mean, min, max, imbalanced) in rows {
        let bar_len = ((mean / scale * options.bar_width as f64).round() as usize)
            .clamp(1, options.bar_width);
        let mark = if imbalanced { '!' } else { ' ' };
        let _ = writeln!(
            out,
            "{mark} {:<32} {mean:>12.4} {min:>12.4} {max:>12.4}  |{}",
            truncate(&name, 32),
            "█".repeat(bar_len)
        );
    }
    out
}

/// Render one thread's profile as a bar list (the single
/// node/context/thread view ParaProf offers).
pub fn render_thread_view(
    profile: &Profile,
    metric: MetricId,
    thread: ThreadId,
    options: &ReportOptions,
) -> String {
    let mut rows: Vec<(String, f64)> = Vec::new();
    for ei in 0..profile.events().len() {
        if let Some(d) = profile.interval(EventId(ei), thread, metric) {
            if let Some(x) = d.exclusive() {
                rows.push((profile.events()[ei].name.clone(), x));
            }
        }
    }
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows.truncate(options.top_events);
    let scale = rows.first().map(|r| r.1).unwrap_or(1.0).max(1e-300);
    let mut out = String::new();
    let _ = writeln!(out, "thread {thread} — {}:", profile.metric(metric).name);
    for (name, x) in rows {
        let bar_len =
            ((x / scale * options.bar_width as f64).round() as usize).clamp(1, options.bar_width);
        let _ = writeln!(
            out,
            "  {:<32} {x:>12.4} |{}",
            truncate(&name, 32),
            "█".repeat(bar_len)
        );
    }
    out
}

/// Render one event's values across every thread — ParaProf's "compare
/// the behavior of one instrumented event across all threads of
/// execution" view (paper §5.1).
pub fn render_event_across_threads(
    profile: &Profile,
    event: EventId,
    metric: MetricId,
    options: &ReportOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "event {} — {} across {} threads:",
        profile.events()[event.0].name,
        profile.metric(metric).name,
        profile.threads().len()
    );
    let stats = profile.event_stats(event, metric, IntervalField::Exclusive);
    let scale = stats.map(|s| s.max).unwrap_or(1.0).max(1e-300);
    for (tpos, &thread) in profile.threads().iter().enumerate() {
        let Some(x) = profile
            .interval_at(event, tpos, metric)
            .and_then(|d| d.exclusive())
        else {
            continue;
        };
        let bar_len =
            ((x / scale * options.bar_width as f64).round() as usize).clamp(1, options.bar_width);
        let _ = writeln!(
            out,
            "  {:<10} {x:>12.4} |{}",
            thread.to_string(),
            "█".repeat(bar_len)
        );
    }
    if let Some(s) = stats {
        let _ = writeln!(
            out,
            "  min {:.4}  mean {:.4}  max {:.4}  stddev {:.4}",
            s.min, s.mean, s.max, s.stddev
        );
    }
    out
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfdmf_profile::{IntervalData, IntervalEvent, Metric};

    fn sample() -> Profile {
        let mut p = Profile::new("view");
        let m = p.add_metric(Metric::measured("TIME"));
        let compute = p.add_event(IntervalEvent::new("kernel", "COMPUTE"));
        let send = p.add_event(IntervalEvent::new("MPI_Send()", "MPI"));
        let recv = p.add_event(IntervalEvent::new("MPI_Recv()", "MPI"));
        p.add_threads((0..4).map(|n| ThreadId::new(n, 0, 0)));
        for (i, &t) in p.threads().to_vec().iter().enumerate() {
            p.set_interval(compute, t, m, IntervalData::new(60.0, 60.0, 1.0, 0.0));
            p.set_interval(send, t, m, IntervalData::new(20.0, 20.0, 5.0, 0.0));
            // recv is heavily imbalanced: thread 3 waits 4x longer
            let r = if i == 3 { 40.0 } else { 10.0 };
            p.set_interval(recv, t, m, IntervalData::new(r, r, 5.0, 0.0));
        }
        p
    }

    #[test]
    fn group_shares_sum_to_one() {
        let p = sample();
        let m = p.find_metric("TIME").unwrap();
        let groups = group_summaries(&p, m);
        assert_eq!(groups.len(), 2);
        let total: f64 = groups.iter().map(|g| g.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let compute = groups.iter().find(|g| g.group == "COMPUTE").unwrap();
        // compute 60 of (60 + 20 + 17.5) mean exclusive
        assert!((compute.exclusive - 60.0).abs() < 1e-9);
        let mpi = groups.iter().find(|g| g.group == "MPI").unwrap();
        assert_eq!(mpi.events, 2);
    }

    #[test]
    fn report_highlights_imbalance() {
        let p = sample();
        let m = p.find_metric("TIME").unwrap();
        let text = render_profile_report(&p, m, &ReportOptions::default());
        assert!(text.contains("by group:"));
        assert!(text.contains("COMPUTE"));
        // the imbalanced recv line is marked with '!'
        let recv_line = text.lines().find(|l| l.contains("MPI_Recv()")).unwrap();
        assert!(recv_line.starts_with('!'), "{recv_line}");
        let kernel_line = text.lines().find(|l| l.contains("kernel")).unwrap();
        assert!(kernel_line.starts_with(' '), "{kernel_line}");
    }

    #[test]
    fn thread_view_sorted_with_bars() {
        let p = sample();
        let m = p.find_metric("TIME").unwrap();
        let text = render_thread_view(&p, m, ThreadId::new(3, 0, 0), &ReportOptions::default());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("3:0:0"));
        // kernel (60) first, recv (40) second on thread 3
        assert!(lines[1].contains("kernel"));
        assert!(lines[2].contains("MPI_Recv()"));
        assert!(lines[1].contains('█'));
    }

    #[test]
    fn event_across_threads_view() {
        let p = sample();
        let m = p.find_metric("TIME").unwrap();
        let e = p.find_event("MPI_Recv()").unwrap();
        let text = render_event_across_threads(&p, e, m, &ReportOptions::default());
        assert!(text.contains("MPI_Recv()"));
        // all 4 threads listed with bars; the imbalanced one has the longest
        assert_eq!(text.lines().filter(|l| l.contains('█')).count(), 4);
        assert!(text.contains("min 10.0000"));
        assert!(text.contains("max 40.0000"));
    }

    #[test]
    fn empty_profile_renders() {
        let mut p = Profile::new("empty");
        let m = p.add_metric(Metric::measured("TIME"));
        let text = render_profile_report(&p, m, &ReportOptions::default());
        assert!(text.contains("events: 0"));
    }
}
